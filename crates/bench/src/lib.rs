//! Shared infrastructure for the table/figure regeneration harnesses.
//!
//! Each binary in this crate regenerates one table or figure of the DAC 2001
//! RFN paper (see `EXPERIMENTS.md` at the repository root):
//!
//! * `table1` — property verification: RFN vs. plain symbolic model checking
//!   with COI reduction,
//! * `table2` — unreachable-coverage-state analysis: RFN vs. the BFS
//!   abstraction baseline,
//! * `figure1` — min-cut anatomy: signal classes and no-cut/min-cut cube
//!   statistics of the hybrid engine.
//!
//! All binaries accept `--quick` to run scaled-down workloads (used by CI
//! and the Criterion benches); the default parameters match the paper's
//! design sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use rfn_designs::{FifoParams, IntegerUnitParams, ProcessorParams, UsbParams};

/// Workload scale for a harness run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized designs (≈5,000-register processor, 32-deep FIFO).
    Paper,
    /// Scaled-down designs for fast iteration and benches.
    Quick,
}

impl Scale {
    /// Parses `--quick` from the command line (anything else = paper scale).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Processor-module parameters at this scale.
    pub fn processor(self) -> ProcessorParams {
        match self {
            Scale::Paper => ProcessorParams::default(),
            Scale::Quick => ProcessorParams {
                width: 16,
                regfile_words: 8,
                store_entries: 4,
                cache_lines: 4,
                pipe_stages: 2,
                multipliers: 2,
                stall_threshold: 27,
            },
        }
    }

    /// FIFO-controller parameters at this scale.
    pub fn fifo(self) -> FifoParams {
        match self {
            Scale::Paper => FifoParams::default(),
            Scale::Quick => FifoParams {
                depth: 16,
                data_width: 8,
                data_stages: 3,
                inject_half_flag_bug: false,
            },
        }
    }

    /// Integer-unit parameters at this scale.
    pub fn integer_unit(self) -> IntegerUnitParams {
        match self {
            Scale::Paper => IntegerUnitParams::default(),
            Scale::Quick => IntegerUnitParams {
                stages: 5,
                counters_per_stage: 1,
                counter_width: 5,
                data_width: 4,
            },
        }
    }

    /// USB-controller parameters at this scale.
    pub fn usb(self) -> UsbParams {
        match self {
            Scale::Paper => UsbParams::default(),
            Scale::Quick => UsbParams {
                endpoints: 3,
                nak_width: 6,
            },
        }
    }

    /// Per-experiment time limit at this scale (the paper used 1,800 s for
    /// Table 2; we scale down since modern hardware is far faster).
    pub fn time_limit(self) -> Duration {
        match self {
            Scale::Paper => Duration::from_secs(300),
            Scale::Quick => Duration::from_secs(60),
        }
    }
}

/// Parses `--threads <n>` from the command line; defaults to the machine's
/// available parallelism. The table harnesses run their independent
/// property/coverage jobs on this many workers (one BDD manager per job);
/// output order is deterministic at any thread count.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(rfn_core::default_threads)
}

/// Formats a duration as seconds with one decimal.
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Prints an aligned table row.
pub fn row(cells: &[&str], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a rule matching the given column widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}
