//! Shared infrastructure for the table/figure regeneration harnesses.
//!
//! Each binary in this crate regenerates one table or figure of the DAC 2001
//! RFN paper (see `EXPERIMENTS.md` at the repository root):
//!
//! * `table1` — property verification: RFN vs. plain symbolic model checking
//!   with COI reduction,
//! * `table2` — unreachable-coverage-state analysis: RFN vs. the BFS
//!   abstraction baseline,
//! * `figure1` — min-cut anatomy: signal classes and no-cut/min-cut cube
//!   statistics of the hybrid engine.
//!
//! All binaries accept `--quick` to run scaled-down workloads (used by CI
//! and the Criterion benches); the default parameters match the paper's
//! design sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;

use std::sync::Arc;
use std::time::Duration;

use rfn_designs::{FifoParams, IntegerUnitParams, ProcessorParams, UsbParams};
use rfn_trace::{
    merge_streams, Event, FanoutSink, JsonlSink, MemorySink, TimeBreakdown, TraceCtx, TraceSink,
};

/// Workload scale for a harness run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized designs (≈5,000-register processor, 32-deep FIFO).
    Paper,
    /// Scaled-down designs for fast iteration and benches.
    Quick,
}

impl Scale {
    /// Parses `--quick` from the command line (anything else = paper scale).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Processor-module parameters at this scale.
    pub fn processor(self) -> ProcessorParams {
        match self {
            Scale::Paper => ProcessorParams::default(),
            Scale::Quick => ProcessorParams {
                width: 16,
                regfile_words: 8,
                store_entries: 4,
                cache_lines: 4,
                pipe_stages: 2,
                multipliers: 2,
                stall_threshold: 27,
            },
        }
    }

    /// FIFO-controller parameters at this scale.
    pub fn fifo(self) -> FifoParams {
        match self {
            Scale::Paper => FifoParams::default(),
            Scale::Quick => FifoParams {
                depth: 16,
                data_width: 8,
                data_stages: 3,
                inject_half_flag_bug: false,
            },
        }
    }

    /// Integer-unit parameters at this scale.
    pub fn integer_unit(self) -> IntegerUnitParams {
        match self {
            Scale::Paper => IntegerUnitParams::default(),
            Scale::Quick => IntegerUnitParams {
                stages: 5,
                counters_per_stage: 1,
                counter_width: 5,
                data_width: 4,
            },
        }
    }

    /// USB-controller parameters at this scale.
    pub fn usb(self) -> UsbParams {
        match self {
            Scale::Paper => UsbParams::default(),
            Scale::Quick => UsbParams {
                endpoints: 3,
                nak_width: 6,
            },
        }
    }

    /// Per-experiment time limit at this scale (the paper used 1,800 s for
    /// Table 2; we scale down since modern hardware is far faster).
    pub fn time_limit(self) -> Duration {
        match self {
            Scale::Paper => Duration::from_secs(300),
            Scale::Quick => Duration::from_secs(60),
        }
    }
}

/// Structured-event output for a harness run, parsed from
/// `--trace-out <file>`.
///
/// When the flag is present, every job's events are written to the file as
/// JSONL (schema: `rfn_trace` crate docs) *and* buffered so [`finish`]
/// can print the per-phase time-breakdown table. Per-job buffers handed to
/// [`emit_merged`] are renumbered into one deterministic stream, so the
/// file is identical at any `--threads` setting (modulo timestamps).
///
/// [`finish`]: BenchTrace::finish
/// [`emit_merged`]: BenchTrace::emit_merged
#[derive(Default)]
pub struct BenchTrace {
    sink: Option<Arc<dyn TraceSink>>,
    memory: Option<Arc<MemorySink>>,
    jsonl: Option<Arc<JsonlSink>>,
}

impl BenchTrace {
    /// Parses `--trace-out <file>`; tracing stays off without it.
    pub fn from_args() -> BenchTrace {
        let args: Vec<String> = std::env::args().collect();
        let path = args
            .iter()
            .position(|a| a == "--trace-out")
            .and_then(|i| args.get(i + 1));
        let Some(path) = path else {
            return BenchTrace::default();
        };
        let file = std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}"));
        let jsonl = Arc::new(JsonlSink::new(Box::new(std::io::BufWriter::new(file))));
        let memory = Arc::new(MemorySink::new());
        let sink = Arc::new(FanoutSink::new(vec![
            jsonl.clone() as Arc<dyn TraceSink>,
            memory.clone() as Arc<dyn TraceSink>,
        ]));
        BenchTrace {
            sink: Some(sink),
            memory: Some(memory),
            jsonl: Some(jsonl),
        }
    }

    /// Whether `--trace-out` was given.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// A per-job context writing into the given buffer (disabled when
    /// tracing is off, so jobs skip event construction entirely).
    pub fn job_ctx(&self, buffer: &Arc<MemorySink>) -> TraceCtx {
        if self.enabled() {
            TraceCtx::new(buffer.clone() as Arc<dyn TraceSink>)
        } else {
            TraceCtx::disabled()
        }
    }

    /// Merges per-job event buffers (in job order) into the output sink.
    pub fn emit_merged(&self, buffers: Vec<Vec<Event>>) {
        if let Some(sink) = &self.sink {
            for event in merge_streams(buffers) {
                sink.emit(&event);
            }
        }
    }

    /// Flushes the JSONL file and prints the per-phase breakdown table.
    pub fn finish(&self) {
        if let Some(jsonl) = &self.jsonl {
            jsonl.flush();
        }
        if let Some(memory) = &self.memory {
            let table = TimeBreakdown::from_events(&memory.take()).render();
            if !table.is_empty() {
                println!();
                println!("Per-phase time breakdown:");
                print!("{table}");
            }
        }
    }
}

/// Parses `--threads <n>` from the command line; defaults to the machine's
/// available parallelism. The table harnesses run their independent
/// property/coverage jobs on this many workers (one BDD manager per job);
/// output order is deterministic at any thread count.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(rfn_core::default_threads)
}

/// Parses `--cluster-limit <nodes>` from the command line (`None` keeps the
/// engine default; `0` disables clustering for the seed-style linear
/// schedule).
pub fn cluster_limit_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--cluster-limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
}

/// Parses `--no-frontier-simplify` from the command line; returns whether
/// don't-care frontier minimization stays enabled.
pub fn frontier_simplify_from_args() -> bool {
    !std::env::args().any(|a| a == "--no-frontier-simplify")
}

/// Formats a duration as seconds with one decimal.
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Prints an aligned table row.
pub fn row(cells: &[&str], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a rule matching the given column widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}
