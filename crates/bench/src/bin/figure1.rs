//! Regenerates Figure 1 of the paper: the anatomy of no-cut and min-cut
//! cubes. The figure itself is a schematic; this harness reports the
//! quantitative reality behind it — the signal classes of an abstract model
//! vs. its min-cut design, the input reduction the min-cut achieves, and how
//! many hybrid-engine steps resolve via no-cut vs. min-cut cubes.
//!
//! ```text
//! cargo run -p rfn-bench --bin figure1 --release [-- --quick]
//!           [--trace-out <file>]
//! ```
//!
//! `--trace-out <file>` writes the hybrid demo's structured event stream as
//! JSONL and appends a per-phase time-breakdown table.

use std::sync::Arc;

use rfn_atpg::AtpgOptions;
use rfn_bench::{row, rule, BenchTrace, Scale};
use rfn_core::{hybrid_trace, HybridOutcome};
use rfn_designs::{fifo_controller, processor_module};
use rfn_mc::{forward_reach, ModelSpec, ReachOptions, SymbolicModel};
use rfn_netlist::{
    compute_free_cut, compute_min_cut, Abstraction, Coi, Netlist, Property, SignalId,
};
use rfn_trace::{MemorySink, TraceCtx};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 1: no-cut and min-cut cube anatomy (scale: {scale:?})");
    println!();
    let widths = [12, 10, 9, 9, 9, 9, 9];
    row(
        &[
            "design",
            "abs regs",
            "N gates",
            "N inputs",
            "FC gates",
            "MC gates",
            "MC inputs",
        ],
        &widths,
    );
    rule(&widths);

    let processor = processor_module(&scale.processor());
    let fifo = fifo_controller(&scale.fifo());
    // Growing abstractions of each design around its first property's
    // watchdog register — the same shape RFN's refinement produces.
    for (label, design) in [("processor", &processor), ("fifo", &fifo)] {
        let p = &design.properties[0];
        let coi = Coi::of(&design.netlist, [p.signal]);
        for take in [1usize, 4, 16, 64] {
            let mut regs: Vec<SignalId> = vec![p.signal];
            regs.extend(
                coi.registers()
                    .iter()
                    .copied()
                    .filter(|&r| r != p.signal)
                    .take(take - 1),
            );
            if regs.len() < take {
                break;
            }
            report_cut(&design.netlist, label, p, regs, &widths);
        }
    }

    println!();
    let trace = BenchTrace::from_args();
    let buffer = Arc::new(MemorySink::new());
    demo_hybrid_classification(&fifo.netlist, &fifo.properties[0], trace.job_ctx(&buffer));
    trace.emit_merged(vec![buffer.take()]);
    trace.finish();
}

fn report_cut(
    netlist: &Netlist,
    label: &str,
    property: &Property,
    regs: Vec<SignalId>,
    widths: &[usize],
) {
    let nregs = regs.len();
    let view = Abstraction::from_registers(regs)
        .view(netlist, [property.signal])
        .expect("view builds");
    let fc = compute_free_cut(netlist, &view);
    let mc = compute_min_cut(netlist, &view);
    row(
        &[
            label,
            &nregs.to_string(),
            &view.num_gates().to_string(),
            &mc.original_input_count.to_string(),
            &fc.gates.len().to_string(),
            &mc.gates.len().to_string(),
            &mc.num_inputs().to_string(),
        ],
        widths,
    );
}

/// Runs the hybrid engine once on the FIFO's control-cone abstraction and
/// prints the cube-class statistics — the dynamic counterpart of Figure 1.
fn demo_hybrid_classification(netlist: &Netlist, property: &Property, ctx: TraceCtx) {
    // The control cone of the `full` flag (count, flags, pointers); the
    // datapath checksum stays outside, exactly as in an RFN abstraction.
    let full = netlist.find("full").expect("fifo has a full flag");
    let regs: Vec<SignalId> = Coi::of(netlist, [full]).registers().to_vec();
    let view = Abstraction::from_registers(regs)
        .view(netlist, [full])
        .expect("view builds");
    let _ = property;
    let mut reach_opts = ReachOptions::default()
        .with_frontier_simplify(rfn_bench::frontier_simplify_from_args())
        .with_trace(ctx.clone());
    if let Some(limit) = rfn_bench::cluster_limit_from_args() {
        reach_opts = reach_opts.with_cluster_limit(limit);
    }
    let model_opts = rfn_mc::ModelOptions {
        cluster_limit: reach_opts.cluster_limit,
        static_order: reach_opts.static_order,
    };
    let mut model = SymbolicModel::with_options(
        netlist,
        ModelSpec::from_view(&view),
        rfn_bdd::BddManager::new(),
        model_opts,
    )
    .expect("model builds");
    // Target an interesting deep state: the FIFO's full flag.
    let full = netlist.find("full").expect("fifo has a full flag");
    let targets = model.signal_bdd(full).expect("flag in model");
    let reach = forward_reach(&mut model, targets, &reach_opts).expect("reach runs");
    println!("kernel stats (fifo reachability): {}", reach.stats);
    let rfn_mc::ReachVerdict::TargetHit { step } = reach.verdict else {
        println!("hybrid demo: full flag unreachable in this configuration");
        return;
    };
    let atpg_opts = AtpgOptions {
        trace: ctx,
        ..AtpgOptions::default()
    };
    match hybrid_trace(netlist, &view, &mut model, &reach, targets, &atpg_opts)
        .expect("hybrid runs")
    {
        HybridOutcome::Trace(trace, stats) => {
            println!(
                "hybrid engine on `fifo` (target: full flag, depth {step}): \
                 {} trace cycles",
                trace.num_cycles()
            );
            println!(
                "  steps resolved by no-cut cubes:   {:>4}",
                stats.no_cut_steps
            );
            println!(
                "  steps lifted from min-cut cubes:  {:>4} (combinational ATPG)",
                stats.min_cut_steps
            );
            println!(
                "  exact-pre-image fallback steps:   {:>4}",
                stats.fallback_steps
            );
            println!(
                "  abstract-model inputs {} -> min-cut inputs {}",
                stats.abstract_inputs, stats.min_cut_inputs
            );
        }
        HybridOutcome::Failed(stats) => {
            println!("hybrid demo failed: {stats:?}");
        }
    }
}
