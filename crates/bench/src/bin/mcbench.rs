//! Image-computation benchmark: clustered transition relations plus
//! don't-care frontier minimization vs. the seed's linear per-register
//! relational product, on the bundled benchmark designs.
//!
//! ```text
//! cargo run -p rfn-bench --bin mcbench --release [-- --quick] [--smoke]
//! ```
//!
//! Three sections:
//!
//! 1. **Lockstep equivalence** — on one shared BDD manager per design, each
//!    BFS step computes the new states twice: through a seed-style linear
//!    relational product replayed over the per-register partitions, and
//!    through the precomputed clustered schedule applied to the
//!    restrict-minimized frontier. Canonicity makes functional equality a
//!    handle comparison; any mismatch exits nonzero. This is the CI smoke
//!    gate for both clustering and frontier minimization.
//! 2. **Reachability throughput** — step-capped forward fixpoints under the
//!    seed configuration (linear schedule, no minimization) and the
//!    overhauled one (clustered, minimized), on separate managers with
//!    reordering disabled. Reached-set cardinalities and verdicts must
//!    agree; wall time and unique-table probes quantify the speedup.
//! 3. **Property verdicts** — the same two configurations must return
//!    identical verdicts (and hit depths) for the bundled property and
//!    coverage targets.
//! 4. **Parallel image sweep** — the overhauled configuration at
//!    `--bdd-threads` 1/2/4/8 (1/2 under `--smoke`). The serial run is the
//!    reference: every thread count must reproduce its verdict, step count,
//!    reached-set and per-ring node counts exactly — parallel image
//!    computation imports canonical results back into the master manager, so
//!    any divergence is a kernel bug and exits nonzero. Wall-clock speedups
//!    and shard-lock contention are reported as measured (on a single-core
//!    host speedups hover near or below 1.0×; the equivalence gate, not the
//!    speedup, is the CI criterion).
//! 5. **Ordering** — the same fixpoint three ways: *cold* under the seed
//!    declaration order, *cold* under the FORCE static pre-order, and
//!    *warm* from the order/ring store the seed run persisted (the
//!    repeat-run path behind `--order-cache-dir`). All three must agree on
//!    the verdict, the step count and every ring's state-set *cardinality*
//!    (node counts legitimately differ across variable orders, so the gate
//!    is `sat_count`, not size). Wall-clock, peak nodes and sift counts
//!    quantify the win; under `--smoke` the warm run must also sift no more
//!    than the cold run it resumed from.
//! 6. **Multi-property grouping** — two legs. Per design, a multi-target
//!    `forward_reach_multi` over the case target plus register sub-targets
//!    must reproduce every dedicated single-target run's verdict and hit
//!    depth from one shared fixpoint. Then the many-property synthetic
//!    (disjoint saturating counters, several properties each) runs through
//!    `VerifySession` grouped and ungrouped at one thread: verdicts and
//!    depths must match property-for-property, the clustering must recover
//!    at least one non-singleton group, and — outside `--smoke` — the
//!    grouped portfolio must be at least 2x faster in aggregate wall time.
//!
//! The models are bounded abstractions — the BFS-nearest registers of each
//! target, as the coverage engine's initial abstraction would pick — since
//! full-COI reachability on the paper-sized processor is exactly the
//! capacity wall the RFN loop exists to avoid. Results are written to
//! `BENCH_mc.json` (hand-rolled JSON, no dependencies). `--smoke` shrinks
//! the register and step caps for CI; `--quick` selects the scaled-down
//! designs (paper-sized otherwise).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use rfn_bdd::{Bdd, BddManager, VarId};
use rfn_bench::common::{build_model, grouped_synthetic, make_case, Case};
use rfn_bench::Scale;
use rfn_designs::{fifo_controller, integer_unit, processor_module, usb_controller};
use rfn_mc::{
    forward_reach, forward_reach_multi, forward_reach_warm, ModelOptions, ModelSpec, ReachOptions,
    ReachResult, ReachVerdict, SymbolicModel,
};
use rfn_netlist::SignalId;

/// One configuration's measurements for a reachability run.
struct Run {
    build_ms: f64,
    reach_ms: f64,
    steps: usize,
    unique_probes: u64,
    peak_nodes: usize,
    clusters: usize,
    restrict_hits: u64,
    restrict_misses: u64,
    verdict: ReachVerdict,
    reached_nodes: usize,
    ring_nodes: Vec<usize>,
    shard_locks: u64,
    shard_contended: u64,
}

/// A throughput-comparison row (section 2).
struct ReachRow {
    design: String,
    target: String,
    registers: usize,
    linear: Run,
    clustered: Run,
}

impl ReachRow {
    fn time_speedup(&self) -> f64 {
        self.linear.reach_ms / self.clustered.reach_ms.max(1e-9)
    }

    fn ops_ratio(&self) -> f64 {
        self.linear.unique_probes as f64 / (self.clustered.unique_probes as f64).max(1.0)
    }
}

/// A verdict-comparison row (section 3).
struct VerdictRow {
    design: String,
    target: String,
    verdict: ReachVerdict,
    linear_ms: f64,
    clustered_ms: f64,
}

/// A parallel-sweep row (section 4): the same fixpoint at several
/// `bdd_threads` settings. `runs[0]` is the 1-thread reference.
struct ParRow {
    design: String,
    target: String,
    registers: usize,
    runs: Vec<(usize, Run)>,
}

impl ParRow {
    /// Wall-clock speedup of the given run over the serial reference.
    fn speedup(&self, k: usize) -> f64 {
        self.runs[0].1.reach_ms / self.runs[k].1.reach_ms.max(1e-9)
    }
}

/// One ordering configuration's measurements (section 5).
struct OrderRun {
    build_ms: f64,
    reach_ms: f64,
    steps: usize,
    peak_nodes: usize,
    sift_runs: u64,
    verdict: ReachVerdict,
}

impl OrderRun {
    fn total_ms(&self) -> f64 {
        self.build_ms + self.reach_ms
    }
}

/// An ordering-comparison row (section 5): cold seed order vs. FORCE
/// pre-order vs. warm-start from the persisted store.
struct OrderRow {
    design: String,
    target: String,
    registers: usize,
    cold: OrderRun,
    force: OrderRun,
    warm: OrderRun,
}

impl OrderRow {
    /// Reach wall-time speedup of the FORCE pre-order over the cold seed
    /// run (`build_ms` reports FORCE's up-front arrangement cost
    /// separately).
    fn force_speedup(&self) -> f64 {
        self.cold.reach_ms / self.force.reach_ms.max(1e-9)
    }

    /// Reach wall-time speedup of the warm-started repeat run over the
    /// cold one (the store load and order rebuild are in the warm run's
    /// `build_ms`).
    fn warm_speedup(&self) -> f64 {
        self.cold.reach_ms / self.warm.reach_ms.max(1e-9)
    }
}

/// A multi-target grouping row (section 6): the case target plus register
/// sub-targets, resolved by one shared fixpoint vs dedicated runs.
struct MultiRow {
    design: String,
    targets: usize,
    single_ms_total: f64,
    multi_ms: f64,
}

impl MultiRow {
    fn speedup(&self) -> f64 {
        self.single_ms_total / self.multi_ms.max(1e-9)
    }
}

/// The session-level synthetic comparison (section 6): one netlist of
/// disjoint counters, verified grouped and ungrouped.
struct SyntheticRow {
    groups: usize,
    props: usize,
    non_singleton: usize,
    ungrouped_ms: f64,
    grouped_ms: f64,
}

impl SyntheticRow {
    fn speedup(&self) -> f64 {
        self.ungrouped_ms / self.grouped_ms.max(1e-9)
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let step_cap = usize_flag("--steps").unwrap_or(if smoke { 10 } else { 24 });
    let reg_override = usize_flag("--regs").or(if smoke { Some(20) } else { None });
    let only = string_flag("--only");
    println!("mcbench: image computation (scale: {scale:?}, smoke: {smoke})");
    println!();

    // `--design <spec>` (repeatable) replaces the builtin case list with
    // designs loaded through `DesignSource` — any spec form works
    // (`builtin:<name>`, `fuzz:<seed>`, `.aag`/`.aig`/`.cnf` paths).
    let design_specs = string_flags("--design");
    let mut cases = if design_specs.is_empty() {
        build_cases(scale, reg_override, step_cap)
    } else {
        let mut cases = Vec::new();
        for spec in &design_specs {
            match rfn_bench::common::design_case(spec, reg_override.unwrap_or(32), step_cap) {
                Ok(case) => cases.push(case),
                Err(e) => {
                    eprintln!("mcbench: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        cases
    };
    if let Some(only) = &only {
        cases.retain(|c| c.name == *only);
    }

    // Section 1: lockstep equivalence on a shared manager.
    for case in &cases {
        match lockstep_equivalence(case) {
            Ok((steps, clusters)) => println!(
                "lockstep ok: {}/{} ({} steps, {} partitions -> {} clusters)",
                case.name,
                case.target_name,
                steps,
                case.spec.registers.len(),
                clusters
            ),
            Err(msg) => {
                eprintln!(
                    "mcbench: clustered/linear image MISMATCH on {}/{}: {msg}",
                    case.name, case.target_name
                );
                return ExitCode::from(1);
            }
        }
    }
    println!();

    // Section 2: step-capped reachability throughput, seed vs. overhauled.
    let mut reach_rows = Vec::new();
    for case in &cases {
        let linear = run_seed_reach(case, None);
        let clustered = run_reach(case, None);
        if let Err(msg) = check_agreement(&linear, &clustered) {
            eprintln!(
                "mcbench: reachability DISAGREEMENT on {}/{}: {msg}",
                case.name, case.target_name
            );
            return ExitCode::from(1);
        }
        let row = ReachRow {
            design: case.name.clone(),
            target: case.target_name.clone(),
            registers: case.spec.registers.len(),
            linear,
            clustered,
        };
        println!(
            "{:<14} {:>3} regs  linear {:>9.1} ms  clustered {:>9.1} ms  {:>5.1}x time  {:>5.1}x ops",
            row.design,
            row.registers,
            row.linear.reach_ms,
            row.clustered.reach_ms,
            row.time_speedup(),
            row.ops_ratio()
        );
        reach_rows.push(row);
    }
    println!();

    // Section 3: property/coverage verdict equivalence.
    let mut verdict_rows = Vec::new();
    for case in &cases {
        let linear = run_seed_reach(case, Some((case.target, case.value)));
        let clustered = run_reach(case, Some((case.target, case.value)));
        if let Err(msg) = check_agreement(&linear, &clustered) {
            eprintln!(
                "mcbench: verdict DISAGREEMENT on {}/{}: {msg}",
                case.name, case.target_name
            );
            return ExitCode::from(1);
        }
        println!(
            "verdict ok: {}/{} -> {:?} (linear {:.1} ms, clustered {:.1} ms)",
            case.name, case.target_name, clustered.verdict, linear.reach_ms, clustered.reach_ms
        );
        verdict_rows.push(VerdictRow {
            design: case.name.clone(),
            target: case.target_name.clone(),
            verdict: clustered.verdict,
            linear_ms: linear.reach_ms,
            clustered_ms: clustered.reach_ms,
        });
    }
    println!();

    // Section 4: intra-image parallelism. Every thread count must reproduce
    // the serial run bit-for-bit (verdict, steps, reached set, rings); the
    // speedup column is informational — the equivalence gate is the CI
    // criterion.
    let sweep: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut par_rows = Vec::new();
    for case in &cases {
        let runs: Vec<(usize, Run)> = sweep
            .iter()
            .map(|&t| (t, run_reach_at(case, Some((case.target, case.value)), t)))
            .collect();
        for (t, run) in &runs[1..] {
            if let Err(msg) = check_agreement(&runs[0].1, run) {
                eprintln!(
                    "mcbench: parallel DISAGREEMENT on {}/{} at {t} threads: {msg}",
                    case.name, case.target_name
                );
                return ExitCode::from(1);
            }
        }
        let row = ParRow {
            design: case.name.clone(),
            target: case.target_name.clone(),
            registers: case.spec.registers.len(),
            runs,
        };
        let cols: Vec<String> = row
            .runs
            .iter()
            .enumerate()
            .map(|(k, (t, r))| format!("{t}t {:>7.1} ms ({:.2}x)", r.reach_ms, row.speedup(k)))
            .collect();
        println!("parallel ok: {:<14} {}", row.design, cols.join("  "));
        par_rows.push(row);
    }

    println!();

    // Section 5: ordering. Cold seed order vs. FORCE pre-order vs. a warm
    // start from the store the cold run saved. The gates are semantic
    // (verdict, steps, per-ring cardinalities); the times are the payoff.
    let cache_dir = std::env::temp_dir().join("rfn-mcbench-order");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut order_rows = Vec::new();
    for case in &cases {
        match ordering_case(case, &cache_dir, smoke) {
            Ok(row) => {
                println!(
                    "ordering ok: {:<14} cold {:>8.1} ms  force {:>8.1} ms ({:.2}x)  \
                     warm {:>8.1} ms ({:.2}x)  sifts {}:{}:{}",
                    row.design,
                    row.cold.reach_ms,
                    row.force.reach_ms,
                    row.force_speedup(),
                    row.warm.reach_ms,
                    row.warm_speedup(),
                    row.cold.sift_runs,
                    row.force.sift_runs,
                    row.warm.sift_runs
                );
                order_rows.push(row);
            }
            Err(msg) => {
                eprintln!(
                    "mcbench: ordering FAILURE on {}/{}: {msg}",
                    case.name, case.target_name
                );
                return ExitCode::from(1);
            }
        }
    }

    println!();

    // Section 6: multi-property grouping. Per design, one shared fixpoint
    // must resolve several targets with the depths dedicated runs find;
    // then the synthetic portfolio gates the session-level speedup.
    let mut multi_rows = Vec::new();
    for case in &cases {
        match multi_target_case(case) {
            Ok(row) => {
                println!(
                    "multi ok: {:<14} {} targets  singles {:>8.1} ms  multi {:>8.1} ms ({:.2}x)",
                    row.design,
                    row.targets,
                    row.single_ms_total,
                    row.multi_ms,
                    row.speedup()
                );
                multi_rows.push(row);
            }
            Err(msg) => {
                eprintln!(
                    "mcbench: multi-target DISAGREEMENT on {}/{}: {msg}",
                    case.name, case.target_name
                );
                return ExitCode::from(1);
            }
        }
    }
    let synthetic = match synthetic_sessions(smoke) {
        Ok(row) => {
            println!(
                "synthetic ok: {} groups x {} props  ungrouped {:>8.1} ms  grouped {:>8.1} ms \
                 ({:.2}x, {} non-singleton groups)",
                row.groups,
                row.props / row.groups,
                row.ungrouped_ms,
                row.grouped_ms,
                row.speedup(),
                row.non_singleton
            );
            row
        }
        Err(msg) => {
            eprintln!("mcbench: synthetic grouping FAILURE: {msg}");
            return ExitCode::from(1);
        }
    };
    if !smoke && synthetic.speedup() < 2.0 {
        eprintln!(
            "mcbench: synthetic grouping speedup {:.2}x below the 2x gate",
            synthetic.speedup()
        );
        return ExitCode::from(1);
    }

    let json = render_json(
        &reach_rows,
        &verdict_rows,
        &par_rows,
        &order_rows,
        &multi_rows,
        &synthetic,
        smoke,
    );
    if let Err(e) = std::fs::write("BENCH_mc.json", &json) {
        eprintln!("mcbench: writing BENCH_mc.json: {e}");
        return ExitCode::from(1);
    }
    println!();
    println!("wrote BENCH_mc.json");
    ExitCode::SUCCESS
}

/// Parses a `--flag <n>` override from the command line.
fn usize_flag(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// Parses a `--flag <value>` string override from the command line.
fn string_flag(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// All values of a repeatable `--flag <value>`, in command-line order.
fn string_flags(flag: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .collect()
}

/// Assembles the benchmark cases: the Table 1 property designs plus the
/// Table 2 coverage designs, each bounded to the BFS-nearest registers of
/// its target. The per-design register caps are tuned so a reorder-free
/// fixpoint stays in the seconds range while the state space is still large
/// enough to exercise the image pipeline (`--regs` overrides all of them).
fn build_cases(scale: Scale, reg_override: Option<usize>, steps: usize) -> Vec<Case> {
    let cap = |default: usize| reg_override.unwrap_or(default);
    let mut cases = Vec::new();
    let fifo = fifo_controller(&scale.fifo());
    let p = fifo.property("psh_full").expect("bundled property");
    cases.push(make_case(
        "fifo",
        fifo.netlist.clone(),
        p.name.clone(),
        p.signal,
        p.value,
        cap(24),
        steps,
    ));

    let iu = integer_unit(&scale.integer_unit());
    let set = &iu.coverage_sets[0];
    let target = set.signals[0];
    cases.push(make_case(
        "integer_unit",
        iu.netlist.clone(),
        set.name.clone(),
        target,
        true,
        cap(40),
        steps,
    ));

    let usb = usb_controller(&scale.usb());
    let set = &usb.coverage_sets[0];
    let target = set.signals[0];
    cases.push(make_case(
        "usb",
        usb.netlist.clone(),
        set.name.clone(),
        target,
        true,
        cap(32),
        steps,
    ));

    let proc = processor_module(&scale.processor());
    let p = proc.property("error_flag").expect("bundled property");
    cases.push(make_case(
        "processor",
        proc.netlist.clone(),
        p.name.clone(),
        p.signal,
        p.value,
        cap(96),
        steps,
    ));
    cases
}

/// Runs a BFS where every step's new states are computed both by a
/// seed-style linear relational product over the raw partitions and by the
/// model's clustered schedule on a restrict-minimized frontier, on the SAME
/// manager. Canonicity reduces functional equality to handle equality.
fn lockstep_equivalence(case: &Case) -> Result<(usize, usize), String> {
    let mut model =
        SymbolicModel::new(&case.netlist, case.spec.clone()).map_err(|e| format!("model: {e}"))?;
    let clusters = model.transition().num_clusters();
    let quant = post_quant_vars(&model, &case.spec);
    let zero = model.manager_ref().zero();
    let init = model.init_states().map_err(|e| format!("init: {e}"))?;
    let mut reached = init;
    let mut frontier = init;
    for step in 0..case.steps {
        let img_lin = linear_post_image(&mut model, frontier, &quant)
            .map_err(|e| format!("linear image, step {step}: {e}"))?;
        let (min, not_reached) = {
            let mgr = model.manager();
            let not_reached = mgr.not(reached).map_err(|e| e.to_string())?;
            let care = mgr.or(frontier, not_reached).map_err(|e| e.to_string())?;
            let min = mgr.gc_restrict(frontier, care).map_err(|e| e.to_string())?;
            (min, not_reached)
        };
        let img_clu = model
            .post_image(min)
            .map_err(|e| format!("clustered image, step {step}: {e}"))?;
        let mgr = model.manager();
        let new_lin = mgr.and(img_lin, not_reached).map_err(|e| e.to_string())?;
        let new_clu = mgr.and(img_clu, not_reached).map_err(|e| e.to_string())?;
        if new_lin != new_clu {
            return Err(format!(
                "step {step}: linear new-states differ from clustered+minimized"
            ));
        }
        if new_lin == zero {
            return Ok((step, clusters));
        }
        reached = mgr.or(reached, new_lin).map_err(|e| e.to_string())?;
        frontier = new_lin;
    }
    Ok((case.steps, clusters))
}

/// The seed's post-image: one `and_exists` per register partition in index
/// order, quantifying each variable at the last partition that mentions it
/// (per-call suffix-support scan, exactly as the pre-overhaul code did).
fn linear_post_image(
    model: &mut SymbolicModel,
    q: Bdd,
    quant: &BTreeSet<VarId>,
) -> Result<Bdd, rfn_bdd::BddError> {
    let parts: Vec<Bdd> = model.transition().parts().to_vec();
    let n = parts.len();
    let mut suffix: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); n + 1];
    for i in (0..n).rev() {
        let mut s = suffix[i + 1].clone();
        s.extend(model.manager_ref().support(parts[i]));
        suffix[i] = s;
    }
    let mut remaining = quant.clone();
    let mut acc = q;
    for (i, part) in parts.iter().enumerate() {
        let now: Vec<VarId> = remaining
            .iter()
            .copied()
            .filter(|v| !suffix[i + 1].contains(v))
            .collect();
        for v in &now {
            remaining.remove(v);
        }
        let mgr = model.manager();
        let cube = mgr.var_cube(now);
        acc = mgr.and_exists(acc, *part, cube)?;
    }
    if !remaining.is_empty() {
        let mgr = model.manager();
        let cube = mgr.var_cube(remaining.iter().copied());
        acc = mgr.exists(acc, cube)?;
    }
    model.nxt_to_cur(acc)
}

/// The variables a post-image quantifies: current-state and input.
fn post_quant_vars(model: &SymbolicModel, spec: &ModelSpec) -> BTreeSet<VarId> {
    spec.registers
        .iter()
        .map(|&r| model.current_var(r).expect("register has a variable"))
        .chain(model.transition().input_vars().iter().copied())
        .collect()
}

/// A step-capped BFS through the seed's image pipeline: per-call
/// suffix-support scan, per-call quantification-cube rebuild, one
/// `and_exists` per register partition, no frontier minimization. The loop
/// mirrors `forward_reach`'s verdict semantics exactly. The collector stays
/// off (it only costs time at these model sizes), which favors this
/// baseline and keeps the reported speedups conservative.
fn run_seed_reach(case: &Case, target: Option<(SignalId, bool)>) -> Run {
    let (mut model, target_bdd, build_ms) = build_model(case, target, 0);
    let quant = post_quant_vars(&model, &case.spec);
    let zero = model.manager_ref().zero();
    let before = model.manager_ref().stats();
    let reach_start = Instant::now();
    let init = model.init_states().expect("no node limit set");
    let mut rings = vec![init];
    let mut reached = init;
    let mut frontier = init;
    let mut steps = 0usize;
    let mut peak = model.manager_ref().num_nodes();
    let mut verdict = ReachVerdict::Aborted;
    let mgr_and = |model: &mut SymbolicModel, a: Bdd, b: Bdd| -> Bdd {
        model.manager().and(a, b).expect("no node limit set")
    };
    if mgr_and(&mut model, init, target_bdd) != zero {
        verdict = ReachVerdict::TargetHit { step: 0 };
    } else {
        loop {
            if steps >= case.steps {
                break;
            }
            let img = linear_post_image(&mut model, frontier, &quant).expect("no node limit set");
            let nr = model.manager().not(reached).expect("no node limit set");
            let new = mgr_and(&mut model, img, nr);
            steps += 1;
            peak = peak.max(model.manager_ref().num_nodes());
            if new == zero {
                verdict = ReachVerdict::FixpointProved;
                break;
            }
            reached = model.manager().or(reached, new).expect("no node limit set");
            rings.push(new);
            frontier = new;
            if mgr_and(&mut model, new, target_bdd) != zero {
                verdict = ReachVerdict::TargetHit { step: steps };
                break;
            }
        }
    }
    let reach_ms = reach_start.elapsed().as_secs_f64() * 1e3;
    let stats = model.manager_ref().stats();
    Run {
        build_ms,
        reach_ms,
        steps,
        unique_probes: stats.unique_probes - before.unique_probes,
        peak_nodes: peak,
        clusters: model.transition().num_clusters(),
        restrict_hits: stats.restrict_hits,
        restrict_misses: stats.restrict_misses,
        verdict,
        reached_nodes: model.manager_ref().size(reached),
        ring_nodes: rings.iter().map(|&r| model.manager_ref().size(r)).collect(),
        shard_locks: 0,
        shard_contended: 0,
    }
}

/// One step-capped `forward_reach` under the overhauled configuration
/// (clustered schedule, frontier minimization; `--cluster-limit` and
/// `--no-frontier-simplify` override). `target` of `None` runs a pure
/// reachability sweep (target never hit).
fn run_reach(case: &Case, target: Option<(SignalId, bool)>) -> Run {
    run_reach_at(case, target, 1)
}

/// [`run_reach`] at an explicit `bdd_threads` setting (section 4's sweep).
fn run_reach_at(case: &Case, target: Option<(SignalId, bool)>, bdd_threads: usize) -> Run {
    let cluster_limit =
        rfn_bench::cluster_limit_from_args().unwrap_or(rfn_mc::DEFAULT_CLUSTER_LIMIT);
    let frontier_simplify = rfn_bench::frontier_simplify_from_args();
    let (mut model, target_bdd, build_ms) = build_model(case, target, cluster_limit);
    let opts = ReachOptions::default()
        .with_max_steps(case.steps)
        .with_reorder(false)
        .with_cluster_limit(cluster_limit)
        .with_frontier_simplify(frontier_simplify)
        .with_bdd_threads(bdd_threads);
    // Snapshot the counters so the probe delta covers the fixpoint only,
    // not the transition-relation build (whose cost `build_ms` reports).
    let before = model.manager_ref().stats();
    let reach_start = Instant::now();
    let result: ReachResult =
        forward_reach(&mut model, target_bdd, &opts).expect("no node limit set");
    let reach_ms = reach_start.elapsed().as_secs_f64() * 1e3;
    let stats = result.stats;
    let probes = stats.unique_probes - before.unique_probes;
    Run {
        build_ms,
        reach_ms,
        steps: result.steps,
        unique_probes: probes,
        peak_nodes: result.peak_nodes,
        clusters: model.transition().num_clusters(),
        restrict_hits: stats.restrict_hits,
        restrict_misses: stats.restrict_misses,
        verdict: result.verdict,
        reached_nodes: model.manager_ref().size(result.reached),
        ring_nodes: result
            .rings
            .iter()
            .map(|&r| model.manager_ref().size(r))
            .collect(),
        shard_locks: stats.shard_locks,
        shard_contended: stats.shard_contended,
    }
}

/// One ordering case (section 5), end to end: a cold seed run that
/// persists its converged order and rings to `cache_dir`, a cold FORCE
/// run, and a warm run that loads the store back from disk. Both
/// challengers must agree with the cold run exactly; under `--smoke` the
/// warm run must additionally sift no more than the cold run it resumed.
fn ordering_case(
    case: &Case,
    cache_dir: &std::path::Path,
    smoke: bool,
) -> Result<OrderRow, String> {
    // The cold model stays alive as the referee manager for the exact
    // ring-equality checks below.
    let (mut cold_model, cold_result, cold) =
        run_order_reach(case, rfn_mc::StaticOrder::Seed, None, smoke);
    let store = rfn_mc::store::snapshot_model(&cold_model, &case.target_name, &cold_result.rings)
        .map_err(|e| format!("snapshotting cold run: {e}"))?;
    rfn_mc::store::save_store(cache_dir, &store).map_err(|e| format!("saving store: {e}"))?;

    let (force_model, force_result, force) =
        run_order_reach(case, rfn_mc::StaticOrder::Force, None, smoke);
    check_order_agreement(
        "force",
        &mut cold_model,
        (&cold_result, &cold),
        (&force_model, &force_result, &force),
        &case.target_name,
    )?;
    drop(force_model);

    let loaded =
        rfn_mc::store::load_store(cache_dir, case.netlist.structural_hash(), &case.target_name)
            .map_err(|e| format!("loading store: {e}"))?
            .ok_or("order store vanished between save and load")?;
    let (warm_model, warm_result, warm) =
        run_order_reach(case, rfn_mc::StaticOrder::Seed, Some(&loaded), smoke);
    check_order_agreement(
        "warm",
        &mut cold_model,
        (&cold_result, &cold),
        (&warm_model, &warm_result, &warm),
        &case.target_name,
    )?;
    if smoke && warm.sift_runs > cold.sift_runs {
        return Err(format!(
            "warm start sifted MORE than cold ({} vs {})",
            warm.sift_runs, cold.sift_runs
        ));
    }
    Ok(OrderRow {
        design: case.name.clone(),
        target: case.target_name.clone(),
        registers: case.spec.registers.len(),
        cold,
        force,
        warm,
    })
}

/// One ordering run (section 5): cold seed order, cold FORCE order, or —
/// when `warm` carries the store a previous run saved — the warm-start
/// repeat path. Reordering runs under the default doubling schedule at the
/// default sift floor; only `--smoke`, whose shrunken designs would never
/// cross that floor, lowers it so the DVO scheduler (and the sifts-less
/// warm-start gate) is still exercised. The model and full reach result
/// are returned so the caller can run exact cross-run equality checks.
fn run_order_reach<'n>(
    case: &'n Case,
    order: rfn_mc::StaticOrder,
    warm: Option<&rfn_bdd::BddStore>,
    smoke: bool,
) -> (SymbolicModel<'n>, ReachResult, OrderRun) {
    let build_start = Instant::now();
    let mut model = SymbolicModel::with_options(
        &case.netlist,
        case.spec.clone(),
        BddManager::new(),
        ModelOptions {
            static_order: order,
            ..ModelOptions::default()
        },
    )
    .expect("bundled designs validate");
    let rings = match warm {
        Some(store) => rfn_mc::store::apply_store(&mut model, store, &case.target_name)
            .expect("the store this bench just saved applies"),
        None => Vec::new(),
    };
    // A pure reachability sweep (no target), like section 2: the early-hit
    // properties would end after one or two images and turn the ordering
    // comparison into sub-millisecond noise. Section 3 gates verdicts on
    // the real targets; this section measures image throughput per order.
    let target_bdd = model.manager_ref().zero();
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let mut opts = ReachOptions::default()
        .with_max_steps(case.steps)
        .with_static_order(order);
    if smoke {
        opts.reorder_threshold = 1_000;
    }
    let before = model.manager_ref().stats();
    let reach_start = Instant::now();
    let result =
        forward_reach_warm(&mut model, target_bdd, &opts, &rings).expect("no node limit set");
    let reach_ms = reach_start.elapsed().as_secs_f64() * 1e3;
    let run = OrderRun {
        build_ms,
        reach_ms,
        steps: result.steps,
        peak_nodes: result.peak_nodes,
        sift_runs: result.stats.sift_runs - before.sift_runs,
        verdict: result.verdict,
    };
    (model, result, run)
}

/// Exact semantic agreement between two ordering runs: identical verdicts
/// and step counts, and every onion ring must denote the identical state
/// set. Node counts are order-dependent and `sat_count` overflows past
/// ~1000 variables, so the ring check is exact instead: the challenger's
/// rings are serialized through the store (labels, not raw variable ids),
/// rebuilt inside the *cold* run's manager, and compared handle-for-handle
/// — ROBDD canonicity makes that a precise functional equality even though
/// the two runs sifted to different orders.
fn check_order_agreement(
    label: &str,
    referee: &mut SymbolicModel<'_>,
    cold: (&ReachResult, &OrderRun),
    other: (&SymbolicModel<'_>, &ReachResult, &OrderRun),
    key: &str,
) -> Result<(), String> {
    let (cold_result, cold_run) = cold;
    let (other_model, other_result, other_run) = other;
    if cold_run.verdict != other_run.verdict {
        return Err(format!(
            "{label}: verdicts differ: cold {:?} vs {:?}",
            cold_run.verdict, other_run.verdict
        ));
    }
    if cold_run.steps != other_run.steps {
        return Err(format!(
            "{label}: step counts differ: cold {} vs {}",
            cold_run.steps, other_run.steps
        ));
    }
    let store = rfn_mc::store::snapshot_model(other_model, key, &other_result.rings)
        .map_err(|e| format!("{label}: snapshotting challenger: {e}"))?;
    let rebuilt = rfn_mc::store::apply_store(referee, &store, key)
        .map_err(|e| format!("{label}: rebuilding challenger rings in referee: {e}"))?;
    if rebuilt.len() != cold_result.rings.len() {
        return Err(format!(
            "{label}: ring counts differ: cold {} vs {}",
            cold_result.rings.len(),
            rebuilt.len()
        ));
    }
    for (k, (&theirs, &ours)) in rebuilt.iter().zip(&cold_result.rings).enumerate() {
        if theirs != ours {
            return Err(format!("{label}: ring {k} denotes a different state set"));
        }
    }
    Ok(())
}

/// Both configurations must agree on the verdict, the step count and the
/// reached set. The managers differ so handles cannot be compared, but both
/// models build the identical variable order (clustering happens after the
/// partitions fix it) and reordering is off, so ROBDD canonicity makes the
/// node counts of the reached set and every ring an exact functional check.
fn check_agreement(linear: &Run, clustered: &Run) -> Result<(), String> {
    if linear.verdict != clustered.verdict {
        return Err(format!(
            "verdicts differ: linear {:?} vs clustered {:?}",
            linear.verdict, clustered.verdict
        ));
    }
    if linear.steps != clustered.steps {
        return Err(format!(
            "step counts differ: linear {} vs clustered {}",
            linear.steps, clustered.steps
        ));
    }
    if linear.reached_nodes != clustered.reached_nodes {
        return Err(format!(
            "reached-set node counts differ: linear {} vs clustered {}",
            linear.reached_nodes, clustered.reached_nodes
        ));
    }
    if linear.ring_nodes != clustered.ring_nodes {
        return Err(format!(
            "ring node counts differ: linear {:?} vs clustered {:?}",
            linear.ring_nodes, clustered.ring_nodes
        ));
    }
    Ok(())
}

/// The section-6 target list for a case: the real case target plus the
/// first two bounded-abstraction registers as value-1 sub-targets, all on
/// the given model's manager.
fn group_targets(model: &mut SymbolicModel, case: &Case) -> Vec<Bdd> {
    let sig = model
        .signal_bdd(case.target)
        .expect("target is in the bounded cone");
    let first = if case.value {
        sig
    } else {
        model.manager().not(sig).expect("no node limit set")
    };
    let mut targets = vec![first];
    for &r in case.spec.registers.iter().take(2) {
        targets.push(model.signal_bdd(r).expect("spec register has a variable"));
    }
    targets
}

/// One multi-target case (section 6): every target's verdict and hit depth
/// from the shared `forward_reach_multi` fixpoint must equal its dedicated
/// `forward_reach` run's.
fn multi_target_case(case: &Case) -> Result<MultiRow, String> {
    let opts = ReachOptions::default()
        .with_max_steps(case.steps)
        .with_reorder(false);

    let (mut model, _, _) = build_model(case, None, rfn_mc::DEFAULT_CLUSTER_LIMIT);
    let targets = group_targets(&mut model, case);
    let n_targets = targets.len();
    let multi_start = Instant::now();
    let multi =
        forward_reach_multi(&mut model, &targets, &opts).map_err(|e| format!("multi: {e}"))?;
    let multi_ms = multi_start.elapsed().as_secs_f64() * 1e3;
    drop(model);

    let mut single_ms_total = 0.0;
    for (k, verdict) in multi.verdicts.iter().enumerate() {
        let (mut model, _, _) = build_model(case, None, rfn_mc::DEFAULT_CLUSTER_LIMIT);
        let target = group_targets(&mut model, case)[k];
        let start = Instant::now();
        let single =
            forward_reach(&mut model, target, &opts).map_err(|e| format!("single {k}: {e}"))?;
        single_ms_total += start.elapsed().as_secs_f64() * 1e3;
        if verdict.as_reach_verdict() != single.verdict {
            return Err(format!(
                "target {k}: multi {:?} vs dedicated {:?}",
                verdict.as_reach_verdict(),
                single.verdict
            ));
        }
    }
    Ok(MultiRow {
        design: case.name.clone(),
        targets: n_targets,
        single_ms_total,
        multi_ms,
    })
}

/// The session-level synthetic comparison (section 6): the many-property
/// synthetic verified grouped and ungrouped through `VerifySession` at one
/// thread. Verdict/depth equality and at least one non-singleton group are
/// hard gates here; the 2x speedup gate is applied by the caller outside
/// `--smoke`.
fn synthetic_sessions(smoke: bool) -> Result<SyntheticRow, String> {
    let (groups, props_per_group) = if smoke { (2, 3) } else { (6, 12) };
    let (netlist, props) = grouped_synthetic(groups, props_per_group);
    let run = |grouping: bool| -> Result<(rfn_core::SessionReport, f64), String> {
        let start = Instant::now();
        let report = rfn_core::VerifySession::new(&netlist)
            .properties(props.iter().cloned())
            .engine(rfn_core::EngineKind::PlainMc)
            .grouping(grouping)
            .threads(1)
            .run()
            .map_err(|e| e.to_string())?;
        Ok((report, start.elapsed().as_secs_f64() * 1e3))
    };
    let (grouped, grouped_ms) = run(true)?;
    let (ungrouped, ungrouped_ms) = run(false)?;
    for ((g, u), prop) in grouped.results.iter().zip(&ungrouped.results).zip(&props) {
        let gv = format!("{:?}", g.verdict);
        let uv = format!("{:?}", u.verdict);
        if gv != uv {
            return Err(format!("`{}`: grouped {gv} vs ungrouped {uv}", prop.name));
        }
    }
    let non_singleton = grouped.groups.iter().filter(|g| g.len() > 1).count();
    if non_singleton == 0 {
        return Err("clustering produced no non-singleton group".to_owned());
    }
    Ok(SyntheticRow {
        groups,
        props: props.len(),
        non_singleton,
        ungrouped_ms,
        grouped_ms,
    })
}

fn render_run(run: &Run) -> String {
    format!(
        "{{\"build_ms\": {:.1}, \"reach_ms\": {:.1}, \"steps\": {}, \"clusters\": {}, \
         \"unique_probes\": {}, \"peak_nodes\": {}, \"restrict_hits\": {}, \
         \"restrict_misses\": {}}}",
        run.build_ms,
        run.reach_ms,
        run.steps,
        run.clusters,
        run.unique_probes,
        run.peak_nodes,
        run.restrict_hits,
        run.restrict_misses
    )
}

fn render_order_run(run: &OrderRun) -> String {
    format!(
        "{{\"build_ms\": {:.1}, \"reach_ms\": {:.1}, \"total_ms\": {:.1}, \"steps\": {}, \
         \"peak_nodes\": {}, \"sift_runs\": {}}}",
        run.build_ms,
        run.reach_ms,
        run.total_ms(),
        run.steps,
        run.peak_nodes,
        run.sift_runs
    )
}

fn render_json(
    reach: &[ReachRow],
    verdicts: &[VerdictRow],
    parallel: &[ParRow],
    ordering: &[OrderRow],
    multi: &[MultiRow],
    synthetic: &SyntheticRow,
    smoke: bool,
) -> String {
    let mut s = String::from("{\n  \"bench\": \"mc\",\n");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    s.push_str("  \"reach\": [\n");
    for (k, r) in reach.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"design\": \"{}\", \"target\": \"{}\", \"registers\": {}, \
             \"linear\": {}, \"clustered\": {}, \"time_speedup\": {:.2}, \"ops_ratio\": {:.2}}}",
            r.design,
            r.target,
            r.registers,
            render_run(&r.linear),
            render_run(&r.clustered),
            r.time_speedup(),
            r.ops_ratio()
        );
        s.push_str(if k + 1 < reach.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"verdicts\": [\n");
    for (k, v) in verdicts.iter().enumerate() {
        let verdict = match v.verdict {
            ReachVerdict::FixpointProved => "proved".to_owned(),
            ReachVerdict::TargetHit { step } => format!("hit@{step}"),
            ReachVerdict::Aborted => "step_capped".to_owned(),
        };
        let _ = write!(
            s,
            "    {{\"design\": \"{}\", \"target\": \"{}\", \"verdict\": \"{verdict}\", \
             \"linear_ms\": {:.1}, \"clustered_ms\": {:.1}, \"agree\": true}}",
            v.design, v.target, v.linear_ms, v.clustered_ms
        );
        s.push_str(if k + 1 < verdicts.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"parallel\": [\n");
    for (k, p) in parallel.iter().enumerate() {
        let runs: Vec<String> = p
            .runs
            .iter()
            .enumerate()
            .map(|(j, (t, r))| {
                format!(
                    "{{\"threads\": {t}, \"reach_ms\": {:.1}, \"speedup\": {:.2}, \
                     \"shard_locks\": {}, \"shard_contended\": {}, \"agree\": true}}",
                    r.reach_ms,
                    p.speedup(j),
                    r.shard_locks,
                    r.shard_contended
                )
            })
            .collect();
        let _ = write!(
            s,
            "    {{\"design\": \"{}\", \"target\": \"{}\", \"registers\": {}, \"runs\": [{}]}}",
            p.design,
            p.target,
            p.registers,
            runs.join(", ")
        );
        s.push_str(if k + 1 < parallel.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"ordering\": [\n");
    for (k, o) in ordering.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"design\": \"{}\", \"target\": \"{}\", \"registers\": {}, \
             \"cold\": {}, \"force\": {}, \"warm\": {}, \
             \"force_speedup\": {:.2}, \"warm_speedup\": {:.2}, \"agree\": true}}",
            o.design,
            o.target,
            o.registers,
            render_order_run(&o.cold),
            render_order_run(&o.force),
            render_order_run(&o.warm),
            o.force_speedup(),
            o.warm_speedup()
        );
        s.push_str(if k + 1 < ordering.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"groups\": {\n    \"multi_target\": [\n");
    for (k, m) in multi.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"design\": \"{}\", \"targets\": {}, \"single_ms_total\": {:.1}, \
             \"multi_ms\": {:.1}, \"speedup\": {:.2}, \"agree\": true}}",
            m.design,
            m.targets,
            m.single_ms_total,
            m.multi_ms,
            m.speedup()
        );
        s.push_str(if k + 1 < multi.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "    ],\n    \"synthetic\": {{\"groups\": {}, \"properties\": {}, \
         \"non_singleton_groups\": {}, \"ungrouped_ms\": {:.1}, \"grouped_ms\": {:.1}, \
         \"speedup\": {:.2}, \"agree\": true}}\n",
        synthetic.groups,
        synthetic.props,
        synthetic.non_singleton,
        synthetic.ungrouped_ms,
        synthetic.grouped_ms,
        synthetic.speedup()
    );
    s.push_str("  }\n}\n");
    s
}
