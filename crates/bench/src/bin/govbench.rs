//! Resource-governance smoke benchmark: budget exhaustion latency and
//! checkpoint/resume on the processor design.
//!
//! ```text
//! cargo run -p rfn-bench --bin govbench --release [-- --quick] [--smoke]
//!           [--budget-ms <n>]
//! ```
//!
//! Two phases, each a CI gate (any violation exits nonzero):
//!
//! 1. **Exhaustion latency** — verify `error_flag` under a 2-second wall
//!    clock (`--budget-ms` overrides). The run must come back as a
//!    *structured* `Inconclusive` naming the time limit, and must return
//!    within budget + 500 ms: that bound is exactly the cooperative
//!    cancellation promise the engines make (budget polls at BDD
//!    allocations, fixpoint steps, ATPG backtracks and simulation batches).
//! 2. **Checkpoint/resume** — interrupt the same verification with a budget
//!    chosen to exhaust mid-loop while snapshotting after every refinement,
//!    then `resume` from the snapshot with the budget lifted. The resumed
//!    run must reach the conclusive verdict (`error_flag` is falsifiable at
//!    every scale) instead of starting over.
//!
//! `--smoke` runs phase 1 against the paper-sized processor (where two
//! seconds can never complete the proof, so exhaustion is guaranteed) but
//! phase 2 against the quick design so CI finishes in seconds; without it,
//! phase 2 resumes the paper-sized run itself to completion. `--quick`
//! shrinks phase 1's design too — useful on slow machines, paired with a
//! small `--budget-ms`.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rfn_core::prelude::*;
use rfn_designs::{processor_module, Design, ProcessorParams};

/// The grace the acceptance gate allows past the deadline: engines poll the
/// budget cooperatively, so a bounded overshoot is expected; an unbounded
/// one means some engine loop lost its poll.
const GRACE: Duration = Duration::from_millis(500);

fn quick_processor() -> Design {
    processor_module(&ProcessorParams {
        width: 16,
        regfile_words: 8,
        store_entries: 4,
        cache_lines: 4,
        pipe_stages: 2,
        multipliers: 2,
        stall_threshold: 27,
    })
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget_ms = std::env::args()
        .skip_while(|a| a != "--budget-ms")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000u64);
    println!("govbench: resource governance (quick: {quick}, smoke: {smoke})");
    println!();

    let mut failures = 0usize;

    // Phase 1: a budget-limited run must give up promptly and structurally.
    let design = if quick {
        quick_processor()
    } else {
        processor_module(&ProcessorParams::default())
    };
    let budget = Duration::from_millis(budget_ms);
    println!(
        "phase 1: error_flag on {} ({} registers) under a {budget_ms}ms budget",
        design.netlist.name(),
        design.netlist.num_registers()
    );
    let dir = std::env::temp_dir().join(format!("rfn-govbench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let property = design.property("error_flag").expect("property exists");
    let start = Instant::now();
    let outcome = Rfn::new(
        &design.netlist,
        property,
        RfnOptions::default()
            .with_checkpoint_dir(&dir)
            .with_time_limit(budget),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    let wall = start.elapsed();
    match &outcome {
        RfnOutcome::Inconclusive { reason, .. } => {
            println!("  inconclusive after {}ms: {reason}", wall.as_millis());
            if !reason.contains("time limit") {
                println!("  FAIL: reason does not name the time limit");
                failures += 1;
            }
            if wall > budget + GRACE {
                println!(
                    "  FAIL: returned {}ms past the deadline (allowed: {}ms)",
                    (wall - budget).as_millis(),
                    GRACE.as_millis()
                );
                failures += 1;
            }
        }
        other => {
            // Only possible when the budget outlasts the whole verification
            // (tiny design + generous budget): not a governance failure, but
            // the latency gate did not actually run.
            println!(
                "  note: run finished conclusively in {}ms — budget never hit \
                 (use a smaller --budget-ms)",
                wall.as_millis()
            );
            let _ = other;
        }
    }
    println!();

    // Phase 2: interrupt, then resume to the conclusive verdict.
    let (p2_design, p2_budget) = if smoke && !quick {
        (quick_processor(), Duration::from_millis(300))
    } else {
        (design, budget)
    };
    let p2_dir = std::env::temp_dir().join(format!("rfn-govbench-r-{}", std::process::id()));
    std::fs::remove_dir_all(&p2_dir).ok();
    let property = p2_design.property("error_flag").expect("property exists");
    println!(
        "phase 2: interrupt error_flag on {} at {}ms, then resume",
        p2_design.netlist.name(),
        p2_budget.as_millis()
    );
    let interrupted = Rfn::new(
        &p2_design.netlist,
        property,
        RfnOptions::default()
            .with_checkpoint_dir(&p2_dir)
            .with_time_limit(p2_budget),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    if let RfnOutcome::Inconclusive { reason, stats } = &interrupted {
        println!(
            "  interrupted after {} iteration(s): {reason}",
            stats.iterations
        );
    } else {
        println!("  note: interruption budget outlasted the run");
    }
    let start = Instant::now();
    let resumed = Rfn::new(
        &p2_design.netlist,
        property,
        RfnOptions::default()
            .with_budget(Budget::unlimited())
            .with_checkpoint_dir(&p2_dir)
            .with_resume(true),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    match &resumed {
        RfnOutcome::Falsified { trace, stats } => println!(
            "  resumed to falsification: {} cycles, {} total iteration(s), {}ms",
            trace.num_cycles(),
            stats.iterations,
            start.elapsed().as_millis()
        ),
        RfnOutcome::Proved { .. } => {
            println!("  FAIL: resumed run proved error_flag (expected falsified)");
            failures += 1;
        }
        RfnOutcome::Inconclusive { reason, .. } => {
            println!("  FAIL: resumed run inconclusive: {reason}");
            failures += 1;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&p2_dir).ok();

    println!();
    if failures == 0 {
        println!("govbench: all governance gates passed");
        ExitCode::SUCCESS
    } else {
        println!("govbench: {failures} gate(s) FAILED");
        ExitCode::FAILURE
    }
}
