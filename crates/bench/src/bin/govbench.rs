//! Resource-governance smoke benchmark: budget exhaustion latency and
//! checkpoint/resume on the processor design.
//!
//! ```text
//! cargo run -p rfn-bench --bin govbench --release [-- --quick] [--smoke]
//!           [--budget-ms <n>]
//! ```
//!
//! Two phases, each a CI gate (any violation exits nonzero):
//!
//! 1. **Exhaustion latency** — verify `error_flag` under a 2-second wall
//!    clock (`--budget-ms` overrides). The run must come back as a
//!    *structured* `Inconclusive` naming the time limit, and must return
//!    within budget + 500 ms: that bound is exactly the cooperative
//!    cancellation promise the engines make (budget polls at BDD
//!    allocations, fixpoint steps, ATPG backtracks and simulation batches).
//! 2. **Checkpoint/resume** — interrupt the same verification with a budget
//!    chosen to exhaust mid-loop while snapshotting after every refinement,
//!    then `resume` from the snapshot with the budget lifted. The resumed
//!    run must reach the conclusive verdict (`error_flag` is falsifiable at
//!    every scale) instead of starting over.
//! 3. **Parallel cancellation** — the same verification at `bdd_threads: 4`,
//!    cancelled from a sidecar thread shortly after it starts. The run must
//!    come back as a structured `Inconclusive` naming the cancellation
//!    within the same 500 ms grace the serial gate gets: the budget is
//!    polled from every worker thread of the shared BDD kernel, so fanning
//!    an image across threads must not widen the cancellation latency.
//!
//! `--smoke` runs phase 1 against the paper-sized processor (where two
//! seconds can never complete the proof, so exhaustion is guaranteed) but
//! phase 2 against the quick design so CI finishes in seconds; without it,
//! phase 2 resumes the paper-sized run itself to completion. `--quick`
//! shrinks phase 1's design too — useful on slow machines, paired with a
//! small `--budget-ms`.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rfn_core::prelude::*;
use rfn_designs::{processor_module, Design, ProcessorParams};

/// The grace the acceptance gate allows past the deadline: engines poll the
/// budget cooperatively, so a bounded overshoot is expected; an unbounded
/// one means some engine loop lost its poll.
const GRACE: Duration = Duration::from_millis(500);

fn quick_processor() -> Design {
    processor_module(&ProcessorParams {
        width: 16,
        regfile_words: 8,
        store_entries: 4,
        cache_lines: 4,
        pipe_stages: 2,
        multipliers: 2,
        stall_threshold: 27,
    })
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget_ms = std::env::args()
        .skip_while(|a| a != "--budget-ms")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000u64);
    println!("govbench: resource governance (quick: {quick}, smoke: {smoke})");
    println!();

    let mut failures = 0usize;

    // Phase 1: a budget-limited run must give up promptly and structurally.
    let design = if quick {
        quick_processor()
    } else {
        processor_module(&ProcessorParams::default())
    };
    let budget = Duration::from_millis(budget_ms);
    println!(
        "phase 1: error_flag on {} ({} registers) under a {budget_ms}ms budget",
        design.netlist.name(),
        design.netlist.num_registers()
    );
    let dir = std::env::temp_dir().join(format!("rfn-govbench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let property = design.property("error_flag").expect("property exists");
    let start = Instant::now();
    let outcome = Rfn::new(
        &design.netlist,
        property,
        RfnOptions::default()
            .with_checkpoint_dir(&dir)
            .with_time_limit(budget),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    let wall = start.elapsed();
    match &outcome {
        RfnOutcome::Inconclusive { reason, .. } => {
            println!("  inconclusive after {}ms: {reason}", wall.as_millis());
            if !reason.contains("time limit") {
                println!("  FAIL: reason does not name the time limit");
                failures += 1;
            }
            if wall > budget + GRACE {
                println!(
                    "  FAIL: returned {}ms past the deadline (allowed: {}ms)",
                    (wall - budget).as_millis(),
                    GRACE.as_millis()
                );
                failures += 1;
            }
        }
        other => {
            // Only possible when the budget outlasts the whole verification
            // (tiny design + generous budget): not a governance failure, but
            // the latency gate did not actually run.
            println!(
                "  note: run finished conclusively in {}ms — budget never hit \
                 (use a smaller --budget-ms)",
                wall.as_millis()
            );
            let _ = other;
        }
    }
    println!();

    // Phase 2: interrupt, then resume to the conclusive verdict.
    let (p2_design, p2_budget) = if smoke && !quick {
        (quick_processor(), Duration::from_millis(300))
    } else {
        (design, budget)
    };
    let p2_dir = std::env::temp_dir().join(format!("rfn-govbench-r-{}", std::process::id()));
    std::fs::remove_dir_all(&p2_dir).ok();
    let property = p2_design.property("error_flag").expect("property exists");
    println!(
        "phase 2: interrupt error_flag on {} at {}ms, then resume",
        p2_design.netlist.name(),
        p2_budget.as_millis()
    );
    let interrupted = Rfn::new(
        &p2_design.netlist,
        property,
        RfnOptions::default()
            .with_checkpoint_dir(&p2_dir)
            .with_time_limit(p2_budget),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    if let RfnOutcome::Inconclusive { reason, stats } = &interrupted {
        println!(
            "  interrupted after {} iteration(s): {reason}",
            stats.iterations
        );
    } else {
        println!("  note: interruption budget outlasted the run");
    }
    let start = Instant::now();
    let resumed = Rfn::new(
        &p2_design.netlist,
        property,
        RfnOptions::default()
            .with_budget(Budget::unlimited())
            .with_checkpoint_dir(&p2_dir)
            .with_resume(true),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    match &resumed {
        RfnOutcome::Falsified { trace, stats } => println!(
            "  resumed to falsification: {} cycles, {} total iteration(s), {}ms",
            trace.num_cycles(),
            stats.iterations,
            start.elapsed().as_millis()
        ),
        RfnOutcome::Proved { .. } => {
            println!("  FAIL: resumed run proved error_flag (expected falsified)");
            failures += 1;
        }
        RfnOutcome::Inconclusive { reason, .. } => {
            println!("  FAIL: resumed run inconclusive: {reason}");
            failures += 1;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&p2_dir).ok();
    println!();

    // Phase 3: cancellation must unwind a multi-threaded image computation
    // as promptly as a serial one.
    let p3_design = if quick || smoke {
        quick_processor()
    } else {
        processor_module(&ProcessorParams::default())
    };
    let property = p3_design.property("error_flag").expect("property exists");
    let cancel_after = Duration::from_millis(250);
    println!(
        "phase 3: cancel error_flag on {} at bdd_threads 4, {}ms in",
        p3_design.netlist.name(),
        cancel_after.as_millis()
    );
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(cancel_after);
            token.cancel();
        })
    };
    let start = Instant::now();
    let outcome = Rfn::new(
        &p3_design.netlist,
        property,
        RfnOptions::default()
            .with_budget(Budget::unlimited().with_cancel_token(token))
            .with_bdd_threads(4),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    let wall = start.elapsed();
    canceller.join().expect("canceller thread");
    match &outcome {
        RfnOutcome::Inconclusive { reason, .. } => {
            println!("  inconclusive after {}ms: {reason}", wall.as_millis());
            if !reason.contains("cancelled") {
                println!("  FAIL: reason does not name the cancellation");
                failures += 1;
            }
            if wall > cancel_after + GRACE {
                println!(
                    "  FAIL: returned {}ms past the cancel (allowed: {}ms)",
                    (wall - cancel_after).as_millis(),
                    GRACE.as_millis()
                );
                failures += 1;
            }
        }
        _ => {
            // The quick design can occasionally finish in under the cancel
            // delay on a fast machine; that leaves the gate unexercised but
            // is not a governance failure.
            println!(
                "  note: run finished conclusively in {}ms — cancel never fired",
                wall.as_millis()
            );
        }
    }

    println!();
    if failures == 0 {
        println!("govbench: all governance gates passed");
        ExitCode::SUCCESS
    } else {
        println!("govbench: {failures} gate(s) FAILED");
        ExitCode::FAILURE
    }
}
