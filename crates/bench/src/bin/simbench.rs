//! Simulation-kernel benchmark: scalar reference vs. the bit-parallel
//! packed kernel, plus the random-simulation concretization engine's
//! hit-rate, on the bundled benchmark designs.
//!
//! ```text
//! cargo run -p rfn-bench --bin simbench --release [-- --quick] [--smoke]
//! ```
//!
//! Three sections:
//!
//! 1. **Equivalence** — the packed kernel must agree with the scalar
//!    reference on every signal over random concrete stimulus (lanes 0 and
//!    63 are cross-checked against two independent scalar runs). Any
//!    mismatch exits nonzero; this is the CI smoke gate.
//! 2. **Throughput** — gate-evaluations per second free-running each design
//!    under random stimulus. The packed kernel evaluates 64 patterns per
//!    gate visit, so its pattern-gate-evals/s rate is the scalar rate
//!    multiplied by the effective parallel speedup.
//! 3. **Random engine** — corridor-guided vs. unguided hit-rate of
//!    [`rfn_sim::random_concretize`] on the processor module's falsifiable
//!    `error_flag` property: with the stall corridor pinned the stall
//!    counter marches deterministically and every pattern hits; unguided
//!    random stimulus essentially never does (the paper's argument for
//!    trace-guided engines, Section 2.3).
//!
//! Results are written to `BENCH_sim.json` (hand-rolled JSON, no
//! dependencies). `--smoke` shrinks the cycle counts for CI; `--quick`
//! selects the scaled-down designs (paper-sized otherwise).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use rfn_bench::Scale;
use rfn_designs::{fifo_controller, integer_unit, processor_module, usb_controller, Design};
use rfn_netlist::{Cube, Netlist};
use rfn_sim::{
    random_concretize, PackedSim, PackedTv, RandomSimOptions, Simulator, Tv, XorShift64,
};

struct Throughput {
    name: String,
    gates: usize,
    registers: usize,
    scalar_evals_per_sec: f64,
    packed_evals_per_sec: f64,
    speedup: f64,
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (eq_cycles, warmup, measure) = if smoke {
        (32, 16, 256)
    } else {
        (128, 512, 4096)
    };
    println!("simbench: simulation kernels (scale: {scale:?}, smoke: {smoke})");
    println!();

    let designs: Vec<(&str, Design)> = vec![
        ("fifo", fifo_controller(&scale.fifo())),
        ("integer_unit", integer_unit(&scale.integer_unit())),
        ("usb", usb_controller(&scale.usb())),
        ("processor", processor_module(&scale.processor())),
    ];

    // Section 1: equivalence gate.
    for (name, design) in &designs {
        if let Err(msg) = check_equivalence(&design.netlist, eq_cycles) {
            eprintln!("simbench: packed/scalar MISMATCH on {name}: {msg}");
            return ExitCode::from(1);
        }
        println!("equivalence ok: {name} ({eq_cycles} cycles, lanes 0 and 63)");
    }
    println!();

    // Section 2: throughput.
    let mut rows = Vec::new();
    for (name, design) in &designs {
        let t = measure_throughput(name, &design.netlist, warmup, measure);
        println!(
            "{:<14} {:>7} gates  scalar {:>12.0} evals/s  packed {:>14.0} evals/s  {:>6.1}x",
            t.name, t.gates, t.scalar_evals_per_sec, t.packed_evals_per_sec, t.speedup
        );
        rows.push(t);
    }
    println!();

    // Section 3: the random concretization engine on the processor's
    // falsifiable `error_flag` property.
    let processor = &designs.last().expect("processor is bundled").1;
    let engine = random_engine_hit_rate(processor, scale, smoke);
    match &engine {
        Some(e) => println!("{e}"),
        None => println!("random engine: no hit found in the scanned depth window"),
    }

    let json = render_json(&rows, engine.as_ref(), smoke);
    if let Err(e) = std::fs::write("BENCH_sim.json", &json) {
        eprintln!("simbench: writing BENCH_sim.json: {e}");
        return ExitCode::from(1);
    }
    println!();
    println!("wrote BENCH_sim.json");
    ExitCode::SUCCESS
}

/// Drives both kernels with the same random concrete stimulus and compares
/// every signal; lanes 0 and 63 of the packed run are checked against two
/// independent scalar runs.
fn check_equivalence(netlist: &Netlist, cycles: usize) -> Result<(), String> {
    let mut packed = PackedSim::new(netlist).map_err(|e| e.to_string())?;
    let mut lane0 = Simulator::new(netlist).map_err(|e| e.to_string())?;
    let mut lane63 = Simulator::new(netlist).map_err(|e| e.to_string())?;
    packed.reset();
    lane0.reset();
    lane63.reset();
    let mut rng = XorShift64::new(0xE0_0E10);
    let inputs = netlist.inputs().to_vec();
    for cycle in 0..cycles {
        for &i in &inputs {
            let word = rng.next_u64();
            packed.set(i, PackedTv::from_bits(word));
            lane0.set(i, Tv::from(word & 1 == 1));
            lane63.set(i, Tv::from(word >> 63 & 1 == 1));
        }
        packed.step_comb();
        lane0.step_comb();
        lane63.step_comb();
        for s in netlist.signals() {
            if packed.lane(s, 0) != lane0.value(s) || packed.lane(s, 63) != lane63.value(s) {
                return Err(format!("cycle {cycle}, signal {}", netlist.label(s)));
            }
        }
        packed.latch();
        lane0.latch();
        lane63.latch();
    }
    Ok(())
}

/// Free-runs both kernels under random stimulus and reports
/// gate-evaluations per second (the packed kernel counts 64 patterns per
/// gate visit).
fn measure_throughput(name: &str, netlist: &Netlist, warmup: usize, measure: usize) -> Throughput {
    let inputs = netlist.inputs().to_vec();

    // Scalar: one pattern per cycle.
    let mut scalar = Simulator::new(netlist).expect("bundled designs validate");
    scalar.reset();
    let mut rng = XorShift64::new(0x51CA_1A12);
    let drive_scalar = |sim: &mut Simulator, rng: &mut XorShift64| {
        let cube: Cube = inputs
            .iter()
            .map(|&i| (i, rng.next_u64() & 1 == 1))
            .collect();
        sim.step(&cube);
    };
    for _ in 0..warmup {
        drive_scalar(&mut scalar, &mut rng);
    }
    let start = Instant::now();
    for _ in 0..measure {
        drive_scalar(&mut scalar, &mut rng);
    }
    let scalar_elapsed = start.elapsed().as_secs_f64();
    let scalar_evals = (netlist.num_gates() * measure) as f64;

    // Packed: 64 patterns per cycle; count actual gate visits (the
    // dirty-level skip may avoid some levels).
    let mut packed = PackedSim::new(netlist).expect("bundled designs validate");
    packed.reset();
    let mut rng = XorShift64::new(0x9AC4_ED12);
    let drive_packed = |sim: &mut PackedSim, rng: &mut XorShift64| {
        for &i in &inputs {
            sim.set(i, PackedTv::from_bits(rng.next_u64()));
        }
        sim.step_comb();
        sim.latch();
    };
    for _ in 0..warmup {
        drive_packed(&mut packed, &mut rng);
    }
    let before = packed.counters().gate_evals;
    let start = Instant::now();
    for _ in 0..measure {
        drive_packed(&mut packed, &mut rng);
    }
    let packed_elapsed = start.elapsed().as_secs_f64();
    let packed_evals = (packed.counters().gate_evals - before) as f64 * 64.0;

    let scalar_rate = scalar_evals / scalar_elapsed.max(1e-9);
    let packed_rate = packed_evals / packed_elapsed.max(1e-9);
    Throughput {
        name: name.to_owned(),
        gates: netlist.num_gates(),
        registers: netlist.num_registers(),
        scalar_evals_per_sec: scalar_rate,
        packed_evals_per_sec: packed_rate,
        speedup: packed_rate / scalar_rate.max(1e-9),
    }
}

struct EngineResult {
    depth: usize,
    guided_hits: u64,
    guided_patterns: u64,
    unguided_hits: u64,
    unguided_patterns: u64,
}

impl std::fmt::Display for EngineResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "random engine on processor/error_flag, depth {}: guided {}/{} hits, \
             unguided {}/{} hits",
            self.depth,
            self.guided_hits,
            self.guided_patterns,
            self.unguided_hits,
            self.unguided_patterns
        )
    }
}

/// Corridor-guided vs. unguided hit-rate of the random engine on the
/// processor's `error_flag` property. The guided corridor pins `start` at
/// cycle 0 and `in_stall` every cycle — the inputs an abstract error trace
/// would pin — so the stall counter marches deterministically to the
/// threshold; the depth is scanned since the exact firing cycle depends on
/// the boot pipeline.
fn random_engine_hit_rate(processor: &Design, scale: Scale, smoke: bool) -> Option<EngineResult> {
    let netlist = &processor.netlist;
    let property = processor.property("error_flag").expect("bundled property");
    let target: Cube = [(property.signal, property.value)].into_iter().collect();
    let start = netlist.find("start").expect("processor has start");
    let in_stall = netlist.find("in_stall").expect("processor has in_stall");
    let threshold = scale.processor().stall_threshold as usize;
    let options = RandomSimOptions {
        batches: if smoke { 4 } else { 16 },
        ..RandomSimOptions::default()
    };
    for depth in threshold + 2..threshold + 10 {
        let guidance: Vec<Cube> = (0..depth)
            .map(|t| {
                let mut cube: Cube = [(in_stall, true)].into_iter().collect();
                if t == 0 {
                    cube.insert(start, true).expect("distinct literals");
                }
                cube
            })
            .collect();
        let (found, stats) =
            random_concretize(netlist, &target, &guidance, &options).expect("design validates");
        if found.is_some() {
            // Unguided baseline at the same depth: empty corridor cubes.
            let unguided: Vec<Cube> = (0..depth).map(|_| Cube::new()).collect();
            let (_, ustats) =
                random_concretize(netlist, &target, &unguided, &options).expect("design validates");
            return Some(EngineResult {
                depth,
                guided_hits: stats.hits,
                guided_patterns: stats.patterns,
                unguided_hits: ustats.hits,
                unguided_patterns: ustats.patterns,
            });
        }
    }
    None
}

fn render_json(rows: &[Throughput], engine: Option<&EngineResult>, smoke: bool) -> String {
    let mut s = String::from("{\n  \"bench\": \"sim\",\n");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    s.push_str("  \"throughput\": [\n");
    for (k, t) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"design\": \"{}\", \"gates\": {}, \"registers\": {}, \
             \"scalar_evals_per_sec\": {:.0}, \"packed_evals_per_sec\": {:.0}, \
             \"speedup\": {:.2}}}",
            t.name, t.gates, t.registers, t.scalar_evals_per_sec, t.packed_evals_per_sec, t.speedup
        );
        s.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    match engine {
        Some(e) => {
            let _ = writeln!(
                s,
                "  \"random_engine\": {{\"design\": \"processor\", \"property\": \"error_flag\", \
                 \"depth\": {}, \"guided_hits\": {}, \"guided_patterns\": {}, \
                 \"unguided_hits\": {}, \"unguided_patterns\": {}}}",
                e.depth, e.guided_hits, e.guided_patterns, e.unguided_hits, e.unguided_patterns
            );
        }
        None => {
            s.push_str("  \"random_engine\": null\n");
        }
    }
    s.push_str("}\n");
    s
}
