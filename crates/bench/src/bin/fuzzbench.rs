//! Differential fuzzing harness: every seeded random design through three
//! independent engines, failing loudly on any disagreement.
//!
//! ```text
//! cargo run -p rfn-bench --bin fuzzbench --release [-- --quick]
//!     [--seeds <n>] [--start <seed>] [--emit-dir <dir>] [--time-limit <s>]
//! ```
//!
//! For each seed, `rfn_designs::fuzz_design(seed)` generates a small random
//! sequential design with 1–3 properties, and every property is verified
//! three ways under one per-property budget:
//!
//! 1. **RFN** — the abstraction-refinement loop (BDD reachability + hybrid
//!    trace reconstruction + concrete replay),
//! 2. **plain MC** — whole-COI BDD forward reachability, and
//! 3. **BMC** — incremental SAT unrolling with concrete counterexample
//!    replay.
//!
//! The engines share no model-building or search code, so agreement is real
//! evidence. The harness cross-checks every conclusive pair:
//!
//! - `Proved` against `Falsified` is a disagreement;
//! - two falsifications must report the **same minimal depth** (the RFN
//!   trace's cycle count minus one, the plain engine's BFS hit step, and
//!   BMC's first SAT frame are all minimal, so any difference is a bug);
//! - a falsification at depth `d` contradicts a BMC `BoundedSafe` bound
//!   `>= d`.
//!
//! Inconclusive outcomes (budget exhaustion) never count against agreement.
//! On a disagreement the harness shrinks the design with
//! [`rfn_designs::shrink_design`] while the disagreement persists, prints
//! the seed and the shrunken statistics, and — with `--emit-dir` — writes
//! the repro as an `.aag` file that `rfn verify <file> --engine race`
//! replays directly. The exit code is nonzero if any seed disagreed.
//!
//! `--quick` runs the 500-seed CI leg; the default sweep is 2000 seeds.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Duration;

use rfn_core::{
    verify_bmc, verify_plain, BmcOptions, BmcVerdict, PlainOptions, PlainVerdict, Rfn, RfnOptions,
    RfnOutcome,
};
use rfn_designs::{fuzz_design, shrink_design, Design};
use rfn_netlist::{write_aiger_ascii, Property};

/// What one engine concluded about one property.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// Proved safe at every depth.
    Safe,
    /// Falsified, with the minimal counterexample depth (violating cycle
    /// index).
    Falsified(usize),
    /// No counterexample up to the given depth (BMC's bounded verdict).
    BoundedSafe(usize),
    /// Budget exhausted without a verdict; never counts as disagreement.
    Unknown,
}

impl Outcome {
    fn describe(self) -> String {
        match self {
            Outcome::Safe => "proved".to_owned(),
            Outcome::Falsified(d) => format!("falsified at depth {d}"),
            Outcome::BoundedSafe(d) => format!("bounded-safe to depth {d}"),
            Outcome::Unknown => "inconclusive".to_owned(),
        }
    }
}

/// Whether two engine outcomes can both be correct.
fn consistent(a: Outcome, b: Outcome) -> bool {
    use Outcome::*;
    match (a, b) {
        (Unknown, _) | (_, Unknown) => true,
        (Safe, Safe) => true,
        (Falsified(x), Falsified(y)) => x == y,
        (Safe, Falsified(_)) | (Falsified(_), Safe) => false,
        // A bounded-safe sweep to depth b rules out counterexamples at
        // depths 0..=b only.
        (BoundedSafe(b), Falsified(d)) | (Falsified(d), BoundedSafe(b)) => d > b,
        (BoundedSafe(_), _) | (_, BoundedSafe(_)) => true,
    }
}

/// BMC depth bound: the fuzzer caps designs at 8 registers, so every
/// reachable state is reachable within 2^8 steps; 300 frames make BMC's
/// bounded verdict decisive against any falsification the other engines
/// can produce.
const BMC_DEPTH: usize = 300;

fn run_rfn(design: &Design, p: &Property, limit: Duration) -> Outcome {
    let opts = RfnOptions::default().with_time_limit(limit);
    let run = Rfn::new(&design.netlist, p, opts).and_then(|rfn| rfn.run());
    match run {
        Ok(RfnOutcome::Proved { .. }) => Outcome::Safe,
        // The trace is a validated concrete counterexample whose last cycle
        // is the violation: depth = cycles - 1.
        Ok(RfnOutcome::Falsified { trace, .. }) => Outcome::Falsified(trace.num_cycles() - 1),
        Ok(RfnOutcome::Inconclusive { .. }) => Outcome::Unknown,
        Err(e) => panic!("rfn engine error (a bug, not a verdict): {e}"),
    }
}

fn run_plain(design: &Design, p: &Property, limit: Duration) -> Outcome {
    let opts = PlainOptions::default().with_time_limit(limit);
    match verify_plain(&design.netlist, p, &opts) {
        Ok(r) => match r.verdict {
            PlainVerdict::Proved => Outcome::Safe,
            PlainVerdict::Falsified { depth } => Outcome::Falsified(depth),
            PlainVerdict::OutOfCapacity => Outcome::Unknown,
        },
        Err(e) => panic!("plain engine error (a bug, not a verdict): {e}"),
    }
}

fn run_bmc(design: &Design, p: &Property, limit: Duration) -> Outcome {
    let opts = BmcOptions::default()
        .with_max_depth(BMC_DEPTH)
        .with_time_limit(limit);
    match verify_bmc(&design.netlist, p, &opts) {
        Ok(r) => match r.verdict {
            BmcVerdict::Falsified { depth } => Outcome::Falsified(depth),
            BmcVerdict::BoundedSafe { depth } => Outcome::BoundedSafe(depth),
            BmcVerdict::OutOfBudget { .. } => Outcome::Unknown,
        },
        Err(e) => panic!("bmc engine error (a bug, not a verdict): {e}"),
    }
}

/// Runs all three engines on one property and returns the first
/// inconsistent pair, if any.
fn check_property(design: &Design, prop_index: usize, limit: Duration) -> Result<(), String> {
    let p = &design.properties[prop_index];
    let outcomes = [
        ("rfn", run_rfn(design, p, limit)),
        ("plain", run_plain(design, p, limit)),
        ("bmc", run_bmc(design, p, limit)),
    ];
    for (i, &(an, a)) in outcomes.iter().enumerate() {
        for &(bn, b) in &outcomes[i + 1..] {
            if !consistent(a, b) {
                return Err(format!(
                    "property `{}`: {an} {} vs {bn} {}",
                    p.name,
                    a.describe(),
                    b.describe()
                ));
            }
        }
    }
    Ok(())
}

fn usize_flag(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn string_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seeds = usize_flag(&args, "--seeds").unwrap_or(if quick { 500 } else { 2000 });
    let start = usize_flag(&args, "--start").unwrap_or(0) as u64;
    let emit_dir = string_flag(&args, "--emit-dir");
    let limit = Duration::from_secs(usize_flag(&args, "--time-limit").unwrap_or(10) as u64);
    println!("fuzzbench: differential engine fuzzing, {seeds} seeds from {start}");

    let mut failing_seeds: BTreeSet<u64> = BTreeSet::new();
    let mut properties_checked = 0usize;
    for seed in start..start + seeds as u64 {
        let design = fuzz_design(seed);
        for prop_index in 0..design.properties.len() {
            properties_checked += 1;
            let Err(msg) = check_property(&design, prop_index, limit) else {
                continue;
            };
            failing_seeds.insert(seed);
            eprintln!("fuzzbench: DISAGREEMENT at seed {seed}: {msg}");
            // Shrink while the engines still disagree, then report (and
            // optionally dump) the minimal repro.
            let shrunk = shrink_design(&design, prop_index, |candidate| {
                check_property(candidate, 0, limit).is_err()
            });
            eprintln!(
                "fuzzbench: seed {seed} shrunk to {} inputs, {} registers, {} gates \
                 (property `{}`)",
                shrunk.netlist.inputs().len(),
                shrunk.netlist.num_registers(),
                shrunk.netlist.num_gates(),
                shrunk.properties[0].name
            );
            if let Some(dir) = &emit_dir {
                let dir = std::path::Path::new(dir);
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("fuzzbench: creating {}: {e}", dir.display());
                } else {
                    let path = dir.join(format!("seed{seed}_{}.aag", shrunk.properties[0].name));
                    match write_aiger_ascii(&shrunk.netlist, &shrunk.properties) {
                        Ok(bytes) => match std::fs::write(&path, bytes) {
                            Ok(()) => eprintln!("fuzzbench: repro written to {}", path.display()),
                            Err(e) => eprintln!("fuzzbench: writing {}: {e}", path.display()),
                        },
                        Err(e) => eprintln!("fuzzbench: serializing repro: {e}"),
                    }
                }
            }
        }
        if (seed + 1 - start).is_multiple_of(100) {
            println!(
                "fuzzbench: {}/{seeds} seeds, {properties_checked} properties, {} disagreements",
                seed + 1 - start,
                failing_seeds.len()
            );
        }
    }

    if failing_seeds.is_empty() {
        println!(
            "fuzzbench: OK — {seeds} seeds, {properties_checked} properties, all engines agree"
        );
        ExitCode::SUCCESS
    } else {
        let listed: Vec<String> = failing_seeds.iter().map(|s| s.to_string()).collect();
        eprintln!(
            "fuzzbench: FAILED — {} disagreeing seed(s): {}",
            failing_seeds.len(),
            listed.join(", ")
        );
        ExitCode::from(1)
    }
}
