//! Regenerates Table 2 of the paper: unreachable-coverage-state analysis,
//! RFN versus the BFS abstraction baseline.
//!
//! Coverage sets are independent analysis jobs (each owns its BDD managers),
//! so they run as a parallel portfolio; `--threads <n>` controls the worker
//! count and the output is identical at any setting.
//!
//! ```text
//! cargo run -p rfn-bench --bin table2 --release [-- --quick] [--threads <n>]
//!           [--trace-out <file>]
//! ```
//!
//! `--trace-out <file>` writes the structured event stream of every job as
//! JSONL and appends a per-phase time-breakdown table to the report.

use std::sync::Arc;
use std::time::Instant;

use rfn_bdd::BddStats;
use rfn_bench::{row, rule, secs, threads_from_args, BenchTrace, Scale};
use rfn_core::prelude::*;

/// The paper fixed the BFS abstraction at 60 registers.
const BFS_K: usize = 60;

struct CaseResult {
    name: String,
    cells: Vec<String>,
    rfn_stats: BddStats,
}

fn main() {
    let scale = Scale::from_args();
    let threads = threads_from_args();
    println!(
        "Table 2: Unreachable-coverage-state analysis results \
         (scale: {scale:?}, threads: {threads})"
    );
    println!();
    let widths = [6, 9, 9, 12, 9, 12, 11];
    row(
        &[
            "signals",
            "regs/COI",
            "gates",
            "RFN unreach",
            "abs regs",
            "BFS unreach",
            "BFS time(s)",
        ],
        &widths,
    );
    rule(&widths);

    let iu = integer_unit_design(scale);
    let usb = usb_design(scale);
    let mut cases: Vec<(&Netlist, &CoverageSet)> = Vec::new();
    for set in &iu.coverage_sets {
        cases.push((&iu.netlist, set));
    }
    for set in &usb.coverage_sets {
        cases.push((&usb.netlist, set));
    }
    let trace = BenchTrace::from_args();
    let start = Instant::now();
    let jobs = parallel_map(cases.len(), threads, |i| {
        let (netlist, set) = cases[i];
        let buffer = Arc::new(MemorySink::new());
        let result = run_case(netlist, set, scale, trace.job_ctx(&buffer));
        (result, buffer.take())
    });
    let wall = start.elapsed();
    let mut results = Vec::with_capacity(jobs.len());
    let mut buffers = Vec::with_capacity(jobs.len());
    for (result, events) in jobs {
        results.push(result);
        buffers.push(events);
    }
    trace.emit_merged(buffers);
    for r in &results {
        let cells: Vec<&str> = r.cells.iter().map(String::as_str).collect();
        row(&cells, &widths);
    }
    println!();
    println!(
        "BFS uses the {BFS_K} registers closest to the coverage signals (the paper's setting)."
    );
    println!(
        "Portfolio wall-clock: {}s across {} coverage sets on {} thread(s).",
        secs(wall),
        results.len(),
        threads
    );
    println!();
    println!("BDD kernel stats (RFN coverage runs, merged over all iterations):");
    for r in &results {
        println!("  {:>6}: {}", r.name, r.rfn_stats);
    }
    trace.finish();
}

fn integer_unit_design(scale: Scale) -> rfn_designs::Design {
    rfn_designs::integer_unit(&scale.integer_unit())
}

fn usb_design(scale: Scale) -> rfn_designs::Design {
    rfn_designs::usb_controller(&scale.usb())
}

fn run_case(netlist: &Netlist, set: &CoverageSet, scale: Scale, ctx: TraceCtx) -> CaseResult {
    let mut options = CoverageOptions::default()
        .with_time_limit(scale.time_limit())
        .with_frontier_simplify(rfn_bench::frontier_simplify_from_args())
        .with_trace(ctx);
    if let Some(limit) = rfn_bench::cluster_limit_from_args() {
        options = options.with_cluster_limit(limit);
    }
    let rfn = analyze_coverage(netlist, set, &options).expect("coverage analysis runs");
    let bfs_reach = options.reach.clone().with_time_limit(scale.time_limit());
    let bfs = bfs_coverage(netlist, set, BFS_K, 4_000_000, &bfs_reach).expect("bfs baseline runs");
    CaseResult {
        name: set.name.clone(),
        cells: vec![
            set.name.clone(),
            rfn.coi_registers.to_string(),
            rfn.coi_gates.to_string(),
            format!("{} ({}s)", rfn.unreachable, secs(rfn.elapsed)),
            rfn.abstract_registers.to_string(),
            bfs.unreachable.to_string(),
            secs(bfs.elapsed),
        ],
        rfn_stats: rfn.stats,
    }
}
