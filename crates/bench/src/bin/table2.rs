//! Regenerates Table 2 of the paper: unreachable-coverage-state analysis,
//! RFN versus the BFS abstraction baseline.
//!
//! ```text
//! cargo run -p rfn-bench --bin table2 --release [-- --quick]
//! ```

use rfn_bench::{row, rule, secs, Scale};
use rfn_core::{analyze_coverage, bfs_coverage, CoverageOptions};
use rfn_designs::{integer_unit, usb_controller};
use rfn_mc::ReachOptions;
use rfn_netlist::{CoverageSet, Netlist};

/// The paper fixed the BFS abstraction at 60 registers.
const BFS_K: usize = 60;

fn main() {
    let scale = Scale::from_args();
    println!("Table 2: Unreachable-coverage-state analysis results (scale: {scale:?})");
    println!();
    let widths = [6, 9, 9, 12, 9, 12, 11];
    row(
        &[
            "signals",
            "regs/COI",
            "gates",
            "RFN unreach",
            "abs regs",
            "BFS unreach",
            "BFS time(s)",
        ],
        &widths,
    );
    rule(&widths);

    let iu = integer_unit(&scale.integer_unit());
    let usb = usb_controller(&scale.usb());
    for set in &iu.coverage_sets {
        run_case(&iu.netlist, set, scale, &widths);
    }
    for set in &usb.coverage_sets {
        run_case(&usb.netlist, set, scale, &widths);
    }
    println!();
    println!(
        "BFS uses the {BFS_K} registers closest to the coverage signals (the paper's setting)."
    );
}

fn run_case(netlist: &Netlist, set: &CoverageSet, scale: Scale, widths: &[usize]) {
    let options = CoverageOptions {
        time_limit: Some(scale.time_limit()),
        ..CoverageOptions::default()
    };
    let rfn = analyze_coverage(netlist, set, &options).expect("coverage analysis runs");
    let bfs_reach = ReachOptions {
        time_limit: Some(scale.time_limit()),
        ..ReachOptions::default()
    };
    let bfs = bfs_coverage(netlist, set, BFS_K, 4_000_000, &bfs_reach)
        .expect("bfs baseline runs");
    row(
        &[
            &set.name,
            &rfn.coi_registers.to_string(),
            &rfn.coi_gates.to_string(),
            &format!("{} ({}s)", rfn.unreachable, secs(rfn.elapsed)),
            &rfn.abstract_registers.to_string(),
            &bfs.unreachable.to_string(),
            &secs(bfs.elapsed),
        ],
        widths,
    );
}
