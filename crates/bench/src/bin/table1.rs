//! Regenerates Table 1 of the paper: property verification with RFN versus
//! plain symbolic model checking with cone-of-influence reduction.
//!
//! The five property rows are independent verification jobs (each owns its
//! BDD managers), so they run as a parallel portfolio; `--threads <n>`
//! controls the worker count and the output is identical at any setting.
//!
//! ```text
//! cargo run -p rfn-bench --bin table1 --release [-- --quick] [--threads <n>]
//!           [--trace-out <file>]
//! ```
//!
//! `--trace-out <file>` writes the structured event stream of every job as
//! JSONL and appends a per-phase time-breakdown table to the report; the
//! file is identical at any thread count (modulo timestamps).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rfn_bdd::BddStats;
use rfn_bench::{row, rule, secs, threads_from_args, BenchTrace, Scale};
use rfn_core::prelude::*;
use rfn_designs::{fifo_controller, processor_module, Design};

struct CaseResult {
    name: String,
    cells: Vec<String>,
    rfn_stats: BddStats,
    plain_stats: BddStats,
}

fn main() {
    let scale = Scale::from_args();
    let threads = threads_from_args();
    println!("Table 1: Property Verification Results (scale: {scale:?}, threads: {threads})");
    println!();
    let widths = [10, 9, 9, 9, 7, 9, 16];
    row(
        &[
            "property",
            "regs/COI",
            "gates",
            "time(s)",
            "result",
            "abs regs",
            "plain MC (COI)",
        ],
        &widths,
    );
    rule(&widths);

    let processor = processor_module(&scale.processor());
    let fifo = fifo_controller(&scale.fifo());
    let cases: Vec<(&Design, &str)> = vec![
        (&processor, "mutex"),
        (&processor, "error_flag"),
        (&fifo, "psh_hf"),
        (&fifo, "psh_af"),
        (&fifo, "psh_full"),
    ];
    let trace = BenchTrace::from_args();
    let start = Instant::now();
    let jobs = parallel_map(cases.len(), threads, |i| {
        let (design, name) = cases[i];
        let property = design.property(name).expect("property exists");
        let buffer = Arc::new(MemorySink::new());
        let result = run_case(design, property, scale, trace.job_ctx(&buffer));
        (result, buffer.take())
    });
    let wall = start.elapsed();
    let mut results = Vec::with_capacity(jobs.len());
    let mut buffers = Vec::with_capacity(jobs.len());
    for (result, events) in jobs {
        results.push(result);
        buffers.push(events);
    }
    trace.emit_merged(buffers);
    for r in &results {
        let cells: Vec<&str> = r.cells.iter().map(String::as_str).collect();
        row(&cells, &widths);
    }
    println!();
    println!("T = property proved, F = property falsified (trace length in parens).");
    println!("Plain MC runs on the full cone of influence with a BDD node limit.");
    println!(
        "Portfolio wall-clock: {}s across {} properties on {} thread(s).",
        secs(wall),
        results.len(),
        threads
    );
    println!();
    println!("BDD kernel stats (RFN runs, merged over all iterations):");
    let mut merged = BddStats::default();
    for r in &results {
        println!("  {:>10}: {}", r.name, r.rfn_stats);
        merged.merge(&r.rfn_stats);
    }
    println!("  {:>10}: {}", "all", merged);
    println!("BDD kernel stats (plain-MC baseline):");
    for r in &results {
        println!("  {:>10}: {}", r.name, r.plain_stats);
    }
    trace.finish();
}

fn run_case(design: &Design, property: &Property, scale: Scale, ctx: TraceCtx) -> CaseResult {
    let mut options = RfnOptions::default()
        .with_time_limit(scale.time_limit())
        .with_frontier_simplify(rfn_bench::frontier_simplify_from_args())
        .with_trace(ctx.clone());
    if let Some(limit) = rfn_bench::cluster_limit_from_args() {
        options = options.with_cluster_limit(limit);
    }
    let reach_for_plain = options.reach.clone();
    let rfn = Rfn::new(&design.netlist, property, options).expect("valid property");
    let outcome = rfn.run().expect("structural soundness");
    let stats = outcome.stats().clone();
    let (result, extra) = match &outcome {
        RfnOutcome::Proved { .. } => ("T".to_owned(), String::new()),
        RfnOutcome::Falsified { trace, .. } => {
            ("F".to_owned(), format!(" ({}cyc)", trace.num_cycles()))
        }
        RfnOutcome::Inconclusive { reason, .. } => ("?".to_owned(), format!(" ({reason})")),
    };

    // Plain symbolic model checking baseline on the same property.
    let plain_opts = PlainOptions::default()
        .with_node_limit(plain_node_limit(scale))
        .with_time_limit(plain_time_limit(scale))
        .with_trace(ctx)
        .with_reach(reach_for_plain);
    let plain = verify_plain(&design.netlist, property, &plain_opts).expect("plain mc runs");
    let plain_cell = match plain.verdict {
        PlainVerdict::Proved => format!("T in {}s", secs(plain.elapsed)),
        PlainVerdict::Falsified { depth } => format!("F@{depth} in {}s", secs(plain.elapsed)),
        PlainVerdict::OutOfCapacity => format!("fails ({}s)", secs(plain.elapsed)),
    };

    CaseResult {
        name: property.name.clone(),
        cells: vec![
            property.name.clone(),
            stats.coi_registers.to_string(),
            stats.coi_gates.to_string(),
            secs(stats.elapsed),
            format!("{result}{extra}"),
            stats.abstract_registers.to_string(),
            plain_cell,
        ],
        rfn_stats: stats.bdd,
        plain_stats: plain.stats,
    }
}

fn plain_node_limit(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 1_000_000,
        Scale::Quick => 200_000,
    }
}

fn plain_time_limit(scale: Scale) -> Duration {
    match scale {
        Scale::Paper => Duration::from_secs(120),
        Scale::Quick => Duration::from_secs(20),
    }
}
