//! Regenerates Table 1 of the paper: property verification with RFN versus
//! plain symbolic model checking with cone-of-influence reduction.
//!
//! ```text
//! cargo run -p rfn-bench --bin table1 --release [-- --quick]
//! ```

use std::time::Duration;

use rfn_bench::{row, rule, secs, Scale};
use rfn_core::{Rfn, RfnOptions, RfnOutcome};
use rfn_designs::{fifo_controller, processor_module, Design};
use rfn_mc::{verify_plain, PlainOptions, PlainVerdict};
use rfn_netlist::Property;

fn main() {
    let scale = Scale::from_args();
    println!("Table 1: Property Verification Results (scale: {scale:?})");
    println!();
    let widths = [10, 9, 9, 9, 7, 9, 16];
    row(
        &[
            "property", "regs/COI", "gates", "time(s)", "result", "abs regs", "plain MC (COI)",
        ],
        &widths,
    );
    rule(&widths);

    let processor = processor_module(&scale.processor());
    let fifo = fifo_controller(&scale.fifo());
    let cases: Vec<(&Design, &str)> = vec![
        (&processor, "mutex"),
        (&processor, "error_flag"),
        (&fifo, "psh_hf"),
        (&fifo, "psh_af"),
        (&fifo, "psh_full"),
    ];
    for (design, name) in cases {
        let property = design.property(name).expect("property exists");
        run_case(design, property, scale, &widths);
    }
    println!();
    println!("T = property proved, F = property falsified (trace length in parens).");
    println!("Plain MC runs on the full cone of influence with a BDD node limit.");
}

fn run_case(design: &Design, property: &Property, scale: Scale, widths: &[usize]) {
    let options = RfnOptions {
        time_limit: Some(scale.time_limit()),
        verbosity: 0,
        ..RfnOptions::default()
    };
    let rfn = Rfn::new(&design.netlist, property, options).expect("valid property");
    let outcome = rfn.run().expect("structural soundness");
    let stats = outcome.stats().clone();
    let (result, extra) = match &outcome {
        RfnOutcome::Proved { .. } => ("T".to_owned(), String::new()),
        RfnOutcome::Falsified { trace, .. } => ("F".to_owned(), format!(" ({}cyc)", trace.num_cycles())),
        RfnOutcome::Inconclusive { reason, .. } => ("?".to_owned(), format!(" ({reason})")),
    };

    // Plain symbolic model checking baseline on the same property.
    let plain_opts = PlainOptions {
        node_limit: plain_node_limit(scale),
        time_limit: Some(plain_time_limit(scale)),
        ..PlainOptions::default()
    };
    let plain = verify_plain(&design.netlist, property, &plain_opts).expect("plain mc runs");
    let plain_cell = match plain.verdict {
        PlainVerdict::Proved => format!("T in {}s", secs(plain.elapsed)),
        PlainVerdict::Falsified { depth } => format!("F@{depth} in {}s", secs(plain.elapsed)),
        PlainVerdict::OutOfCapacity => format!("fails ({}s)", secs(plain.elapsed)),
    };

    row(
        &[
            &property.name,
            &stats.coi_registers.to_string(),
            &stats.coi_gates.to_string(),
            &secs(stats.elapsed),
            &format!("{result}{extra}"),
            &stats.abstract_registers.to_string(),
            &plain_cell,
        ],
        widths,
    );
}

fn plain_node_limit(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 1_000_000,
        Scale::Quick => 200_000,
    }
}

fn plain_time_limit(scale: Scale) -> Duration {
    match scale {
        Scale::Paper => Duration::from_secs(120),
        Scale::Quick => Duration::from_secs(20),
    }
}
