//! SAT bounded-model-checking benchmark: unrolling throughput and solver
//! effort per design, plus the bug race against the BDD engine.
//!
//! ```text
//! cargo run -p rfn-bench --bin satbench --release [-- --quick] [--smoke]
//! ```
//!
//! Two sections:
//!
//! 1. **Depth sweep** — `verify_bmc` on one property per bundled design
//!    (safe and falsifiable), reporting the depth reached, frames per
//!    second, solver conflicts/propagations and the UNSAT-core abstraction
//!    size against the full cone of influence. Falsifiable properties must
//!    be falsified (their counterexamples are replayed concretely inside
//!    `verify_bmc`); any miss exits nonzero — this is the CI smoke gate.
//! 2. **Bug race** — wall-clock of SAT BMC vs. the BDD-based RFN loop on
//!    the processor's `error_flag` bug (the paper's ≈30-cycle violation):
//!    the depth of the deepest bug each engine can afford is the practical
//!    trade-off the portfolio's `race` mode exploits.
//!
//! Results are written to `BENCH_sat.json` (hand-rolled JSON, no
//! dependencies). `--smoke` shrinks depth bounds and time limits for CI;
//! `--quick` selects the scaled-down designs (paper-sized otherwise).
//! `--design <spec>` (repeatable) replaces the builtin depth-sweep list
//! with designs loaded through `DesignSource` — any spec form works — and
//! sweeps every property each design carries.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rfn_bench::Scale;
use rfn_core::{verify_bmc, BmcOptions, BmcVerdict, Rfn, RfnOptions, RfnOutcome};
use rfn_designs::{fifo_controller, processor_module, FifoParams};
use rfn_netlist::{Netlist, Property};

struct Row {
    design: String,
    property: String,
    verdict: &'static str,
    depth: usize,
    frames_per_sec: f64,
    conflicts: u64,
    propagations: u64,
    refinements: usize,
    abstract_registers: usize,
    coi_registers: usize,
    elapsed: Duration,
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (max_depth, limit) = if smoke {
        (64, Duration::from_secs(5))
    } else {
        (256, Duration::from_secs(60))
    };
    println!("satbench: SAT bounded model checking (scale: {scale:?}, smoke: {smoke})");
    println!();

    let fifo = fifo_controller(&scale.fifo());
    let fifo_bug = fifo_controller(&FifoParams {
        inject_half_flag_bug: true,
        ..scale.fifo()
    });
    let processor = processor_module(&scale.processor());

    // `--design <spec>` (repeatable) swaps in DesignSource-loaded designs;
    // their bug expectations are unknown, so only verdict plumbing is gated.
    let design_specs: Vec<String> = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .filter(|w| w[0] == "--design")
            .map(|w| w[1].clone())
            .collect()
    };
    let mut loaded_designs = Vec::new();
    for spec in &design_specs {
        match rfn_bench::common::load_source(spec) {
            Ok(l) => loaded_designs.push(l),
            Err(e) => {
                eprintln!("satbench: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Section 1: depth sweep. `expect_bug` is the smoke gate: those
    // properties must be falsified within the depth bound.
    let cases: Vec<(String, &Netlist, &Property, bool)> = if loaded_designs.is_empty() {
        vec![
            (
                "fifo".to_owned(),
                &fifo.netlist,
                fifo.property("psh_full").expect("bundled"),
                false,
            ),
            (
                "fifo_bug".to_owned(),
                &fifo_bug.netlist,
                fifo_bug.property("psh_hf").expect("bundled"),
                true,
            ),
            (
                "processor".to_owned(),
                &processor.netlist,
                processor.property("error_flag").expect("bundled"),
                true,
            ),
        ]
    } else {
        loaded_designs
            .iter()
            .flat_map(|l| {
                l.design.properties.iter().map(|p| {
                    (
                        l.design.netlist.name().to_owned(),
                        &l.design.netlist,
                        p,
                        false,
                    )
                })
            })
            .collect()
    };
    let mut rows = Vec::new();
    for (design, netlist, property, expect_bug) in cases {
        let options = BmcOptions::default()
            .with_max_depth(max_depth)
            .with_time_limit(limit);
        let start = Instant::now();
        let report = match verify_bmc(netlist, property, &options) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("satbench: {design}/{}: {e}", property.name);
                return ExitCode::from(1);
            }
        };
        let elapsed = start.elapsed();
        let (verdict, depth) = match report.verdict {
            BmcVerdict::Falsified { depth } => ("falsified", depth),
            BmcVerdict::BoundedSafe { depth } => ("bounded_safe", depth),
            BmcVerdict::OutOfBudget { depth, .. } => ("out_of_budget", depth.unwrap_or(0)),
        };
        if expect_bug && verdict != "falsified" {
            eprintln!(
                "satbench: {design}/{}: expected a counterexample, got {verdict} at depth {depth}",
                property.name
            );
            return ExitCode::from(1);
        }
        let frames = (depth + 1) as f64 / elapsed.as_secs_f64().max(1e-9);
        let row = Row {
            design,
            property: property.name.clone(),
            verdict,
            depth,
            frames_per_sec: frames,
            conflicts: report.stats.solver.conflicts,
            propagations: report.stats.solver.propagations,
            refinements: report.stats.refinements,
            abstract_registers: report.stats.abstract_registers,
            coi_registers: report.stats.coi_registers,
            elapsed,
        };
        println!(
            "{:<10} {:<11} {:>12} depth {:>4}  {:>7.1} frames/s  {:>8} conflicts  \
             abstraction {}/{} regs",
            row.design,
            row.property,
            row.verdict,
            row.depth,
            row.frames_per_sec,
            row.conflicts,
            row.abstract_registers,
            row.coi_registers
        );
        rows.push(row);
    }
    println!();

    // Section 2: the bug race. The same falsifiable property, SAT vs. BDD.
    let error_flag = processor.property("error_flag").expect("bundled");
    let start = Instant::now();
    let bmc_report = verify_bmc(
        &processor.netlist,
        error_flag,
        &BmcOptions::default()
            .with_max_depth(max_depth)
            .with_time_limit(limit),
    )
    .expect("bmc counterexample replays");
    let bmc_elapsed = start.elapsed();
    let bmc_depth = match bmc_report.verdict {
        BmcVerdict::Falsified { depth } => depth,
        other => {
            eprintln!("satbench: bug race: BMC did not falsify ({other:?})");
            return ExitCode::from(1);
        }
    };
    let start = Instant::now();
    let rfn_outcome = Rfn::new(
        &processor.netlist,
        error_flag,
        RfnOptions::default().with_time_limit(limit.max(Duration::from_secs(30))),
    )
    .expect("valid property")
    .run()
    .expect("structural soundness");
    let rfn_elapsed = start.elapsed();
    let rfn_verdict = match &rfn_outcome {
        RfnOutcome::Proved { .. } => "proved",
        RfnOutcome::Falsified { .. } => "falsified",
        RfnOutcome::Inconclusive { .. } => "inconclusive",
    };
    println!(
        "bug race on processor/error_flag: BMC {bmc_elapsed:.2?} (depth {bmc_depth}) vs \
         RFN {rfn_elapsed:.2?} ({rfn_verdict})"
    );

    let json = render_json(
        &rows,
        bmc_depth,
        bmc_elapsed,
        rfn_verdict,
        rfn_elapsed,
        smoke,
    );
    if let Err(e) = std::fs::write("BENCH_sat.json", &json) {
        eprintln!("satbench: writing BENCH_sat.json: {e}");
        return ExitCode::from(1);
    }
    println!();
    println!("wrote BENCH_sat.json");
    ExitCode::SUCCESS
}

fn render_json(
    rows: &[Row],
    bmc_depth: usize,
    bmc_elapsed: Duration,
    rfn_verdict: &str,
    rfn_elapsed: Duration,
    smoke: bool,
) -> String {
    let mut s = String::from("{\n  \"bench\": \"sat\",\n");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    s.push_str("  \"depth_sweep\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"design\": \"{}\", \"property\": \"{}\", \"verdict\": \"{}\", \
             \"depth\": {}, \"frames_per_sec\": {:.1}, \"conflicts\": {}, \
             \"propagations\": {}, \"refinements\": {}, \"abstract_registers\": {}, \
             \"coi_registers\": {}, \"elapsed_ms\": {}}}",
            r.design,
            r.property,
            r.verdict,
            r.depth,
            r.frames_per_sec,
            r.conflicts,
            r.propagations,
            r.refinements,
            r.abstract_registers,
            r.coi_registers,
            r.elapsed.as_millis()
        );
        s.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"bug_race\": {{\"design\": \"processor\", \"property\": \"error_flag\", \
         \"bmc_depth\": {bmc_depth}, \"bmc_ms\": {}, \"rfn_verdict\": \"{rfn_verdict}\", \
         \"rfn_ms\": {}}}",
        bmc_elapsed.as_millis(),
        rfn_elapsed.as_millis()
    );
    s.push_str("}\n");
    s
}
