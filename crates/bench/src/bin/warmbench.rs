//! Warm-start smoke: the same property verified twice through one
//! `--order-cache-dir`, gating that the repeat run actually reuses the
//! persisted variable order.
//!
//! ```text
//! cargo run -p rfn-bench --bin warmbench --release [-- --quick]
//! ```
//!
//! Run 1 proves the fifo `psh_full` property cold, converging its variable
//! order through dynamic reordering and persisting it to the cache
//! directory on the conclusive verdict. Run 2 repeats the identical job
//! against the same cache. The gates, each a hard nonzero exit:
//!
//! 1. both runs reach the same conclusive verdict (and the same error
//!    trace length when falsified);
//! 2. the cold run demonstrably reordered — otherwise the smoke proves
//!    nothing;
//! 3. the warm run sifts strictly less: no more sift *passes* than cold,
//!    and strictly fewer nodes moved by them. The pass count alone is
//!    schedule-structural — the doubling trigger fires whenever a model
//!    outgrows the floor, converged order or not — so the work those
//!    passes find left to do is what measures how warm the start was.
//!
//! The sift floor is lowered to smoke scale so the cold run's reordering
//! is exercised at all; verdict equality under that churn is part of the
//! point. The whole job is deterministic (one property, one thread, seeded
//! simulation), so the node counts gate exactly, not statistically.
//!
//! Two grouped phases follow, exercising the *group* warm-start store
//! behind `--group-threshold`:
//!
//! * all three fifo `psh_*` properties run as one grouped plain-MC session
//!   against a fresh cache, twice. The fifo is scaled down further for this
//!   phase: grouping feeds the *unabstracted* union COI to the plain
//!   engine, and the phase-1 fifo's full data pipeline blows the plain
//!   node ceiling (by design — that is what the RFN loop is for). The
//!   clustering must produce a non-singleton group, the cache must hold
//!   exactly one store entry per non-singleton group, both runs must agree
//!   verdict-for-verdict, and the warm repeat must do strictly less sift
//!   work than the cold run (same gates as phase 1);
//! * the many-property synthetic (two disjoint counters) gates the
//!   one-entry-per-group invariant with *several* groups: two clusters in,
//!   exactly two store files out, identical verdicts on the repeat run.

use std::process::ExitCode;

use rfn_bench::common::grouped_synthetic;
use rfn_bench::Scale;
use rfn_core::{EngineKind, Rfn, RfnOptions, RfnOutcome, VerifySession};
use rfn_designs::fifo_controller;
use rfn_mc::PlainOptions;

/// Verdict fingerprint plus the reordering bookkeeping of one run.
struct RunSummary {
    verdict: &'static str,
    trace_cycles: usize,
    iterations: usize,
    sift_runs: u64,
    sift_shrunk: u64,
}

fn run_once(
    netlist: &rfn_netlist::Netlist,
    property: &rfn_netlist::Property,
    cache_dir: &std::path::Path,
) -> Result<RunSummary, String> {
    let mut options = RfnOptions::default().with_order_cache_dir(cache_dir);
    // Smoke-scale sift floor: the fifo abstractions stay small, and the
    // default floor would leave the reorder scheduler idle in both runs.
    options.reach.reorder_threshold = 500;
    let outcome = Rfn::new(netlist, property, options)
        .map_err(|e| format!("building RFN loop: {e}"))?
        .run()
        .map_err(|e| format!("running RFN loop: {e}"))?;
    Ok(match outcome {
        RfnOutcome::Proved { stats } => RunSummary {
            verdict: "proved",
            trace_cycles: 0,
            iterations: stats.iterations,
            sift_runs: stats.bdd.sift_runs,
            sift_shrunk: stats.bdd.sift_nodes_shrunk,
        },
        RfnOutcome::Falsified { trace, stats } => RunSummary {
            verdict: "falsified",
            trace_cycles: trace.num_cycles(),
            iterations: stats.iterations,
            sift_runs: stats.bdd.sift_runs,
            sift_shrunk: stats.bdd.sift_nodes_shrunk,
        },
        RfnOutcome::Inconclusive { reason, .. } => {
            return Err(format!("inconclusive: {reason}"));
        }
    })
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let design = fifo_controller(&scale.fifo());
    let property = design.property("psh_full").expect("bundled property");
    println!(
        "warmbench: {} ({} registers), property `{}` (scale: {scale:?})",
        design.netlist.name(),
        design.netlist.num_registers(),
        property.name
    );

    let cache_dir = std::env::temp_dir().join(format!("rfn-warmbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let cold = match run_once(&design.netlist, property, &cache_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warmbench: cold run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cold: {} ({} cycles, {} iterations, {} sift runs moving {} nodes)",
        cold.verdict, cold.trace_cycles, cold.iterations, cold.sift_runs, cold.sift_shrunk
    );

    let warm = match run_once(&design.netlist, property, &cache_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warmbench: warm run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "warm: {} ({} cycles, {} iterations, {} sift runs moving {} nodes)",
        warm.verdict, warm.trace_cycles, warm.iterations, warm.sift_runs, warm.sift_shrunk
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    if warm.verdict != cold.verdict || warm.trace_cycles != cold.trace_cycles {
        eprintln!(
            "warmbench: FAILURE: warm verdict {} ({} cycles) != cold {} ({} cycles)",
            warm.verdict, warm.trace_cycles, cold.verdict, cold.trace_cycles
        );
        return ExitCode::FAILURE;
    }
    if cold.sift_runs == 0 || cold.sift_shrunk == 0 {
        eprintln!(
            "warmbench: FAILURE: cold run never reordered productively \
             ({} sift runs moving {} nodes); the smoke proves nothing",
            cold.sift_runs, cold.sift_shrunk
        );
        return ExitCode::FAILURE;
    }
    if warm.sift_runs > cold.sift_runs || warm.sift_shrunk >= cold.sift_shrunk {
        eprintln!(
            "warmbench: FAILURE: warm run sifted {} times moving {} nodes vs cold \
             {} times moving {} — the order cache did not reduce reordering work",
            warm.sift_runs, warm.sift_shrunk, cold.sift_runs, cold.sift_shrunk
        );
        return ExitCode::FAILURE;
    }
    println!(
        "warmbench ok: warm start cut reordering work {} -> {} nodes ({} -> {} sift runs)",
        cold.sift_shrunk, warm.sift_shrunk, cold.sift_runs, warm.sift_runs
    );

    if let Err(e) = grouped_fifo_phase() {
        eprintln!("warmbench: grouped fifo phase FAILURE: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = synthetic_store_phase() {
        eprintln!("warmbench: synthetic store phase FAILURE: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One grouped plain-MC session summary: portfolio verdicts plus the sift
/// work of each scheduled group's shared manager.
struct GroupRunSummary {
    verdicts: Vec<String>,
    non_singleton: usize,
    sift_runs: u64,
    sift_shrunk: u64,
}

/// Runs the properties as one grouped plain-MC session against the given
/// order-cache directory (the group warm-start store lives there).
fn run_grouped(
    netlist: &rfn_netlist::Netlist,
    properties: &[rfn_netlist::Property],
    cache_dir: &std::path::Path,
) -> Result<GroupRunSummary, String> {
    let mut plain = PlainOptions::default();
    // The same smoke-scale sift floor as phase 1, for the same reason.
    plain.reach.reorder_threshold = 500;
    let report = VerifySession::new(netlist)
        .properties(properties.iter().cloned())
        .engine(EngineKind::PlainMc)
        .rfn_options(RfnOptions::default().with_order_cache_dir(cache_dir))
        .plain_options(plain)
        .threads(1)
        .run()
        .map_err(|e| format!("grouped session: {e}"))?;
    let verdicts = report
        .results
        .iter()
        .map(|r| format!("{:?}", r.verdict))
        .collect();
    // Group members share one manager, so read each group's stats once
    // (through its leader) instead of once per member.
    let mut sift_runs = 0u64;
    let mut sift_shrunk = 0u64;
    for group in &report.groups {
        if let Some(plain) = &report.results[group[0]].plain {
            sift_runs += plain.stats.sift_runs;
            sift_shrunk += plain.stats.sift_nodes_shrunk;
        }
    }
    Ok(GroupRunSummary {
        verdicts,
        non_singleton: report.groups.iter().filter(|g| g.len() > 1).count(),
        sift_runs,
        sift_shrunk,
    })
}

/// Counts the `.store` entries the group warm-start saved under `dir`.
fn store_entries(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "store"))
                .count()
        })
        .unwrap_or(0)
}

/// Grouped warm-start on the fifo's three `psh_*` properties: one shared
/// model and fixpoint cold, then a warm repeat from the per-group store.
///
/// Uses a smaller fifo than phase 1: the grouped plain engine checks the
/// full union COI without abstraction, so the model must fit the plain
/// node ceiling outright.
fn grouped_fifo_phase() -> Result<(), String> {
    let design = fifo_controller(&rfn_designs::FifoParams {
        depth: 8,
        data_width: 4,
        data_stages: 2,
        inject_half_flag_bug: false,
    });
    let (netlist, properties) = (&design.netlist, &design.properties[..]);
    let cache_dir = std::env::temp_dir().join(format!("rfn-warmbench-g-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cold = run_grouped(netlist, properties, &cache_dir)?;
    let warm = run_grouped(netlist, properties, &cache_dir)?;
    let entries = store_entries(&cache_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!(
        "grouped fifo: {} non-singleton groups, {} store entries, sift work {} -> {} nodes \
         ({} -> {} runs)",
        cold.non_singleton,
        entries,
        cold.sift_shrunk,
        warm.sift_shrunk,
        cold.sift_runs,
        warm.sift_runs
    );
    if cold.non_singleton == 0 {
        return Err("the fifo psh_* properties did not form a group".to_owned());
    }
    if entries != cold.non_singleton {
        return Err(format!(
            "expected one store entry per group ({}), found {entries}",
            cold.non_singleton
        ));
    }
    if warm.verdicts != cold.verdicts {
        return Err(format!(
            "warm verdicts {:?} != cold {:?}",
            warm.verdicts, cold.verdicts
        ));
    }
    if cold.sift_runs == 0 || cold.sift_shrunk == 0 {
        return Err(format!(
            "cold grouped run never reordered productively ({} sift runs moving {} nodes)",
            cold.sift_runs, cold.sift_shrunk
        ));
    }
    if warm.sift_runs > cold.sift_runs || warm.sift_shrunk >= cold.sift_shrunk {
        return Err(format!(
            "warm grouped run sifted {} times moving {} nodes vs cold {} moving {}",
            warm.sift_runs, warm.sift_shrunk, cold.sift_runs, cold.sift_shrunk
        ));
    }
    println!(
        "grouped fifo ok: group store cut reordering work {} -> {} nodes",
        cold.sift_shrunk, warm.sift_shrunk
    );
    Ok(())
}

/// One-entry-per-group with several groups: the synthetic's two disjoint
/// counters must produce exactly two store entries, and the warm repeat the
/// same verdicts.
fn synthetic_store_phase() -> Result<(), String> {
    let (netlist, properties) = grouped_synthetic(2, 3);
    let cache_dir = std::env::temp_dir().join(format!("rfn-warmbench-s-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cold = run_grouped(&netlist, &properties, &cache_dir)?;
    let warm = run_grouped(&netlist, &properties, &cache_dir)?;
    let entries = store_entries(&cache_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    if cold.non_singleton != 2 {
        return Err(format!(
            "expected 2 groups from 2 disjoint counters, got {}",
            cold.non_singleton
        ));
    }
    if entries != 2 {
        return Err(format!(
            "expected 2 store entries (one per group), found {entries}"
        ));
    }
    if warm.verdicts != cold.verdicts {
        return Err(format!(
            "warm verdicts {:?} != cold {:?}",
            warm.verdicts, cold.verdicts
        ));
    }
    println!("synthetic store ok: 2 groups -> 2 store entries, verdicts stable");
    Ok(())
}
