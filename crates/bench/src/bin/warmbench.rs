//! Warm-start smoke: the same property verified twice through one
//! `--order-cache-dir`, gating that the repeat run actually reuses the
//! persisted variable order.
//!
//! ```text
//! cargo run -p rfn-bench --bin warmbench --release [-- --quick]
//! ```
//!
//! Run 1 proves the fifo `psh_full` property cold, converging its variable
//! order through dynamic reordering and persisting it to the cache
//! directory on the conclusive verdict. Run 2 repeats the identical job
//! against the same cache. The gates, each a hard nonzero exit:
//!
//! 1. both runs reach the same conclusive verdict (and the same error
//!    trace length when falsified);
//! 2. the cold run demonstrably reordered — otherwise the smoke proves
//!    nothing;
//! 3. the warm run sifts strictly less: no more sift *passes* than cold,
//!    and strictly fewer nodes moved by them. The pass count alone is
//!    schedule-structural — the doubling trigger fires whenever a model
//!    outgrows the floor, converged order or not — so the work those
//!    passes find left to do is what measures how warm the start was.
//!
//! The sift floor is lowered to smoke scale so the cold run's reordering
//! is exercised at all; verdict equality under that churn is part of the
//! point. The whole job is deterministic (one property, one thread, seeded
//! simulation), so the node counts gate exactly, not statistically.

use std::process::ExitCode;

use rfn_bench::Scale;
use rfn_core::{Rfn, RfnOptions, RfnOutcome};
use rfn_designs::fifo_controller;

/// Verdict fingerprint plus the reordering bookkeeping of one run.
struct RunSummary {
    verdict: &'static str,
    trace_cycles: usize,
    iterations: usize,
    sift_runs: u64,
    sift_shrunk: u64,
}

fn run_once(
    netlist: &rfn_netlist::Netlist,
    property: &rfn_netlist::Property,
    cache_dir: &std::path::Path,
) -> Result<RunSummary, String> {
    let mut options = RfnOptions::default().with_order_cache_dir(cache_dir);
    // Smoke-scale sift floor: the fifo abstractions stay small, and the
    // default floor would leave the reorder scheduler idle in both runs.
    options.reach.reorder_threshold = 500;
    let outcome = Rfn::new(netlist, property, options)
        .map_err(|e| format!("building RFN loop: {e}"))?
        .run()
        .map_err(|e| format!("running RFN loop: {e}"))?;
    Ok(match outcome {
        RfnOutcome::Proved { stats } => RunSummary {
            verdict: "proved",
            trace_cycles: 0,
            iterations: stats.iterations,
            sift_runs: stats.bdd.sift_runs,
            sift_shrunk: stats.bdd.sift_nodes_shrunk,
        },
        RfnOutcome::Falsified { trace, stats } => RunSummary {
            verdict: "falsified",
            trace_cycles: trace.num_cycles(),
            iterations: stats.iterations,
            sift_runs: stats.bdd.sift_runs,
            sift_shrunk: stats.bdd.sift_nodes_shrunk,
        },
        RfnOutcome::Inconclusive { reason, .. } => {
            return Err(format!("inconclusive: {reason}"));
        }
    })
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let design = fifo_controller(&scale.fifo());
    let property = design.property("psh_full").expect("bundled property");
    println!(
        "warmbench: {} ({} registers), property `{}` (scale: {scale:?})",
        design.netlist.name(),
        design.netlist.num_registers(),
        property.name
    );

    let cache_dir = std::env::temp_dir().join(format!("rfn-warmbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let cold = match run_once(&design.netlist, property, &cache_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warmbench: cold run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cold: {} ({} cycles, {} iterations, {} sift runs moving {} nodes)",
        cold.verdict, cold.trace_cycles, cold.iterations, cold.sift_runs, cold.sift_shrunk
    );

    let warm = match run_once(&design.netlist, property, &cache_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warmbench: warm run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "warm: {} ({} cycles, {} iterations, {} sift runs moving {} nodes)",
        warm.verdict, warm.trace_cycles, warm.iterations, warm.sift_runs, warm.sift_shrunk
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    if warm.verdict != cold.verdict || warm.trace_cycles != cold.trace_cycles {
        eprintln!(
            "warmbench: FAILURE: warm verdict {} ({} cycles) != cold {} ({} cycles)",
            warm.verdict, warm.trace_cycles, cold.verdict, cold.trace_cycles
        );
        return ExitCode::FAILURE;
    }
    if cold.sift_runs == 0 || cold.sift_shrunk == 0 {
        eprintln!(
            "warmbench: FAILURE: cold run never reordered productively \
             ({} sift runs moving {} nodes); the smoke proves nothing",
            cold.sift_runs, cold.sift_shrunk
        );
        return ExitCode::FAILURE;
    }
    if warm.sift_runs > cold.sift_runs || warm.sift_shrunk >= cold.sift_shrunk {
        eprintln!(
            "warmbench: FAILURE: warm run sifted {} times moving {} nodes vs cold \
             {} times moving {} — the order cache did not reduce reordering work",
            warm.sift_runs, warm.sift_shrunk, cold.sift_runs, cold.sift_shrunk
        );
        return ExitCode::FAILURE;
    }
    println!(
        "warmbench ok: warm start cut reordering work {} -> {} nodes ({} -> {} sift runs)",
        cold.sift_shrunk, warm.sift_shrunk, cold.sift_runs, warm.sift_runs
    );
    ExitCode::SUCCESS
}
