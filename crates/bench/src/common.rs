//! Shared model-building helpers for the benchmark harnesses.
//!
//! The [`Case`] type and its builders used to live inside `mcbench`; they
//! are shared here so `warmbench` (and any future harness) builds bounded
//! abstractions and symbolic models exactly the same way. The module also
//! provides [`grouped_synthetic`], the many-property synthetic design the
//! multi-property grouping sections benchmark against.

use std::collections::{HashSet, VecDeque};
use std::time::Instant;

use rfn_bdd::{Bdd, BddManager};
use rfn_core::{DesignSource, LoadedDesign};
use rfn_mc::{ModelOptions, ModelSpec, SymbolicModel};
use rfn_netlist::{transitive_fanin, Abstraction, GateOp, Netlist, Property, SignalId};

/// One benchmark workload: a design, a target signal, and the bounded
/// abstraction the models are built from.
pub struct Case {
    /// Short design name for table rows.
    pub name: String,
    /// The watched signal's name (property or coverage target).
    pub target_name: String,
    /// The full design.
    pub netlist: Netlist,
    /// The watched signal.
    pub target: SignalId,
    /// The watched value.
    pub value: bool,
    /// The bounded abstraction's model spec.
    pub spec: ModelSpec,
    /// Step cap for reachability fixpoints on this case.
    pub steps: usize,
}

/// Builds one [`Case`]: the `cap` BFS-nearest registers of the target, as
/// the coverage engine's initial abstraction would pick.
pub fn make_case(
    name: impl Into<String>,
    netlist: Netlist,
    target_name: String,
    target: SignalId,
    value: bool,
    cap: usize,
    steps: usize,
) -> Case {
    let name = name.into();
    eprintln!("bench: building {name}/{target_name} (cap {cap})");
    let regs = closest_registers(&netlist, target, cap);
    let view = Abstraction::from_registers(regs)
        .view(&netlist, [target])
        .expect("bundled designs validate");
    let spec = ModelSpec::from_view(&view);
    Case {
        name,
        target_name,
        netlist,
        target,
        value,
        spec,
        steps,
    }
}

/// Resolves and loads a design spec (`builtin:<name>`, `fuzz:<seed>`, an
/// AIGER/DIMACS/text path — see [`DesignSource`]) with a bench-friendly
/// string error.
///
/// # Errors
///
/// The rendered parse/load error when the spec is invalid or the file is
/// unreadable or malformed.
pub fn load_source(spec: &str) -> Result<LoadedDesign, String> {
    DesignSource::parse(spec)
        .and_then(|source| source.load())
        .map_err(|e| e.to_string())
}

/// Builds one [`Case`] from a design spec: loads it through
/// [`DesignSource`] and bounds the abstraction around its first property's
/// target. The case is named after the netlist.
///
/// # Errors
///
/// A load error, or a message naming the spec when the design carries no
/// properties (text netlists need an explicit `--watch`-style target, which
/// the bench harnesses do not take).
pub fn design_case(spec: &str, cap: usize, steps: usize) -> Result<Case, String> {
    let loaded = load_source(spec)?;
    let p = loaded
        .design
        .properties
        .first()
        .ok_or_else(|| format!("design `{spec}` carries no properties to benchmark"))?;
    Ok(make_case(
        loaded.design.netlist.name().to_owned(),
        loaded.design.netlist.clone(),
        p.name.clone(),
        p.signal,
        p.value,
        cap,
        steps,
    ))
}

/// The `k` registers closest to `target` by register-to-register BFS
/// distance through next-state cones — the same shape of bounded
/// abstraction the coverage engine seeds its refinement loop with.
pub fn closest_registers(netlist: &Netlist, target: SignalId, k: usize) -> Vec<SignalId> {
    let mut seen: HashSet<SignalId> = HashSet::new();
    let mut queue: VecDeque<SignalId> = VecDeque::new();
    for leaf in transitive_fanin(netlist, [target]).register_leaves {
        if seen.insert(leaf) {
            queue.push_back(leaf);
        }
    }
    let mut picked = Vec::new();
    while let Some(r) = queue.pop_front() {
        if picked.len() >= k {
            break;
        }
        picked.push(r);
        for leaf in transitive_fanin(netlist, [netlist.register_next(r)]).register_leaves {
            if seen.insert(leaf) {
                queue.push_back(leaf);
            }
        }
    }
    picked
}

/// Builds the model for one configuration and the target BDD, timing the
/// build (which includes partition clustering and schedule precomputation).
pub fn build_model<'n>(
    case: &'n Case,
    target: Option<(SignalId, bool)>,
    cluster_limit: usize,
) -> (SymbolicModel<'n>, Bdd, f64) {
    let build_start = Instant::now();
    let mut model = SymbolicModel::with_options(
        &case.netlist,
        case.spec.clone(),
        BddManager::new(),
        ModelOptions {
            cluster_limit,
            ..ModelOptions::default()
        },
    )
    .expect("bundled designs validate");
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let target_bdd = match target {
        None => model.manager_ref().zero(),
        Some((s, v)) => {
            let sig = model.signal_bdd(s).expect("target is in the bounded cone");
            if v {
                sig
            } else {
                model.manager().not(sig).expect("no node limit set")
            }
        }
    };
    (model, target_bdd, build_ms)
}

/// The many-property synthetic for grouping benchmarks: `groups`
/// independent saturating counters, each watched by `props_per_group`
/// properties over that counter alone.
///
/// Per group the counter is wide enough to count past every detector, and
/// the properties are: exact-value detectors at 1, 2, …
/// (`props_per_group - 1` of them, each falsified exactly at the depth of
/// its value) plus one watchdog that latches a structurally contradictory
/// condition (never fires; the plain engine proves it by fixpoint). The
/// counters share no logic, so inter-group COI overlap is zero while
/// intra-group overlap is total — at any threshold in `(0, 1]` the
/// clustering recovers exactly one group per counter.
pub fn grouped_synthetic(groups: usize, props_per_group: usize) -> (Netlist, Vec<Property>) {
    assert!(props_per_group >= 2, "need a detector and a watchdog");
    // Wide enough that the deepest detector value stays strictly below
    // saturation (all-ones), where the watchdog condition is evaluated.
    let mut width = 2usize;
    while (1usize << width) - 1 < props_per_group {
        width += 1;
    }
    let mut n = Netlist::new("grouped_synthetic");
    let mut properties = Vec::new();
    for g in 0..groups {
        let bits: Vec<SignalId> = (0..width)
            .map(|i| n.add_register(&format!("g{g}_b{i}"), Some(false)))
            .collect();
        let full = n.add_gate(&format!("g{g}_full"), GateOp::And, &bits);
        // Saturating increment: bit_i flips when all lower bits are set,
        // and every bit holds at the all-ones plateau.
        let mut carry = None;
        for (i, &b) in bits.iter().enumerate() {
            let inc = match carry {
                None => n.add_gate(&format!("g{g}_inc{i}"), GateOp::Not, &[b]),
                Some(c) => n.add_gate(&format!("g{g}_inc{i}"), GateOp::Xor, &[b, c]),
            };
            let hold = n.add_gate(&format!("g{g}_t{i}"), GateOp::Or, &[inc, full]);
            n.set_register_next(b, hold).unwrap();
            carry = Some(match carry {
                None => b,
                Some(c) => n.add_gate(&format!("g{g}_c{i}"), GateOp::And, &[c, b]),
            });
        }
        for v in 1..props_per_group {
            let fanins: Vec<SignalId> = (0..width)
                .map(|i| {
                    if v >> i & 1 == 1 {
                        bits[i]
                    } else {
                        n.add_gate(&format!("g{g}_at{v}_n{i}"), GateOp::Not, &[bits[i]])
                    }
                })
                .collect();
            let at = n.add_gate(&format!("g{g}_at{v}"), GateOp::And, &fanins);
            properties.push((format!("g{g}_at{v}"), at));
        }
        // The watchdog latches `full ∧ ¬b0`, which is contradictory (full
        // implies every bit): a genuinely safe property per group.
        let nb0 = n.add_gate(&format!("g{g}_nb0"), GateOp::Not, &[bits[0]]);
        let arm = n.add_gate(&format!("g{g}_arm"), GateOp::And, &[full, nb0]);
        let w = n.add_register(&format!("g{g}_w"), Some(false));
        let hold = n.add_gate(&format!("g{g}_wt"), GateOp::Or, &[w, arm]);
        n.set_register_next(w, hold).unwrap();
        properties.push((format!("g{g}_wd"), w));
    }
    n.validate().expect("the synthetic validates");
    let properties = properties
        .into_iter()
        .map(|(name, signal)| Property::never(&n, &name, signal))
        .collect();
    (n, properties)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::PropertyGroups;

    #[test]
    fn synthetic_clusters_into_one_group_per_counter() {
        let (n, props) = grouped_synthetic(3, 4);
        assert_eq!(props.len(), 12);
        let groups = PropertyGroups::cluster(&n, &props, 0.5);
        assert_eq!(groups.len(), 3);
        for (g, group) in groups.groups().iter().enumerate() {
            assert_eq!(group.members(), [4 * g, 4 * g + 1, 4 * g + 2, 4 * g + 3]);
        }
    }

    #[test]
    fn synthetic_detector_depths_are_their_values() {
        let (n, props) = grouped_synthetic(2, 3);
        for (i, p) in props.iter().enumerate() {
            let report = rfn_mc::verify_plain(&n, p, &rfn_mc::PlainOptions::default()).unwrap();
            match i % 3 {
                v @ (0 | 1) => assert_eq!(
                    report.verdict,
                    rfn_mc::PlainVerdict::Falsified { depth: v + 1 },
                    "property {}",
                    p.name
                ),
                _ => assert_eq!(
                    report.verdict,
                    rfn_mc::PlainVerdict::Proved,
                    "property {}",
                    p.name
                ),
            }
        }
    }
}
