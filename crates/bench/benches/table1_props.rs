//! Criterion companion to the `table1` binary: RFN end-to-end on the five
//! Table 1 properties (quick-scale designs so iterations stay snappy).

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_bench::Scale;
use rfn_core::{Rfn, RfnOptions};
use rfn_designs::{fifo_controller, processor_module, Design};
use std::hint::black_box;

fn verify(design: &Design, name: &str) -> bool {
    let p = design.property(name).expect("property exists");
    let outcome = Rfn::new(&design.netlist, p, RfnOptions::default())
        .expect("valid")
        .run()
        .expect("runs");
    outcome.is_proved() || outcome.is_falsified()
}

fn bench_table1(c: &mut Criterion) {
    let processor = processor_module(&Scale::Quick.processor());
    let fifo = fifo_controller(&Scale::Quick.fifo());

    c.bench_function("table1/mutex", |b| {
        b.iter(|| black_box(verify(&processor, "mutex")))
    });
    c.bench_function("table1/error_flag", |b| {
        b.iter(|| black_box(verify(&processor, "error_flag")))
    });
    c.bench_function("table1/psh_hf", |b| {
        b.iter(|| black_box(verify(&fifo, "psh_hf")))
    });
    c.bench_function("table1/psh_af", |b| {
        b.iter(|| black_box(verify(&fifo, "psh_af")))
    });
    c.bench_function("table1/psh_full", |b| {
        b.iter(|| black_box(verify(&fifo, "psh_full")))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
);
criterion_main!(benches);
