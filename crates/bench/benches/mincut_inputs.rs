//! Benchmarks the min-cut computation and reports the input reduction it
//! achieves — the Section 2.2 claim that abstract models with thousands of
//! primary inputs yield min-cut designs with far fewer.

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_bench::Scale;
use rfn_designs::processor_module;
use rfn_netlist::{compute_min_cut, Abstraction, Coi, SignalId};
use std::hint::black_box;

fn bench_mincut(c: &mut Criterion) {
    let design = processor_module(&Scale::Paper.processor());
    let n = &design.netlist;
    let p = design.property("mutex").unwrap();
    let coi = Coi::of(n, [p.signal]);

    // Report the static input reduction once (the claim itself).
    for take in [1usize, 8, 32] {
        let mut regs: Vec<SignalId> = vec![p.signal];
        regs.extend(
            coi.registers()
                .iter()
                .copied()
                .filter(|&r| r != p.signal)
                .take(take - 1),
        );
        let view = Abstraction::from_registers(regs)
            .view(n, [p.signal])
            .unwrap();
        let mc = compute_min_cut(n, &view);
        eprintln!(
            "mincut_inputs: {take}-reg abstraction: {} inputs -> {} min-cut inputs",
            mc.original_input_count,
            mc.num_inputs()
        );
    }

    c.bench_function("mincut/processor_1_reg", |b| {
        let view = Abstraction::from_registers([p.signal])
            .view(n, [p.signal])
            .unwrap();
        b.iter(|| black_box(compute_min_cut(n, &view).num_inputs()))
    });

    c.bench_function("mincut/processor_32_regs", |b| {
        let mut regs: Vec<SignalId> = vec![p.signal];
        regs.extend(
            coi.registers()
                .iter()
                .copied()
                .filter(|&r| r != p.signal)
                .take(31),
        );
        let view = Abstraction::from_registers(regs)
            .view(n, [p.signal])
            .unwrap();
        b.iter(|| black_box(compute_min_cut(n, &view).num_inputs()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mincut
);
criterion_main!(benches);
