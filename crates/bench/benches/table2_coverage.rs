//! Criterion companion to the `table2` binary: coverage analysis (RFN and
//! the BFS baseline) on quick-scale designs.

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_bench::Scale;
use rfn_core::{analyze_coverage, bfs_coverage, CoverageOptions};
use rfn_designs::{integer_unit, usb_controller};
use rfn_mc::ReachOptions;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let iu = integer_unit(&Scale::Quick.integer_unit());
    let usb = usb_controller(&Scale::Quick.usb());

    c.bench_function("table2/rfn_iu1", |b| {
        let set = iu.coverage_set("IU1").unwrap();
        b.iter(|| {
            let rep = analyze_coverage(&iu.netlist, set, &CoverageOptions::default()).unwrap();
            black_box(rep.unreachable)
        })
    });

    c.bench_function("table2/bfs_iu1", |b| {
        let set = iu.coverage_set("IU1").unwrap();
        b.iter(|| {
            let rep =
                bfs_coverage(&iu.netlist, set, 60, 4_000_000, &ReachOptions::default()).unwrap();
            black_box(rep.unreachable)
        })
    });

    c.bench_function("table2/rfn_usb1", |b| {
        let set = usb.coverage_set("USB1").unwrap();
        b.iter(|| {
            let rep = analyze_coverage(&usb.netlist, set, &CoverageOptions::default()).unwrap();
            black_box(rep.unreachable)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
);
criterion_main!(benches);
