//! Ablation for the Section 2.3 claim: sequential ATPG guided by an abstract
//! error trace searches much deeper than unguided ATPG.
//!
//! The workload is the processor's `error_flag` violation: a ≈30-cycle
//! needle (28 consecutive stall cycles after activation). Guidance pins the
//! stall counter cycle by cycle, exactly like the abstract error trace RFN
//! produces for this property.

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_atpg::{AtpgOptions, AtpgOutcome, SequentialAtpg};
use rfn_bench::Scale;
use rfn_designs::processor_module;
use rfn_netlist::{Cube, SignalId};
use std::hint::black_box;

struct Workload {
    design: rfn_designs::Design,
    depth: usize,
}

fn workload() -> Workload {
    let params = Scale::Quick.processor();
    let depth = params.stall_threshold as usize + 4;
    Workload {
        design: processor_module(&params),
        depth,
    }
}

/// Guidance cubes equivalent to the abstract error trace: the stall counter
/// increments every cycle once the pipeline is active.
fn guidance(w: &Workload) -> Vec<Cube> {
    let n = &w.design.netlist;
    let sc: Vec<SignalId> = (0..5)
        .map(|k| n.find(&format!("stall_cnt[{k}]")).unwrap())
        .collect();
    let active = n.find("active").unwrap();
    let mut cubes = vec![Cube::new(); w.depth];
    for (t, cube) in cubes.iter_mut().enumerate() {
        if t < 2 {
            continue; // boot sequence
        }
        let cnt = (t - 2) as u64;
        if cnt > 27 {
            continue;
        }
        for (k, &bit) in sc.iter().enumerate() {
            cube.insert(bit, cnt & (1 << k) != 0).unwrap();
        }
        cube.insert(active, true).unwrap();
    }
    cubes
}

fn bench_guidance(c: &mut Criterion) {
    let w = workload();
    let n = &w.design.netlist;
    let err = w.design.property("error_flag").unwrap().signal;
    let target: Cube = [(err, true)].into_iter().collect();

    let opts = AtpgOptions {
        max_backtracks: 200_000,
        max_decisions: 20_000_000,
        ..AtpgOptions::default()
    };

    // Report the effort difference once.
    {
        let atpg = SequentialAtpg::new(n, opts.clone()).unwrap();
        let g = guidance(&w);
        let mut gc = vec![Cube::new(); w.depth];
        gc[..g.len()].clone_from_slice(&g);
        let mut with_target = gc.clone();
        with_target[w.depth - 1].merge(&target).unwrap();
        let (out, stats) = atpg.justify(&with_target);
        eprintln!(
            "guided:   sat={} decisions={} backtracks={}",
            out.is_sat(),
            stats.decisions,
            stats.backtracks
        );
        let mut unguided = vec![Cube::new(); w.depth];
        unguided[w.depth - 1] = target.clone();
        let (out, stats) = atpg.justify(&unguided);
        eprintln!(
            "unguided: sat={} aborted={} decisions={} backtracks={}",
            out.is_sat(),
            matches!(out, AtpgOutcome::Aborted),
            stats.decisions,
            stats.backtracks
        );
    }

    c.bench_function("guidance/guided_error_flag", |b| {
        let atpg = SequentialAtpg::new(n, opts.clone()).unwrap();
        let g = guidance(&w);
        b.iter(|| black_box(atpg.find_trace(w.depth, &target, &g).is_sat()))
    });

    c.bench_function("guidance/unguided_error_flag", |b| {
        let atpg = SequentialAtpg::new(n, opts.clone()).unwrap();
        b.iter(|| black_box(atpg.find_trace(w.depth, &target, &[]).is_sat()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_guidance
);
criterion_main!(benches);
