//! Ablation for the Section 2.4 design choice: the greedy ATPG minimization
//! (phase two of refinement) keeps abstractions small. With it disabled,
//! every 3-valued-simulation candidate is added wholesale.

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_bench::Scale;
use rfn_core::{Rfn, RfnOptions, RfnOutcome};
use rfn_designs::{fifo_controller, processor_module};
use std::hint::black_box;

fn options(skip_minimization: bool) -> RfnOptions {
    let mut o = RfnOptions::default();
    o.refine.skip_minimization = skip_minimization;
    o
}

fn run(design: &rfn_designs::Design, name: &str, skip: bool) -> usize {
    let p = design.property(name).expect("property exists");
    let outcome = Rfn::new(&design.netlist, p, options(skip))
        .expect("valid")
        .run()
        .expect("runs");
    match outcome {
        RfnOutcome::Proved { stats } | RfnOutcome::Falsified { stats, .. } => {
            stats.abstract_registers
        }
        other => panic!("expected a verdict, got {other:?}"),
    }
}

fn bench_refine(c: &mut Criterion) {
    let fifo = fifo_controller(&Scale::Quick.fifo());
    let processor = processor_module(&Scale::Quick.processor());

    // Report the final abstraction sizes once. The effect is mild on the
    // FIFO (small candidate lists) and pronounced on the processor's
    // error_flag, whose first refinement round sees dozens of candidates.
    for (design, name) in [
        (&fifo, "psh_hf"),
        (&fifo, "psh_af"),
        (&fifo, "psh_full"),
        (&processor, "error_flag"),
    ] {
        let with_min = run(design, name, false);
        let without = run(design, name, true);
        eprintln!(
            "refine_ablation {name}: abstraction {with_min} regs with minimization, \
             {without} without"
        );
    }

    c.bench_function("refine/error_flag_with_minimization", |b| {
        b.iter(|| black_box(run(&processor, "error_flag", false)))
    });
    c.bench_function("refine/error_flag_without_minimization", |b| {
        b.iter(|| black_box(run(&processor, "error_flag", true)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_refine
);
criterion_main!(benches);
