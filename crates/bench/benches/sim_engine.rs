//! Benchmarks for the simulation engine: cycles per second on the benchmark
//! designs, in concrete and three-valued mode.

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_bench::Scale;
use rfn_designs::{fifo_controller, processor_module};
use rfn_netlist::Cube;
use rfn_sim::Simulator;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let fifo = fifo_controller(&Scale::Paper.fifo());
    c.bench_function("sim/fifo_100_cycles_concrete", |b| {
        let n = &fifo.netlist;
        let inputs: Cube = n.inputs().iter().map(|&i| (i, true)).collect();
        b.iter(|| {
            let mut sim = Simulator::new(n).unwrap();
            sim.reset();
            for _ in 0..100 {
                sim.step(&inputs);
            }
            black_box(sim.value(n.registers()[0]))
        })
    });

    c.bench_function("sim/fifo_100_cycles_all_x", |b| {
        let n = &fifo.netlist;
        b.iter(|| {
            let mut sim = Simulator::new(n).unwrap();
            sim.reset();
            for _ in 0..100 {
                sim.step(&Cube::new());
            }
            black_box(sim.value(n.registers()[0]))
        })
    });

    let proc = processor_module(&Scale::Quick.processor());
    c.bench_function("sim/processor_quick_100_cycles", |b| {
        let n = &proc.netlist;
        let inputs: Cube = n.inputs().iter().map(|&i| (i, false)).collect();
        b.iter(|| {
            let mut sim = Simulator::new(n).unwrap();
            sim.reset();
            for _ in 0..100 {
                sim.step(&inputs);
            }
            black_box(sim.value(n.registers()[0]))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim
);
criterion_main!(benches);
