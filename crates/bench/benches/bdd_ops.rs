//! Micro-benchmarks for the BDD package: apply operations, relational
//! products (the image-computation workhorse) and sifting.

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_bdd::{Bdd, BddManager, VarId};
use std::hint::black_box;

/// Builds an n-queens-like constraint: rows of pairwise-exclusive variables.
fn exclusive_rows(m: &mut BddManager, vars: &[VarId], row: usize) -> Bdd {
    let mut acc = m.one();
    for chunk in vars.chunks(row) {
        // At most one variable per chunk.
        for i in 0..chunk.len() {
            for j in i + 1..chunk.len() {
                let a = m.var(chunk[i]);
                let b = m.var(chunk[j]);
                let both = m.and(a, b).unwrap();
                let not_both = m.not(both).unwrap();
                acc = m.and(acc, not_both).unwrap();
            }
        }
        // At least one.
        let lits: Vec<Bdd> = chunk.iter().map(|&v| m.var(v)).collect();
        let any = m.or_many(lits).unwrap();
        acc = m.and(acc, any).unwrap();
    }
    acc
}

fn bench_apply(c: &mut Criterion) {
    c.bench_function("bdd/build_exclusive_rows_24", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let vars: Vec<VarId> = (0..24).map(|_| m.new_var()).collect();
            black_box(exclusive_rows(&mut m, &vars, 6))
        })
    });

    c.bench_function("bdd/xor_chain_64", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let mut acc = m.zero();
            for _ in 0..64 {
                let v = m.new_var();
                let lit = m.var(v);
                acc = m.xor(acc, lit).unwrap();
            }
            black_box(acc)
        })
    });
}

fn bench_relational_product(c: &mut Criterion) {
    // ∃x. f ∧ g over a shared mid-sized function.
    c.bench_function("bdd/and_exists_24vars", |b| {
        let mut m = BddManager::new();
        let vars: Vec<VarId> = (0..24).map(|_| m.new_var()).collect();
        let f = exclusive_rows(&mut m, &vars, 6);
        let g = exclusive_rows(&mut m, &vars[4..20], 4);
        let cube = m.var_cube(vars[..12].iter().copied());
        b.iter(|| black_box(m.and_exists(f, g, cube).unwrap()))
    });
}

fn bench_sift(c: &mut Criterion) {
    c.bench_function("bdd/sift_misordered_pairs", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let vars: Vec<VarId> = (0..16).map(|_| m.new_var()).collect();
            // f = OR of (v_i AND v_{i+8}): worst-case interleaving.
            let mut f = m.zero();
            for i in 0..8 {
                let a = m.var(vars[i]);
                let b2 = m.var(vars[i + 8]);
                let ab = m.and(a, b2).unwrap();
                f = m.or(f, ab).unwrap();
            }
            m.sift_with_roots(&[f], 2.0);
            black_box(m.size(f))
        })
    });
}

fn bench_kernel(c: &mut Criterion) {
    // Unique-table probe path in isolation: every node of the function
    // already exists, and clearing the op caches each iteration forces the
    // full ITE recursion to re-run, so `make_node` dedup lookups dominate.
    c.bench_function("bdd/unique_table_dedup", |b| {
        let mut m = BddManager::new();
        let vars: Vec<VarId> = (0..24).map(|_| m.new_var()).collect();
        let f = exclusive_rows(&mut m, &vars, 6);
        m.protect(f);
        b.iter(|| {
            m.clear_caches();
            black_box(exclusive_rows(&mut m, &vars, 6))
        })
    });

    // Warm ITE cache: after the first call the result is a single
    // direct-mapped cache probe — the hit-latency floor of the memo table.
    c.bench_function("bdd/ite_cache_warm", |b| {
        let mut m = BddManager::new();
        let vars: Vec<VarId> = (0..24).map(|_| m.new_var()).collect();
        let f = exclusive_rows(&mut m, &vars, 6);
        let g = exclusive_rows(&mut m, &vars[4..20], 4);
        let h = m.not(f).unwrap();
        b.iter(|| black_box(m.ite(f, g, h).unwrap()))
    });

    // Allocation churn + collection cycle: each iteration rebuilds a large
    // dead function (fresh unique-table inserts, since the previous sweep
    // removed it) and then mark-and-sweeps it away again — the steady-state
    // workload automatic GC sees inside a reachability fixpoint.
    c.bench_function("bdd/gc_churn_cycle", |b| {
        let mut m = BddManager::new();
        let vars: Vec<VarId> = (0..24).map(|_| m.new_var()).collect();
        let f = exclusive_rows(&mut m, &vars, 6);
        m.protect(f);
        b.iter(|| {
            let dead = exclusive_rows(&mut m, &vars[2..22], 5);
            black_box(dead);
            black_box(m.gc(&[f]))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_apply, bench_relational_product, bench_sift, bench_kernel
);
criterion_main!(benches);
