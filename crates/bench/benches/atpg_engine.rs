//! Benchmarks for the ATPG engines: combinational justification and
//! sequential trace search on the benchmark designs.

use criterion::{criterion_group, criterion_main, Criterion};
use rfn_atpg::{AtpgOptions, CombinationalAtpg, SequentialAtpg};
use rfn_bench::Scale;
use rfn_designs::{fifo_controller, small::wrapping_counter};
use rfn_netlist::Cube;
use std::hint::black_box;

fn bench_combinational(c: &mut Criterion) {
    let fifo = fifo_controller(&Scale::Quick.fifo());
    let n = &fifo.netlist;
    let full = n.find("full").unwrap();
    c.bench_function("atpg/comb_justify_fifo_full", |b| {
        let atpg = CombinationalAtpg::new(n, AtpgOptions::default()).unwrap();
        let target: Cube = [(full, true)].into_iter().collect();
        b.iter(|| black_box(atpg.justify_cube(&target).is_sat()))
    });
}

fn bench_sequential(c: &mut Criterion) {
    // Reaching the counter threshold needs a deep sequential trace.
    let d = wrapping_counter(6, 40);
    let n = &d.netlist;
    let w = d.properties[0].signal;
    c.bench_function("atpg/seq_counter_depth_42", |b| {
        let atpg = SequentialAtpg::new(n, AtpgOptions::default()).unwrap();
        let target: Cube = [(w, true)].into_iter().collect();
        b.iter(|| black_box(atpg.find_trace(42, &target, &[]).is_sat()))
    });

    let fifo = fifo_controller(&Scale::Quick.fifo());
    let nf = &fifo.netlist;
    let full = nf.find("full").unwrap();
    let depth = 18; // quick FIFO depth 16 + margin
    c.bench_function("atpg/seq_fifo_fill", |b| {
        let atpg = SequentialAtpg::new(nf, AtpgOptions::default()).unwrap();
        let target: Cube = [(full, true)].into_iter().collect();
        b.iter(|| black_box(atpg.find_trace(depth, &target, &[]).is_sat()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_combinational, bench_sequential
);
criterion_main!(benches);
