//! Property tests: symbolic reachability against explicit-state enumeration.

use std::collections::HashSet;

use proptest::prelude::*;
use rfn_mc::{forward_reach, ModelOptions, ModelSpec, ReachOptions, ReachVerdict, SymbolicModel};
use rfn_netlist::{Abstraction, Cube, GateOp, Netlist, SignalId};
use rfn_sim::Simulator;

fn arb_netlist(n_inputs: usize, n_regs: usize, n_gates: usize) -> impl Strategy<Value = Netlist> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
    ]);
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>()), n_gates);
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    (gates, nexts).prop_map(move |(gates, nexts)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fanins: Vec<SignalId> = if matches!(op, GateOp::Not) {
                vec![fa]
            } else {
                vec![fa, fb]
            };
            pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            n.set_register_next(regs[k], pool[nx as usize % pool.len()])
                .unwrap();
        }
        n
    })
}

/// Explicit-state BFS over (register valuation) states using the simulator.
fn explicit_reachable(n: &Netlist) -> HashSet<u32> {
    let regs = n.registers().to_vec();
    let inputs = n.inputs().to_vec();
    let encode = |sim: &Simulator| -> u32 {
        regs.iter().enumerate().fold(0u32, |acc, (k, &r)| {
            acc | (u32::from(sim.value(r).to_bool().expect("binary")) << k)
        })
    };
    let decode_into = |sim: &mut Simulator, bits: u32| {
        for (k, &r) in regs.iter().enumerate() {
            sim.set(r, rfn_sim::Tv::from(bits & (1 << k) != 0));
        }
    };
    let mut sim = Simulator::new(n).unwrap();
    sim.reset();
    let start = encode(&sim);
    let mut seen: HashSet<u32> = [start].into_iter().collect();
    let mut frontier = vec![start];
    while let Some(state) = frontier.pop() {
        for ibits in 0..1u32 << inputs.len() {
            decode_into(&mut sim, state);
            let cube: Cube = inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, ibits & (1 << k) != 0))
                .collect();
            sim.step(&cube);
            let next = encode(&sim);
            if seen.insert(next) {
                frontier.push(next);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The symbolic fixpoint's reached set equals explicit-state BFS.
    #[test]
    fn symbolic_equals_explicit(n in arb_netlist(2, 4, 12)) {
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let mut model = SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let zero = model.manager_ref().zero();
        let result = forward_reach(&mut model, zero, &ReachOptions::default()).unwrap();
        prop_assert_eq!(result.verdict, ReachVerdict::FixpointProved);
        let explicit = explicit_reachable(&n);
        // Compare per concrete state.
        let regs = n.registers().to_vec();
        for bits in 0..1u32 << regs.len() {
            let cube: Cube = regs
                .iter()
                .enumerate()
                .map(|(k, &r)| (r, bits & (1 << k) != 0))
                .collect();
            let cb = model.cube_to_bdd(&cube).unwrap();
            let inter = model.manager().and(cb, result.reached).unwrap();
            let symbolic_in = inter != model.manager_ref().zero();
            prop_assert_eq!(symbolic_in, explicit.contains(&bits), "state {:04b}", bits);
        }
    }

    /// Target-hit depth from the symbolic engine matches explicit BFS depth.
    #[test]
    fn hit_depth_matches_bfs(n in arb_netlist(2, 3, 10), pick in any::<u32>()) {
        let explicit = explicit_reachable(&n);
        // Pick a reachable state as target.
        let all: Vec<u32> = {
            let mut v: Vec<u32> = explicit.iter().copied().collect();
            v.sort_unstable();
            v
        };
        let target_bits = all[pick as usize % all.len()];
        let regs = n.registers().to_vec();
        let cube: Cube = regs
            .iter()
            .enumerate()
            .map(|(k, &r)| (r, target_bits & (1 << k) != 0))
            .collect();

        // Explicit BFS depth.
        let inputs = n.inputs().to_vec();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        let encode = |sim: &Simulator| -> u32 {
            regs.iter().enumerate().fold(0u32, |acc, (k, &r)| {
                acc | (u32::from(sim.value(r).to_bool().unwrap()) << k)
            })
        };
        let start = encode(&sim);
        let mut depth_of = std::collections::HashMap::new();
        depth_of.insert(start, 0usize);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(s) = queue.pop_front() {
            let d = depth_of[&s];
            for ibits in 0..1u32 << inputs.len() {
                for (k, &r) in regs.iter().enumerate() {
                    sim.set(r, rfn_sim::Tv::from(s & (1 << k) != 0));
                }
                let icube: Cube = inputs
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| (i, ibits & (1 << k) != 0))
                    .collect();
                sim.step(&icube);
                let nxt = encode(&sim);
                depth_of.entry(nxt).or_insert_with(|| {
                    queue.push_back(nxt);
                    d + 1
                });
            }
        }
        let expected_depth = depth_of[&target_bits];

        let view = Abstraction::from_registers(regs.clone()).view(&n, []).unwrap();
        let mut model = SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let tb = model.cube_to_bdd(&cube).unwrap();
        let result = forward_reach(&mut model, tb, &ReachOptions::default()).unwrap();
        prop_assert_eq!(result.verdict, ReachVerdict::TargetHit { step: expected_depth });
    }

    /// Clustered and linear relational products — with frontier minimization
    /// on and off — must produce identical reached sets and verdicts on
    /// random designs. Exercises the full cross-product of the new knobs.
    #[test]
    fn clustered_and_linear_reach_agree(n in arb_netlist(2, 4, 12)) {
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let spec = ModelSpec::from_view(&view);
        let configs = [
            (0usize, false),       // seed behavior: linear, no minimization
            (0, true),             // linear + frontier minimization
            (usize::MAX, false),   // one monolithic cluster
            (2500, true),          // defaults
        ];
        let mut baseline: Option<(ReachVerdict, Vec<f64>)> = None;
        for (limit, simplify) in configs {
            let mut model = SymbolicModel::with_options(
                &n,
                spec.clone(),
                rfn_bdd::BddManager::new(),
                ModelOptions {
                    cluster_limit: limit,
                    ..ModelOptions::default()
                },
            )
            .unwrap();
            let zero = model.manager_ref().zero();
            let opts = ReachOptions::default()
                .with_cluster_limit(limit)
                .with_frontier_simplify(simplify);
            let result = forward_reach(&mut model, zero, &opts).unwrap();
            let nv = model.manager_ref().num_vars();
            let mut counts = vec![model.manager().sat_count(result.reached, nv)];
            for &ring in &result.rings {
                counts.push(model.manager().sat_count(ring, nv));
            }
            match &baseline {
                None => baseline = Some((result.verdict, counts)),
                Some((v, c)) => {
                    prop_assert_eq!(&result.verdict, v, "limit={} simplify={}", limit, simplify);
                    prop_assert_eq!(&counts, c, "limit={} simplify={}", limit, simplify);
                }
            }
        }
    }

    /// The FORCE static pre-order is a pure performance knob: on random
    /// designs the seed order and the FORCE order must reach the identical
    /// verdict (including the hit step) and the identical reached-set and
    /// per-ring cardinalities. Node counts may differ — state sets may not.
    #[test]
    fn seed_and_force_orders_agree(n in arb_netlist(2, 4, 12), pick in any::<u32>()) {
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let spec = ModelSpec::from_view(&view);
        let regs = n.registers().to_vec();
        let target_sig = regs[pick as usize % regs.len()];
        let mut baseline: Option<(ReachVerdict, Vec<f64>)> = None;
        for order in [rfn_mc::StaticOrder::Seed, rfn_mc::StaticOrder::Force] {
            let mut model = SymbolicModel::with_options(
                &n,
                spec.clone(),
                rfn_bdd::BddManager::new(),
                ModelOptions {
                    static_order: order,
                    ..ModelOptions::default()
                },
            )
            .unwrap();
            let target = model.signal_bdd(target_sig).unwrap();
            let opts = ReachOptions::default().with_static_order(order);
            let result = forward_reach(&mut model, target, &opts).unwrap();
            let nv = model.manager_ref().num_vars();
            let mut counts = vec![model.manager().sat_count(result.reached, nv)];
            for &ring in &result.rings {
                counts.push(model.manager().sat_count(ring, nv));
            }
            match &baseline {
                None => baseline = Some((result.verdict, counts)),
                Some((v, c)) => {
                    prop_assert_eq!(&result.verdict, v, "order={:?}", order);
                    prop_assert_eq!(&counts, c, "order={:?}", order);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Cancelling the shared budget mid-fixpoint must leave the manager
    /// consistent: the protect log unwinds completely, garbage collection
    /// still works, and the *same* model re-runs the fixpoint to the correct
    /// verdict once the budget is lifted.
    #[test]
    fn cancellation_leaves_manager_consistent(n in arb_netlist(2, 4, 12)) {
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let mut model = SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let zero = model.manager_ref().zero();
        let protected_before = model.manager_ref().num_protected();

        let budget = rfn_govern::Budget::unlimited();
        budget.cancel();
        let cancelled = ReachOptions::default().with_budget(budget);
        let result = forward_reach(&mut model, zero, &cancelled).unwrap();
        prop_assert_eq!(result.verdict, ReachVerdict::Aborted);
        prop_assert_eq!(result.abort, Some(rfn_mc::AbortReason::Cancelled));
        // Every protect the aborted run took was released again.
        prop_assert_eq!(model.manager_ref().num_protected(), protected_before);

        // The manager survives a collection (keeping the model's roots, as
        // any later operation would) and a fresh ungoverned fixpoint on the
        // same model succeeds.
        model.manager().clear_budget();
        let roots = model.persistent_roots();
        model.manager().gc(&roots);
        let rerun = forward_reach(&mut model, zero, &ReachOptions::default()).unwrap();
        prop_assert_eq!(rerun.verdict, ReachVerdict::FixpointProved);
    }
}
