//! Error type for the model-checking engine.

use std::fmt;

use rfn_bdd::{BddError, StoreError};
use rfn_netlist::NetlistError;

/// Error produced by symbolic model-checking operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum McError {
    /// The BDD package reported a failure (typically the node limit).
    Bdd(BddError),
    /// The netlist or model specification is malformed.
    Netlist(NetlistError),
    /// The model specification references a signal it does not define.
    UnboundSignal(rfn_netlist::SignalId),
    /// The persistent order/BDD store rejected a warm-start (corrupt file,
    /// wrong schema, mismatched design hash or key, unresolvable label).
    Store(StoreError),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Bdd(e) => write!(f, "bdd failure: {e}"),
            McError::Netlist(e) => write!(f, "netlist failure: {e}"),
            McError::UnboundSignal(s) => {
                write!(f, "signal {s} is not defined by the model specification")
            }
            McError::Store(e) => write!(f, "order store failure: {e}"),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Bdd(e) => Some(e),
            McError::Netlist(e) => Some(e),
            McError::UnboundSignal(_) => None,
            McError::Store(e) => Some(e),
        }
    }
}

impl From<StoreError> for McError {
    fn from(e: StoreError) -> Self {
        McError::Store(e)
    }
}

impl From<BddError> for McError {
    fn from(e: BddError) -> Self {
        McError::Bdd(e)
    }
}

impl From<NetlistError> for McError {
    fn from(e: NetlistError) -> Self {
        McError::Netlist(e)
    }
}
