//! Plain symbolic model checking with cone-of-influence reduction: the
//! baseline RFN is compared against in Table 1 of the paper.

use std::time::{Duration, Instant};

use rfn_bdd::BddStats;
use rfn_govern::Budget;
use rfn_netlist::{Abstraction, Coi, Netlist, Property};
use rfn_trace::TraceCtx;

use crate::{
    forward_reach, CommonOptions, McError, ModelSpec, ReachOptions, ReachVerdict, SymbolicModel,
};

/// Default live-node ceiling of the plain engine; exceeding it is the
/// baseline's failure mode in Table 1.
const DEFAULT_PLAIN_NODE_CEILING: usize = 2_000_000;

/// Configuration for the plain symbolic model checker.
///
/// The legacy `node_limit` / `time_limit` fields are now views over the
/// shared [`Budget`]: use [`PlainOptions::with_node_limit`] /
/// [`PlainOptions::with_time_limit`] (or install a whole budget with
/// [`PlainOptions::with_budget`]) and read them back through
/// [`PlainOptions::node_limit`] / [`PlainOptions::time_limit`].
#[derive(Clone, Debug)]
pub struct PlainOptions {
    /// The budget and trace context shared with every other engine (see
    /// [`CommonOptions`]). The budget's node ceiling is the baseline's
    /// failure mode; the trace context wraps each `verify_plain` call in a
    /// `plain_mc` span and is forwarded to the inner reachability fixpoint.
    pub common: CommonOptions,
    /// Reachability options (reordering etc.). Its own budget and trace are
    /// overwritten with [`PlainOptions::common`]'s for the run.
    pub reach: ReachOptions,
}

impl Default for PlainOptions {
    fn default() -> Self {
        PlainOptions {
            common: CommonOptions::default()
                .with_budget(Budget::unlimited().with_node_ceiling(DEFAULT_PLAIN_NODE_CEILING)),
            reach: ReachOptions::default(),
        }
    }
}

impl PlainOptions {
    /// Sets the BDD node ceiling (a view over the shared budget).
    #[must_use]
    pub fn with_node_limit(mut self, nodes: usize) -> Self {
        self.common.budget = self.common.budget.clone().with_node_ceiling(nodes);
        self
    }

    /// Sets the wall-clock limit (a view over the shared budget; the
    /// deadline is re-anchored at this call).
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.common = self.common.with_time_limit(limit);
        self
    }

    /// Installs a shared resource budget (replacing any previous one,
    /// including the default node ceiling).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.common = self.common.with_budget(budget);
        self
    }

    /// Replaces the inner reachability options.
    #[must_use]
    pub fn with_reach(mut self, reach: ReachOptions) -> Self {
        self.reach = reach;
        self
    }

    /// Attaches a structured-event context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.common = self.common.with_trace(trace);
        self
    }

    /// The BDD node ceiling (the legacy `node_limit` field as a view).
    pub fn node_limit(&self) -> usize {
        self.common.budget.node_ceiling()
    }

    /// The wall-clock limit, if any (the legacy `time_limit` field as a
    /// view).
    pub fn time_limit(&self) -> Option<Duration> {
        self.common.time_limit()
    }
}

/// How the plain model checker ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlainVerdict {
    /// The property holds (fixpoint without hitting targets).
    Proved,
    /// The property fails; a target state was reached at this depth.
    Falsified {
        /// BFS depth of the first target state.
        depth: usize,
    },
    /// The node, time or step limit was exceeded: the design is beyond the
    /// plain engine's capacity.
    OutOfCapacity,
}

/// Report of a plain model-checking run (one Table 1 baseline row).
#[derive(Clone, Debug)]
pub struct PlainReport {
    /// Final verdict.
    pub verdict: PlainVerdict,
    /// Why the run aborted when the verdict is
    /// [`PlainVerdict::OutOfCapacity`] (`None` otherwise).
    pub abort: Option<crate::AbortReason>,
    /// Registers in the property's cone of influence.
    pub coi_registers: usize,
    /// Gates in the property's cone of influence.
    pub coi_gates: usize,
    /// Image steps completed before the verdict.
    pub steps: usize,
    /// Peak live BDD nodes.
    pub peak_nodes: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// BDD kernel performance counters of the run.
    pub stats: BddStats,
}

/// Runs BDD-based symbolic model checking on the *whole cone of influence*
/// of the property — no abstraction. On large designs this is expected to
/// exhaust its node limit; that expected failure is what Table 1's
/// comparison demonstrates.
///
/// # Errors
///
/// Returns internal errors only; capacity exhaustion is reported in the
/// verdict.
pub fn verify_plain(
    netlist: &Netlist,
    property: &Property,
    options: &PlainOptions,
) -> Result<PlainReport, McError> {
    let mut span = options.common.trace.span_with(
        "plain_mc",
        vec![("property".to_owned(), property.name.as_str().into())],
    );
    let result = verify_plain_inner(netlist, property, options);
    if let Ok(report) = &result {
        let verdict = match report.verdict {
            PlainVerdict::Proved => "proved",
            PlainVerdict::Falsified { .. } => "falsified",
            PlainVerdict::OutOfCapacity => "out_of_capacity",
        };
        span.record("verdict", verdict);
        if let PlainVerdict::Falsified { depth } = report.verdict {
            span.record("depth", depth);
        }
        if let Some(reason) = report.abort {
            span.record("abort_reason", reason.as_str());
        }
        span.record("coi_registers", report.coi_registers);
        span.record("coi_gates", report.coi_gates);
        span.record("steps", report.steps);
        span.record("peak_nodes", report.peak_nodes);
    }
    result
}

fn verify_plain_inner(
    netlist: &Netlist,
    property: &Property,
    options: &PlainOptions,
) -> Result<PlainReport, McError> {
    let start = Instant::now();
    let coi = Coi::of(netlist, [property.signal]);
    let abstraction = Abstraction::from_registers(coi.registers().iter().copied());
    let view = abstraction.view(netlist, [property.signal])?;
    let mut mgr = rfn_bdd::BddManager::new();
    // The budget's node ceiling is the baseline's capacity bound; install
    // the budget itself so the model build is governed too.
    mgr.set_budget(options.common.budget.clone());
    let mut reach_opts = options.reach.clone();
    reach_opts.common = options.common.clone();

    let model_opts = crate::ModelOptions {
        cluster_limit: reach_opts.cluster_limit,
        static_order: reach_opts.static_order,
    };
    let build = SymbolicModel::with_options(netlist, ModelSpec::from_view(&view), mgr, model_opts);
    let mut model = match build {
        Ok(m) => m,
        Err(McError::Bdd(e)) => {
            // Could not even build the transition relation.
            return Ok(PlainReport {
                verdict: PlainVerdict::OutOfCapacity,
                abort: Some(crate::AbortReason::of(&e)),
                coi_registers: coi.num_registers(),
                coi_gates: coi.num_gates(),
                steps: 0,
                peak_nodes: options.node_limit(),
                elapsed: start.elapsed(),
                stats: BddStats::default(),
            });
        }
        Err(e) => return Err(e),
    };
    let target = (|| -> Result<rfn_bdd::Bdd, McError> {
        let sig = model.signal_bdd(property.signal)?;
        if property.value {
            Ok(sig)
        } else {
            Ok(model.manager().not(sig)?)
        }
    })();
    let target = match target {
        Ok(t) => t,
        Err(McError::Bdd(e)) => {
            return Ok(PlainReport {
                verdict: PlainVerdict::OutOfCapacity,
                abort: Some(crate::AbortReason::of(&e)),
                coi_registers: coi.num_registers(),
                coi_gates: coi.num_gates(),
                steps: 0,
                peak_nodes: options.node_limit(),
                elapsed: start.elapsed(),
                stats: model.manager_ref().stats(),
            });
        }
        Err(e) => return Err(e),
    };
    let result = forward_reach(&mut model, target, &reach_opts)?;
    let verdict = match result.verdict {
        ReachVerdict::FixpointProved => PlainVerdict::Proved,
        ReachVerdict::TargetHit { step } => PlainVerdict::Falsified { depth: step },
        ReachVerdict::Aborted => PlainVerdict::OutOfCapacity,
    };
    Ok(PlainReport {
        verdict,
        abort: result.abort,
        coi_registers: coi.num_registers(),
        coi_gates: coi.num_gates(),
        steps: result.steps,
        peak_nodes: result.peak_nodes,
        elapsed: start.elapsed(),
        stats: result.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::GateOp;

    /// Saturating 2-bit counter; watchdog fires on (never-reached) overflow.
    fn safe_design() -> (Netlist, Property) {
        let mut n = Netlist::new("safe");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let full = n.add_gate("full", GateOp::And, &[b0, b1]);
        let nfull = n.add_gate("nfull", GateOp::Not, &[full]);
        let t0 = n.add_gate("t0", GateOp::Xor, &[b0, nfull]);
        let carry = n.add_gate("carry", GateOp::And, &[b0, nfull]);
        let t1 = n.add_gate("t1", GateOp::Xor, &[b1, carry]);
        n.set_register_next(b0, t0).unwrap();
        n.set_register_next(b1, t1).unwrap();
        // Watchdog: fires if the counter wraps to 00 after having been 11 —
        // never happens because it saturates... it holds at 11.
        let w = n.add_register("watchdog", Some(false));
        let nb0 = n.add_gate("nb0", GateOp::Not, &[b0]);
        let nb1 = n.add_gate("nb1", GateOp::Not, &[b1]);
        let wrapped = n.add_gate("wrapped", GateOp::And, &[full, nb0, nb1]);
        let hmm = n.add_gate("worwrap", GateOp::Or, &[w, wrapped]);
        n.set_register_next(w, hmm).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "no_wrap", w);
        (n, p)
    }

    /// Counter without saturation: the watchdog eventually fires.
    fn unsafe_design() -> (Netlist, Property) {
        let mut n = Netlist::new("unsafe");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let t0 = n.add_gate("t0", GateOp::Not, &[b0]);
        let t1 = n.add_gate("t1", GateOp::Xor, &[b0, b1]);
        n.set_register_next(b0, t0).unwrap();
        n.set_register_next(b1, t1).unwrap();
        let w = n.add_register("watchdog", Some(false));
        let full = n.add_gate("full", GateOp::And, &[b0, b1]);
        let worfull = n.add_gate("worfull", GateOp::Or, &[w, full]);
        n.set_register_next(w, worfull).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "no_full", w);
        (n, p)
    }

    #[test]
    fn proves_safe_design() {
        let (n, p) = safe_design();
        let r = verify_plain(&n, &p, &PlainOptions::default()).unwrap();
        assert_eq!(r.verdict, PlainVerdict::Proved);
        assert_eq!(r.coi_registers, 3);
        assert!(r.coi_gates > 0);
    }

    #[test]
    fn falsifies_unsafe_design() {
        let (n, p) = unsafe_design();
        let r = verify_plain(&n, &p, &PlainOptions::default()).unwrap();
        // Counter reaches 3 after 3 steps; watchdog latches 1 one step later.
        assert_eq!(r.verdict, PlainVerdict::Falsified { depth: 4 });
    }

    #[test]
    fn node_limit_reports_out_of_capacity() {
        let (n, p) = safe_design();
        let opts = PlainOptions::default().with_node_limit(4);
        let r = verify_plain(&n, &p, &opts).unwrap();
        assert_eq!(r.verdict, PlainVerdict::OutOfCapacity);
    }

    #[test]
    fn coi_excludes_unrelated_logic() {
        let (mut n, _) = safe_design();
        // Unrelated register block.
        let i = n.add_input("i");
        let junk = n.add_register("junk", Some(false));
        n.set_register_next(junk, i).unwrap();
        n.validate().unwrap();
        let w = n.find("watchdog").unwrap();
        let p = Property::never(&n, "no_wrap", w);
        let r = verify_plain(&n, &p, &PlainOptions::default()).unwrap();
        assert_eq!(r.coi_registers, 3); // junk not in the COI
        assert_eq!(r.verdict, PlainVerdict::Proved);
    }
}
