//! Options shared by every engine configuration.
//!
//! Each engine option struct (`ReachOptions`, `PlainOptions` here;
//! `RfnOptions`, `CoverageOptions` in `rfn-core`) embeds a
//! [`CommonOptions`] and exposes delegating builders, so a knob that every
//! engine needs — the governing [`Budget`], the structured-event
//! [`TraceCtx`] — is added in exactly one place.

use std::time::Duration;

use rfn_govern::Budget;
use rfn_trace::TraceCtx;

/// The configuration every engine shares: a resource [`Budget`] and a
/// structured-event [`TraceCtx`].
///
/// Engine option structs embed this as a `common` field; their
/// `with_budget` / `with_time_limit` / `with_trace` builders delegate here.
#[derive(Clone, Debug)]
pub struct CommonOptions {
    /// Shared resource budget: wall-clock deadline, per-phase quotas,
    /// cancellation token, node and memory ceilings.
    pub budget: Budget,
    /// Structured-event context; disabled by default.
    pub trace: TraceCtx,
}

impl Default for CommonOptions {
    fn default() -> Self {
        CommonOptions {
            budget: Budget::unlimited(),
            trace: TraceCtx::disabled(),
        }
    }
}

impl CommonOptions {
    /// Installs a shared resource budget (replacing any previous one).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the wall-clock limit (a view over [`CommonOptions::budget`];
    /// the deadline is re-anchored at this call).
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.budget = self.budget.restarted().with_wall_clock(limit);
        self
    }

    /// The wall-clock limit of the governing budget, if any.
    pub fn time_limit(&self) -> Option<Duration> {
        self.budget.wall_clock()
    }

    /// Attaches a structured-event context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }
}
