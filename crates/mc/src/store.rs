//! Model-level warm-start store: saving and re-applying variable orders
//! and reached-set rings across runs.
//!
//! The kernel-level [`BddStore`] speaks *labels*; this module binds those
//! labels to a [`SymbolicModel`]'s signals. A label is `cur:<ref>`,
//! `next:<ref>` or `in:<ref>` where `<ref>` is the signal's netlist name
//! (or `#<index>` for unnamed signals), so a store written by one process
//! resolves in another as long as the design is structurally identical —
//! which [`BddStore::validate`] checks against
//! [`Netlist::structural_hash`] before anything is trusted.
//!
//! A store never silently degrades: every failure mode (corrupt file,
//! schema or design mismatch, unresolvable label, mis-ordered node) is a
//! structured [`StoreError`] surfaced as [`McError::Store`]. Only a
//! genuinely missing file reads as a cold start.

use std::path::{Path, PathBuf};

use rfn_bdd::{Bdd, BddStore, StoreBuilder, StoreError, VarId};
use rfn_netlist::{Netlist, SignalId};

use crate::model::VarKind;
use crate::{McError, SymbolicModel};

/// File extension of on-disk stores.
const STORE_EXT: &str = "store";

/// The on-disk location of the store for `(design_hash, key)` under
/// `dir`: `<dir>/<hash as 16 hex digits>-<sanitized key>.store`. The key
/// (typically the property name) is sanitized to filename-safe
/// characters; the hash keeps distinct designs from colliding even when
/// keys sanitize identically.
pub fn store_path(dir: &Path, design_hash: u64, key: &str) -> PathBuf {
    let safe: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    dir.join(format!("{design_hash:016x}-{safe}.{STORE_EXT}"))
}

/// A stable reference for a signal: its name, or `#<index>` when unnamed.
fn signal_ref(netlist: &Netlist, s: SignalId) -> String {
    let name = netlist.signal_name(s);
    if name.is_empty() {
        format!("#{}", s.index())
    } else {
        name.to_owned()
    }
}

fn resolve_signal(netlist: &Netlist, r: &str) -> Option<SignalId> {
    if let Some(idx) = r.strip_prefix('#') {
        return idx
            .parse::<usize>()
            .ok()
            .and_then(|i| netlist.signals().nth(i));
    }
    netlist.find(r)
}

fn var_label(model: &SymbolicModel<'_>, v: VarId) -> String {
    let (s, kind) = model.var_signal(v);
    signal_label(model.netlist(), s, kind)
}

fn resolve_label(model: &SymbolicModel<'_>, label: &str) -> Result<VarId, StoreError> {
    let missing = || StoreError::Rebuild(format!("label `{label}` does not resolve in this model"));
    let (s, kind) = label_signal(model.netlist(), label).ok_or_else(missing)?;
    match kind {
        VarKind::Current => model.current_var(s),
        VarKind::Next => model.next_var(s),
        VarKind::Input => model.try_input_var(s),
    }
    .ok_or_else(missing)
}

/// Resolves a store label back to its signal and role within `netlist`,
/// without needing a model. Callers applying a saved order across
/// *differing* abstractions (the refinement loop: the saved model may hold
/// registers the current one lacks, and vice versa) resolve labels this
/// way and feed the survivors to
/// [`BddManager::set_order`](rfn_bdd::BddManager::set_order) themselves.
pub fn label_signal(netlist: &Netlist, label: &str) -> Option<(SignalId, VarKind)> {
    let (kind, r) = label.split_once(':')?;
    let kind = match kind {
        "cur" => VarKind::Current,
        "next" => VarKind::Next,
        "in" => VarKind::Input,
        _ => return None,
    };
    Some((resolve_signal(netlist, r)?, kind))
}

/// Renders a signal/role pair as a store label (the inverse of
/// [`label_signal`]).
pub fn signal_label(netlist: &Netlist, s: SignalId, kind: VarKind) -> String {
    let r = signal_ref(netlist, s);
    match kind {
        VarKind::Current => format!("cur:{r}"),
        VarKind::Next => format!("next:{r}"),
        VarKind::Input => format!("in:{r}"),
    }
}

/// The model's current variable order as store labels, top level first.
pub fn order_labels(model: &SymbolicModel<'_>) -> Vec<String> {
    let mgr = model.manager_ref();
    (0..mgr.num_vars())
        .map(|l| var_label(model, mgr.var_at_level(l)))
        .collect()
}

/// Snapshots a model's current variable order — and optionally its
/// reached-set rings — into a store document keyed by the design's
/// structural hash and `key`.
///
/// # Errors
///
/// Fails only if the model's variable count changed mid-snapshot (it
/// cannot for callers holding `&SymbolicModel`).
pub fn snapshot_model(
    model: &SymbolicModel<'_>,
    key: &str,
    rings: &[Bdd],
) -> Result<BddStore, McError> {
    let mgr = model.manager_ref();
    let labels = order_labels(model);
    let hash = model.netlist().structural_hash();
    let mut builder = StoreBuilder::new(mgr, hash, key, labels).map_err(McError::Store)?;
    for (i, &ring) in rings.iter().enumerate() {
        builder.add_root(format!("ring{i}"), ring);
    }
    Ok(builder.finish())
}

/// Applies a loaded store to a freshly built model: validates the design
/// hash and key, resolves every saved label, installs the saved variable
/// order, and rebuilds the serialized rings (empty for an order-only
/// store). Rings come back in BFS order `ring0, ring1, …`.
///
/// # Errors
///
/// [`McError::Store`] if the store was saved for a different design or
/// key, a label does not resolve, the saved order does not cover this
/// model's variables exactly, or the node list is structurally invalid.
pub fn apply_store(
    model: &mut SymbolicModel<'_>,
    store: &BddStore,
    key: &str,
) -> Result<Vec<Bdd>, McError> {
    let hash = model.netlist().structural_hash();
    apply_store_as(model, store, key, hash)
}

/// Like [`apply_store`], but validates against an explicit design hash
/// instead of the model netlist's structural hash. Used when the caller
/// keys stores by a canonical design identity (e.g. a file content hash
/// from `DesignSource`) rather than the in-memory structure.
///
/// # Errors
///
/// Same failure modes as [`apply_store`].
pub fn apply_store_as(
    model: &mut SymbolicModel<'_>,
    store: &BddStore,
    key: &str,
    design_hash: u64,
) -> Result<Vec<Bdd>, McError> {
    store.validate(design_hash, key)?;
    let num_vars = model.manager_ref().num_vars();
    if store.order.len() != num_vars {
        return Err(McError::Store(StoreError::Rebuild(format!(
            "store orders {} variables but the model has {num_vars}",
            store.order.len()
        ))));
    }
    let vars: Vec<VarId> = store
        .order
        .iter()
        .map(|label| resolve_label(model, label))
        .collect::<Result<_, _>>()?;
    model.manager().set_order(&vars);
    let mut named = store.rebuild(model.manager(), &vars)?;
    named.sort_by_key(|(name, _)| {
        name.strip_prefix("ring")
            .and_then(|i| i.parse::<usize>().ok())
            .unwrap_or(usize::MAX)
    });
    for (i, (name, _)) in named.iter().enumerate() {
        if *name != format!("ring{i}") {
            return Err(McError::Store(StoreError::Rebuild(format!(
                "expected contiguous ring roots, found `{name}` at position {i}"
            ))));
        }
    }
    Ok(named.into_iter().map(|(_, f)| f).collect())
}

/// Loads the store for `(design_hash, key)` from `dir`. A missing file is
/// a legitimate cold start (`Ok(None)`); anything else that stops the
/// warm-start — unreadable file, corrupt text, schema mismatch — is an
/// error.
pub fn load_store(dir: &Path, design_hash: u64, key: &str) -> Result<Option<BddStore>, McError> {
    BddStore::load(&store_path(dir, design_hash, key)).map_err(McError::Store)
}

/// Atomically writes `store` under `dir` (creating it if needed),
/// returning the path written.
pub fn save_store(dir: &Path, store: &BddStore) -> Result<PathBuf, McError> {
    let path = store_path(dir, store.design_hash, &store.key);
    store.write_atomic(&path).map_err(McError::Store)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{forward_reach, forward_reach_warm, ModelSpec, ReachOptions, SymbolicModel};
    use rfn_netlist::{Abstraction, GateOp, Property};

    /// 3-bit counter with a watchdog register that never fires.
    fn design() -> (Netlist, Property) {
        let mut n = Netlist::new("store-test");
        let b: Vec<SignalId> = (0..3)
            .map(|k| n.add_register(&format!("b{k}"), Some(false)))
            .collect();
        let t0 = n.add_gate("t0", GateOp::Not, &[b[0]]);
        let c0 = n.add_gate("c0", GateOp::And, &[b[0], b[1]]);
        let t1 = n.add_gate("t1", GateOp::Xor, &[b[0], b[1]]);
        let t2 = n.add_gate("t2", GateOp::Xor, &[b[2], c0]);
        n.set_register_next(b[0], t0).unwrap();
        n.set_register_next(b[1], t1).unwrap();
        n.set_register_next(b[2], t2).unwrap();
        let w = n.add_register("w", Some(false));
        n.set_register_next(w, w).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "no_w", w);
        (n, p)
    }

    fn model<'a>(n: &'a Netlist, p: &Property) -> (SymbolicModel<'a>, Bdd) {
        let coi = rfn_netlist::Coi::of(n, [p.signal]);
        let view = Abstraction::from_registers(coi.registers().iter().copied())
            .view(n, [p.signal])
            .unwrap();
        let mut m = SymbolicModel::new(n, ModelSpec::from_view(&view)).unwrap();
        let t = m.signal_bdd(p.signal).unwrap();
        (m, t)
    }

    #[test]
    fn order_and_rings_roundtrip_through_disk() {
        let (n, p) = design();
        let (mut m, t) = model(&n, &p);
        let opts = ReachOptions::default().with_reorder(false);
        let cold = forward_reach(&mut m, t, &opts).unwrap();
        let store = snapshot_model(&m, &p.name, &cold.rings).unwrap();
        let dir = std::env::temp_dir().join(format!("rfn-mc-store-{}", std::process::id()));
        let path = save_store(&dir, &store).unwrap();
        assert!(path.exists());

        let loaded = load_store(&dir, n.structural_hash(), &p.name)
            .unwrap()
            .expect("store exists");
        let (mut m2, t2) = model(&n, &p);
        let rings = apply_store(&mut m2, &loaded, &p.name).unwrap();
        assert_eq!(rings.len(), cold.rings.len());
        let warm = forward_reach_warm(&mut m2, t2, &opts, &rings).unwrap();
        assert_eq!(warm.verdict, cold.verdict);
        assert_eq!(warm.steps, cold.steps);
        assert_eq!(
            m2.manager_ref().size(warm.reached),
            m.manager_ref().size(cold.reached)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_store_is_a_cold_start_but_mismatches_are_errors() {
        let (n, p) = design();
        let dir = std::env::temp_dir().join(format!("rfn-mc-store-miss-{}", std::process::id()));
        assert!(load_store(&dir, n.structural_hash(), &p.name)
            .unwrap()
            .is_none());

        // Save under the real hash, then try to apply it to a structurally
        // different design: validation must reject it.
        let (m, _) = model(&n, &p);
        let store = snapshot_model(&m, &p.name, &[]).unwrap();
        save_store(&dir, &store).unwrap();
        let mut n2 = Netlist::new("store-test");
        let b: Vec<SignalId> = (0..3)
            .map(|k| n2.add_register(&format!("b{k}"), Some(false)))
            .collect();
        let g = n2.add_gate("t0", GateOp::And, &[b[0], b[1]]);
        n2.set_register_next(b[0], g).unwrap();
        n2.set_register_next(b[1], b[0]).unwrap();
        n2.set_register_next(b[2], b[1]).unwrap();
        let w = n2.add_register("w", Some(false));
        n2.set_register_next(w, w).unwrap();
        n2.validate().unwrap();
        assert_ne!(n.structural_hash(), n2.structural_hash());
        let p2 = Property::never(&n2, "no_w", w);
        let loaded = load_store(&dir, n.structural_hash(), &p.name)
            .unwrap()
            .expect("store exists");
        let (mut m2, _) = model(&n2, &p2);
        let err = apply_store(&mut m2, &loaded, &p2.name).unwrap_err();
        assert!(
            matches!(err, McError::Store(StoreError::DesignMismatch { .. })),
            "got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_file_is_an_error_not_a_cold_start() {
        let (n, p) = design();
        let (m, _) = model(&n, &p);
        let store = snapshot_model(&m, &p.name, &[]).unwrap();
        let dir = std::env::temp_dir().join(format!("rfn-mc-store-corrupt-{}", std::process::id()));
        let path = save_store(&dir, &store).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = load_store(&dir, n.structural_hash(), &p.name).unwrap_err();
        assert!(matches!(err, McError::Store(_)), "got {err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unresolvable_label_is_rejected() {
        let (n, p) = design();
        let (mut m, _) = model(&n, &p);
        let num_vars = m.manager_ref().num_vars();
        let order: Vec<String> = (0..num_vars).map(|i| format!("cur:ghost{i}")).collect();
        let store = BddStore::order_only(n.structural_hash(), p.name.clone(), order);
        let err = apply_store(&mut m, &store, &p.name).unwrap_err();
        assert!(
            matches!(err, McError::Store(StoreError::Rebuild(_))),
            "got {err:?}"
        );
    }
}
