//! Multi-target forward reachability: one fixpoint discharging a whole
//! group of properties.
//!
//! [`forward_reach_multi`] generalizes [`forward_reach`](crate::forward_reach)
//! from one target set to many. The onion rings of a BFS fixpoint do not
//! depend on the targets — targets only decide *when to stop* — so a single
//! ring sequence can be tested against every still-pending target: targets
//! that intersect a ring retire with that ring's BFS depth (identical to the
//! depth a dedicated single-target run would report), and one fixpoint proves
//! every survivor at once. The group pays for one model build, one cluster
//! schedule, one variable order and one reached set instead of one per
//! property.

use std::time::Instant;

use rfn_bdd::{Bdd, BddError, BddStats, DvoPolicy};
use rfn_govern::GovPhase;

use crate::reach::{or_all, record_budget, simplify_frontier};
use crate::{AbortReason, McError, ReachOptions, ReachVerdict, SymbolicModel};

/// Per-target outcome of a [`forward_reach_multi`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetVerdict {
    /// The fixpoint completed without touching this target.
    Proved,
    /// The target intersects ring `step` (its BFS distance from the initial
    /// states — identical to the depth of a dedicated single-target run).
    Hit {
        /// BFS depth of the first intersecting ring.
        step: usize,
    },
    /// The run aborted while this target was still pending; see
    /// [`MultiReachResult::abort`].
    Aborted,
}

impl TargetVerdict {
    /// Projects the per-target outcome onto the single-target vocabulary.
    pub fn as_reach_verdict(self) -> ReachVerdict {
        match self {
            TargetVerdict::Proved => ReachVerdict::FixpointProved,
            TargetVerdict::Hit { step } => ReachVerdict::TargetHit { step },
            TargetVerdict::Aborted => ReachVerdict::Aborted,
        }
    }
}

/// Result of [`forward_reach_multi`]: one entry per input target, plus the
/// shared fixpoint artifacts.
#[derive(Clone, Debug)]
pub struct MultiReachResult {
    /// Outcomes, indexed like the input target slice.
    pub verdicts: Vec<TargetVerdict>,
    /// Why the run aborted; `None` unless some verdict is
    /// [`TargetVerdict::Aborted`].
    pub abort: Option<AbortReason>,
    /// Onion rings shared by every target (`rings[0]` is the initial set).
    /// The sequence stops at the last ring the run needed: the ring that
    /// retired the final pending target, or the full fixpoint.
    pub rings: Vec<Bdd>,
    /// Union of all rings.
    pub reached: Bdd,
    /// Number of image computations performed.
    pub steps: usize,
    /// Peak live node count observed.
    pub peak_nodes: usize,
    /// Kernel performance counters of the manager at the end of the run.
    pub stats: BddStats,
}

/// Computes one forward fixpoint from the model's initial states, testing
/// every still-pending target against each ring and retiring hits with their
/// BFS depth. Rings are exact distance strata, so per-target depths match
/// dedicated single-target runs exactly.
///
/// The loop exits as soon as every target has been hit; otherwise it runs to
/// the fixpoint (proving the survivors) or a resource abort (marking the
/// still-pending targets [`TargetVerdict::Aborted`] while already-hit targets
/// keep their depths).
///
/// # Errors
///
/// Only internal errors are returned; resource exhaustion is reported via
/// [`TargetVerdict::Aborted`], mirroring [`forward_reach`](crate::forward_reach).
pub fn forward_reach_multi(
    model: &mut SymbolicModel<'_>,
    targets: &[Bdd],
    options: &ReachOptions,
) -> Result<MultiReachResult, McError> {
    forward_reach_multi_warm(model, targets, options, &[])
}

/// [`forward_reach_multi`] warm-started from a previously saved ring
/// sequence (one store entry per *group*; see the [`store`](crate::store)
/// module). Adopted rings are re-checked against every target in BFS order,
/// so hit depths are identical to a cold run's.
///
/// # Errors
///
/// Returns [`McError::Store`] if `saved_rings[0]` is not the model's
/// initial-state set.
pub fn forward_reach_multi_warm(
    model: &mut SymbolicModel<'_>,
    targets: &[Bdd],
    options: &ReachOptions,
    saved_rings: &[Bdd],
) -> Result<MultiReachResult, McError> {
    // Protection discipline mirrors `forward_reach_warm`: every handle held
    // across kernel calls is registered in the protected root set through a
    // log that makes the protection exactly reversible on every exit path.
    let mut span = options.common.trace.span("reach_multi");
    span.record("targets", targets.len());
    model.manager().set_budget(options.common.budget.clone());
    let mut protect_log: Vec<Bdd> = model.persistent_roots();
    protect_log.extend(targets.iter().copied());
    for &b in &protect_log {
        model.manager().protect(b);
    }
    if options.auto_gc {
        model.manager().set_auto_gc(true);
    }
    let mut par = (options.bdd_threads > 1)
        .then(|| crate::ParImage::new(options.bdd_threads, options.common.budget.clone()));
    let result = multi_loop(
        model,
        targets,
        options,
        &mut protect_log,
        &mut par,
        saved_rings,
    );
    model.manager().set_auto_gc(false);
    for &b in &protect_log {
        model.manager().unprotect(b);
    }
    let result = result.map(|mut r| {
        r.stats = model.manager_ref().stats();
        if let Some(p) = &par {
            r.stats.merge(&p.stats());
        }
        r
    });
    if let Ok(r) = &result {
        let hits = r
            .verdicts
            .iter()
            .filter(|v| matches!(v, TargetVerdict::Hit { .. }))
            .count();
        let proved = r
            .verdicts
            .iter()
            .filter(|v| matches!(v, TargetVerdict::Proved))
            .count();
        span.record("hits", hits);
        span.record("proved", proved);
        if let Some(reason) = r.abort {
            span.record("abort_reason", reason.as_str());
        }
        span.record("steps", r.steps);
        span.record("rings", r.rings.len());
        span.record("clusters", model.transition().num_clusters());
        span.record("peak_nodes", r.peak_nodes);
        if r.stats.sift_runs > 0 {
            span.record("sift.runs", r.stats.sift_runs);
            span.record("sift.unprofitable", r.stats.unprofitable_sifts);
            span.record("sift.nodes_shrunk", r.stats.sift_nodes_shrunk);
        }
        if !saved_rings.is_empty() {
            span.record("warm.rings", saved_rings.len());
        }
        record_budget(&mut span, &options.common.budget, r.peak_nodes);
        options
            .common
            .trace
            .counter("bdd.peak_nodes", r.stats.peak_nodes as u64);
    }
    result
}

/// Book-keeping for the still-pending targets of one multi-target run.
struct Pending {
    verdicts: Vec<TargetVerdict>,
    open: Vec<usize>,
}

impl Pending {
    fn new(n: usize) -> Self {
        Pending {
            // Until decided otherwise every target counts as pending-abort;
            // hits and the final fixpoint overwrite this.
            verdicts: vec![TargetVerdict::Aborted; n],
            open: (0..n).collect(),
        }
    }

    /// Tests the ring against every pending target in index order, retiring
    /// hits at `step`. Returns `Err` on the first kernel error.
    fn check_ring(
        &mut self,
        model: &mut SymbolicModel<'_>,
        targets: &[Bdd],
        ring: Bdd,
        step: usize,
    ) -> Result<(), BddError> {
        let zero = model.manager_ref().zero();
        let mut still_open = Vec::with_capacity(self.open.len());
        for &t in &self.open {
            if model.manager().and(ring, targets[t])? != zero {
                self.verdicts[t] = TargetVerdict::Hit { step };
            } else {
                still_open.push(t);
            }
        }
        self.open = still_open;
        Ok(())
    }

    fn all_hit(&self) -> bool {
        // With zero targets there is nothing to hit: run to the fixpoint,
        // mirroring a single-target run on the constant-false target.
        !self.verdicts.is_empty() && self.open.is_empty()
    }

    fn prove_rest(&mut self) {
        for &t in &self.open {
            self.verdicts[t] = TargetVerdict::Proved;
        }
        self.open.clear();
    }
}

fn multi_loop(
    model: &mut SymbolicModel<'_>,
    targets: &[Bdd],
    options: &ReachOptions,
    protect_log: &mut Vec<Bdd>,
    par: &mut Option<crate::ParImage>,
    saved_rings: &[Bdd],
) -> Result<MultiReachResult, McError> {
    let deadline = options.common.budget.deadline_for(GovPhase::Reach);
    let mut dvo = if options.reorder {
        options.dvo.build(options.reorder_threshold)
    } else {
        DvoPolicy::Never.build(usize::MAX)
    };
    let mut pending = Pending::new(targets.len());
    let init = match model.init_states() {
        Ok(b) => b,
        Err(e) => return Ok(aborted(model, pending, vec![], 0, AbortReason::of(&e))),
    };
    if let Some(&first) = saved_rings.first() {
        if first != init {
            return Err(McError::Store(rfn_bdd::StoreError::Rebuild(
                "saved rings do not start at this model's initial states".to_owned(),
            )));
        }
    }
    model.manager().protect(init);
    protect_log.push(init);
    let mut rings = if saved_rings.is_empty() {
        vec![init]
    } else {
        saved_rings.to_vec()
    };
    for &r in &rings[1..] {
        model.manager().protect(r);
        protect_log.push(r);
    }
    let mut reached = init;
    for &r in &rings[1..] {
        reached = match model.manager().or(reached, r) {
            Ok(b) => b,
            Err(e) => return Ok(aborted(model, pending, rings, 0, AbortReason::of(&e))),
        };
    }
    model.manager().protect(reached);
    protect_log.push(reached);
    let mut frontier = *rings.last().expect("at least the initial ring");
    let mut steps = rings.len() - 1;
    let mut peak = model.manager_ref().num_nodes();

    // Cold start: the classic step-0 check against every target. Warm
    // start: every adopted ring is re-checked in BFS order so retirement
    // depths are identical to a cold run's.
    for step in 0..rings.len() {
        if let Err(e) = pending.check_ring(model, targets, rings[step], step) {
            return Ok(aborted(model, pending, rings, steps, AbortReason::of(&e)));
        }
        if pending.all_hit() {
            rings.truncate(step + 1);
            let reached = match or_all(model, &rings) {
                Ok(b) => b,
                Err(e) => return Ok(aborted(model, pending, rings, step, AbortReason::of(&e))),
            };
            return Ok(MultiReachResult {
                verdicts: pending.verdicts,
                abort: None,
                rings,
                reached,
                steps: step,
                peak_nodes: peak,
                stats: BddStats::default(),
            });
        }
    }

    loop {
        if steps >= options.max_steps {
            return Ok(aborted_with(
                model,
                pending,
                rings,
                reached,
                steps,
                peak,
                AbortReason::MaxSteps,
            ));
        }
        if options.common.budget.is_cancelled() {
            return Ok(aborted_with(
                model,
                pending,
                rings,
                reached,
                steps,
                peak,
                AbortReason::Cancelled,
            ));
        }
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Ok(aborted_with(
                    model,
                    pending,
                    rings,
                    reached,
                    steps,
                    peak,
                    AbortReason::TimeLimit,
                ));
            }
        }
        if let Err(e) = options
            .common
            .budget
            .check_memory(model.manager_ref().approx_bytes())
        {
            return Ok(aborted_with(
                model,
                pending,
                rings,
                reached,
                steps,
                peak,
                AbortReason::of_exhaustion(e),
            ));
        }
        let src = if options.frontier_simplify {
            match simplify_frontier(model, frontier, reached) {
                Ok(f) => f,
                Err(e) => {
                    return Ok(aborted_with(
                        model,
                        pending,
                        rings,
                        reached,
                        steps,
                        peak,
                        AbortReason::of(&e),
                    ))
                }
            }
        } else {
            frontier
        };
        let step_result = {
            let img = match par.as_mut() {
                Some(p) => p.post_image(model, src),
                None => model.post_image(src),
            };
            match img {
                Ok(img) => {
                    model.manager().protect(img);
                    let new = model
                        .manager()
                        .not(reached)
                        .and_then(|nr| model.manager().and(img, nr));
                    model.manager().unprotect(img);
                    new
                }
                Err(e) => Err(e),
            }
        };
        let new = match step_result {
            Ok(new) => new,
            Err(e) => {
                return Ok(aborted_with(
                    model,
                    pending,
                    rings,
                    reached,
                    steps,
                    peak,
                    AbortReason::of(&e),
                ))
            }
        };
        steps += 1;
        options
            .common
            .trace
            .counter("reach.image_nodes", model.manager_ref().num_nodes() as u64);
        if new == model.manager_ref().zero() {
            pending.prove_rest();
            return Ok(MultiReachResult {
                verdicts: pending.verdicts,
                abort: None,
                rings,
                reached,
                steps,
                peak_nodes: peak,
                stats: BddStats::default(),
            });
        }
        model.manager().protect(new);
        protect_log.push(new);
        reached = match model.manager().or(reached, new) {
            Ok(b) => b,
            Err(e) => {
                return Ok(aborted_with(
                    model,
                    pending,
                    rings,
                    reached,
                    steps,
                    peak,
                    AbortReason::of(&e),
                ))
            }
        };
        model.manager().protect(reached);
        protect_log.push(reached);
        rings.push(new);
        peak = peak.max(model.manager_ref().num_nodes());
        if let Err(e) = pending.check_ring(model, targets, new, steps) {
            return Ok(aborted_with(
                model,
                pending,
                rings,
                reached,
                steps,
                peak,
                AbortReason::of(&e),
            ));
        }
        if pending.all_hit() {
            return Ok(MultiReachResult {
                verdicts: pending.verdicts,
                abort: None,
                rings,
                reached,
                steps,
                peak_nodes: peak,
                stats: BddStats::default(),
            });
        }
        frontier = new;
        if dvo.should_sift(model.manager_ref().num_nodes()) {
            let before = model.manager_ref().num_nodes();
            let mut roots = model.persistent_roots();
            roots.extend(rings.iter().copied());
            roots.push(reached);
            roots.extend(targets.iter().copied());
            roots.push(frontier);
            model.manager().sift_with_roots(&roots, options.max_growth);
            if let Some(p) = par.as_mut() {
                p.invalidate();
            }
            dvo.record_sift(before, model.manager_ref().num_nodes());
        }
    }
}

fn aborted(
    model: &SymbolicModel<'_>,
    pending: Pending,
    rings: Vec<Bdd>,
    steps: usize,
    reason: AbortReason,
) -> MultiReachResult {
    let zero = model.manager_ref().zero();
    MultiReachResult {
        verdicts: pending.verdicts,
        abort: Some(reason),
        reached: rings.first().copied().unwrap_or(zero),
        rings,
        steps,
        peak_nodes: model.manager_ref().num_nodes(),
        stats: BddStats::default(),
    }
}

#[allow(clippy::too_many_arguments)]
fn aborted_with(
    model: &SymbolicModel<'_>,
    pending: Pending,
    rings: Vec<Bdd>,
    reached: Bdd,
    steps: usize,
    peak: usize,
    reason: AbortReason,
) -> MultiReachResult {
    MultiReachResult {
        verdicts: pending.verdicts,
        abort: Some(reason),
        rings,
        reached,
        steps,
        peak_nodes: peak.max(model.manager_ref().num_nodes()),
        stats: BddStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{forward_reach, ModelSpec, ReachOptions};
    use rfn_netlist::{Abstraction, Cube, GateOp, Netlist, SignalId};

    /// 3-bit counter saturating at 5 (shared with the reach tests).
    fn counter3() -> (Netlist, Vec<SignalId>) {
        let mut n = Netlist::new("sat5");
        let b: Vec<SignalId> = (0..3)
            .map(|k| n.add_register(&format!("b{k}"), Some(false)))
            .collect();
        let nb1 = n.add_gate("nb1", GateOp::Not, &[b[1]]);
        let at5 = n.add_gate("at5", GateOp::And, &[b[0], nb1, b[2]]);
        let hold = n.add_gate("hold", GateOp::Not, &[at5]);
        let i0 = n.add_gate("i0", GateOp::Xor, &[b[0], hold]);
        let c0 = n.add_gate("c0", GateOp::And, &[b[0], hold]);
        let i1 = n.add_gate("i1", GateOp::Xor, &[b[1], c0]);
        let c1 = n.add_gate("c1", GateOp::And, &[b[1], c0]);
        let i2 = n.add_gate("i2", GateOp::Xor, &[b[2], c1]);
        n.set_register_next(b[0], i0).unwrap();
        n.set_register_next(b[1], i1).unwrap();
        n.set_register_next(b[2], i2).unwrap();
        n.validate().unwrap();
        (n, b)
    }

    fn model(n: &Netlist) -> crate::SymbolicModel<'_> {
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(n, [])
            .unwrap();
        crate::SymbolicModel::new(n, ModelSpec::from_view(&view)).unwrap()
    }

    fn value_cube(b: &[SignalId], v: usize) -> Cube {
        b.iter()
            .enumerate()
            .map(|(k, &s)| (s, v >> k & 1 != 0))
            .collect()
    }

    /// One multi-target run reports, for every counter value, exactly the
    /// verdict and depth a dedicated single-target run reports.
    #[test]
    fn multi_matches_single_target_runs() {
        let (n, b) = counter3();
        let mut m = model(&n);
        let targets: Vec<Bdd> = (0..8)
            .map(|v| m.cube_to_bdd(&value_cube(&b, v)).unwrap())
            .collect();
        let multi = forward_reach_multi(&mut m, &targets, &ReachOptions::default()).unwrap();
        for v in 0..8 {
            let mut m1 = model(&n);
            let t = m1.cube_to_bdd(&value_cube(&b, v)).unwrap();
            let single = forward_reach(&mut m1, t, &ReachOptions::default()).unwrap();
            assert_eq!(
                multi.verdicts[v].as_reach_verdict(),
                single.verdict,
                "counter value {v}"
            );
        }
        // Values 0..=5 are hit at their own depth; 6 and 7 are proved.
        for v in 0..6 {
            assert_eq!(multi.verdicts[v], TargetVerdict::Hit { step: v });
        }
        assert_eq!(multi.verdicts[6], TargetVerdict::Proved);
        assert_eq!(multi.verdicts[7], TargetVerdict::Proved);
    }

    /// When every target is eventually hit, the loop stops at the last hit
    /// instead of running to the fixpoint.
    #[test]
    fn all_hit_stops_early() {
        let (n, b) = counter3();
        let mut m = model(&n);
        let targets = vec![
            m.cube_to_bdd(&value_cube(&b, 0)).unwrap(),
            m.cube_to_bdd(&value_cube(&b, 2)).unwrap(),
        ];
        let r = forward_reach_multi(&mut m, &targets, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdicts[0], TargetVerdict::Hit { step: 0 });
        assert_eq!(r.verdicts[1], TargetVerdict::Hit { step: 2 });
        assert_eq!(r.steps, 2);
        assert_eq!(r.rings.len(), 3);
        assert!(r.abort.is_none());
    }

    /// Aborts keep already-retired hits and mark only pending targets.
    #[test]
    fn abort_preserves_earlier_hits() {
        let (n, b) = counter3();
        let mut m = model(&n);
        let targets = vec![
            m.cube_to_bdd(&value_cube(&b, 1)).unwrap(),
            m.cube_to_bdd(&value_cube(&b, 7)).unwrap(), // unreachable
        ];
        let opts = ReachOptions::default().with_max_steps(3);
        let r = forward_reach_multi(&mut m, &targets, &opts).unwrap();
        assert_eq!(r.verdicts[0], TargetVerdict::Hit { step: 1 });
        assert_eq!(r.verdicts[1], TargetVerdict::Aborted);
        assert_eq!(r.abort, Some(AbortReason::MaxSteps));
    }

    /// Warm-started multi-target runs re-check adopted rings in BFS order,
    /// so depths match a cold run even when the hit lies inside the warm
    /// prefix.
    #[test]
    fn warm_start_rechecks_adopted_rings() {
        let (n, b) = counter3();
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let spec = ModelSpec::from_view(&view);

        let mut m = crate::SymbolicModel::new(&n, spec.clone()).unwrap();
        let zero = m.manager_ref().zero();
        let partial =
            forward_reach(&mut m, zero, &ReachOptions::default().with_max_steps(4)).unwrap();
        assert_eq!(partial.rings.len(), 5);
        let store = crate::store::snapshot_model(&m, "g", &partial.rings).unwrap();

        let mut m2 = crate::SymbolicModel::new(&n, spec).unwrap();
        let adopted = crate::store::apply_store(&mut m2, &store, "g").unwrap();
        let targets = vec![
            m2.cube_to_bdd(&value_cube(&b, 2)).unwrap(), // inside warm prefix
            m2.cube_to_bdd(&value_cube(&b, 5)).unwrap(), // beyond it
            m2.cube_to_bdd(&value_cube(&b, 6)).unwrap(), // unreachable
        ];
        let r = forward_reach_multi_warm(&mut m2, &targets, &ReachOptions::default(), &adopted)
            .unwrap();
        assert_eq!(r.verdicts[0], TargetVerdict::Hit { step: 2 });
        assert_eq!(r.verdicts[1], TargetVerdict::Hit { step: 5 });
        assert_eq!(r.verdicts[2], TargetVerdict::Proved);
    }

    /// A stale warm start (wrong initial ring) must fail loudly.
    #[test]
    fn stale_warm_start_is_rejected() {
        let (n, b) = counter3();
        let mut m = model(&n);
        let bogus = m.cube_to_bdd(&value_cube(&b, 3)).unwrap();
        let t = m.cube_to_bdd(&value_cube(&b, 7)).unwrap();
        let err = forward_reach_multi_warm(&mut m, &[t], &ReachOptions::default(), &[bogus]);
        assert!(matches!(err, Err(McError::Store(_))));
    }

    /// Zero targets degenerate to a plain fixpoint with no verdicts.
    #[test]
    fn no_targets_runs_to_fixpoint() {
        let (n, _) = counter3();
        let mut m = model(&n);
        let r = forward_reach_multi(&mut m, &[], &ReachOptions::default()).unwrap();
        assert!(r.verdicts.is_empty());
        assert!(r.abort.is_none());
        assert_eq!(r.rings.len(), 6); // values 0..=5
    }

    /// The eager collector fires on every kernel call; any unprotected
    /// handle in the multi-target loop would be reclaimed and corrupt the
    /// verdicts.
    #[test]
    fn aggressive_auto_gc_is_sound() {
        let (n, b) = counter3();
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let mut mgr = rfn_bdd::BddManager::new();
        mgr.set_auto_gc_threshold(1);
        let mut m =
            crate::SymbolicModel::with_manager(&n, ModelSpec::from_view(&view), mgr).unwrap();
        let targets = vec![
            m.cube_to_bdd(&value_cube(&b, 4)).unwrap(),
            m.cube_to_bdd(&value_cube(&b, 7)).unwrap(),
        ];
        let r = forward_reach_multi(&mut m, &targets, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdicts[0], TargetVerdict::Hit { step: 4 });
        assert_eq!(r.verdicts[1], TargetVerdict::Proved);
        assert!(r.stats.auto_gc_runs > 0, "collector never fired");
    }
}
