//! Symbolic models: BDD encodings of abstract models and min-cut designs.

use std::collections::{BTreeSet, HashMap, HashSet};

use rfn_bdd::{Bdd, BddManager, BddResult, VarId};
use rfn_netlist::{force_order, AbstractView, Cube, MinCut, NetKind, Netlist, SignalId};

use crate::McError;

/// What a BDD variable stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Current-state value of a register.
    Current,
    /// Next-state value of a register.
    Next,
    /// A free input (true primary input, pseudo-input or min-cut signal).
    Input,
}

/// The circuit a [`SymbolicModel`] or [`TransitionRelation`] encodes:
/// registers keep their update logic expressed over the listed gates, and
/// `inputs` are unconstrained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSpec {
    /// State elements.
    pub registers: Vec<SignalId>,
    /// Free inputs of the model (everything the gates read that is neither a
    /// register, a gate of the model, nor a constant).
    pub inputs: Vec<SignalId>,
    /// Gates in topological order.
    pub gates: Vec<SignalId>,
}

impl ModelSpec {
    /// The specification of an abstract model `N`: its registers, its true
    /// and pseudo-inputs, and its gate cone.
    pub fn from_view(view: &AbstractView) -> Self {
        ModelSpec {
            registers: view.registers().to_vec(),
            inputs: view.free_inputs().collect(),
            gates: view.gates().to_vec(),
        }
    }

    /// The specification of a min-cut design `MC`: the same registers as the
    /// abstract model, with the cut signals as free inputs and only the gates
    /// on the free-cut side of the cut.
    pub fn from_min_cut(view: &AbstractView, mc: &MinCut) -> Self {
        ModelSpec {
            registers: view.registers().to_vec(),
            inputs: mc.cut_signals.clone(),
            gates: mc.gates.clone(),
        }
    }
}

/// Default node-count threshold for clustering transition partitions
/// (IWLS95-style partitioned transition relations).
pub const DEFAULT_CLUSTER_LIMIT: usize = 2500;

/// How a [`SymbolicModel`] chooses its initial BDD variable order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StaticOrder {
    /// Allocation order follows the specification: register `(current,
    /// next)` pairs in spec order, then free inputs as the gate evaluation
    /// encounters them. This reproduces the historical layout exactly.
    #[default]
    Seed,
    /// FORCE / center-of-gravity pre-ordering
    /// ([`rfn_netlist::force_order`]): registers and inputs are arranged by
    /// hypergraph span minimization over the next-state cone supports before
    /// any BDD node exists, so interacting variables start adjacent. Pairs
    /// stay interleaved; inputs are woven between them per the arrangement.
    Force,
}

impl StaticOrder {
    /// Parses a CLI spelling: `seed` or `force`.
    pub fn parse(s: &str) -> Result<StaticOrder, String> {
        match s {
            "seed" => Ok(StaticOrder::Seed),
            "force" => Ok(StaticOrder::Force),
            other => Err(format!(
                "unknown static order '{other}' (expected seed|force)"
            )),
        }
    }

    /// Canonical CLI spelling.
    pub fn describe(&self) -> &'static str {
        match self {
            StaticOrder::Seed => "seed",
            StaticOrder::Force => "force",
        }
    }
}

/// Construction-time tuning of a [`SymbolicModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelOptions {
    /// Node-count threshold for clustering transition partitions: adjacent
    /// per-register partitions are conjoined while the conjunction stays at
    /// or below this many nodes. `0` keeps one partition per register (the
    /// linear schedule of the seed implementation).
    pub cluster_limit: usize,
    /// Initial variable-order strategy.
    pub static_order: StaticOrder,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            cluster_limit: DEFAULT_CLUSTER_LIMIT,
            static_order: StaticOrder::default(),
        }
    }
}

/// One step of a precomputed image schedule: conjoin `rel` into the
/// accumulated product (fused `and_exists`), quantifying `cube` — the
/// variables no later step mentions — immediately.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ImageStep {
    pub(crate) rel: Bdd,
    pub(crate) cube: Bdd,
}

/// A precomputed early-quantification schedule over the clusters of a
/// [`TransitionRelation`], specific to one quantification set (post-images
/// quantify current-state and input variables, pre-images next-state
/// variables).
#[derive(Clone, Debug, Default)]
pub(crate) struct ImageSchedule {
    /// Clusters in IWLS95 benefit order with their quantification cubes.
    pub(crate) steps: Vec<ImageStep>,
    /// Cube of quantified variables mentioned by no cluster at all,
    /// quantified after the last conjunction; `None` when empty.
    pub(crate) residual: Option<Bdd>,
}

impl ImageSchedule {
    fn roots(&self) -> impl Iterator<Item = Bdd> + '_ {
        self.steps
            .iter()
            .flat_map(|s| [s.rel, s.cube])
            .chain(self.residual)
    }
}

/// A transition relation over a [`SymbolicModel`]'s variable space:
/// per-register partitions `next_r ↔ f_r`, their clustered form, and the
/// precomputed quantification schedules for early-quantified image
/// computation. Everything order-dependent is computed once at construction
/// — image calls only replay the schedule.
#[derive(Clone, Debug)]
pub struct TransitionRelation {
    parts: Vec<Bdd>,
    /// Input variables this relation's functions mention.
    input_vars: Vec<VarId>,
    /// Clustered partitions (conjunctions of `parts` up to the model's
    /// cluster limit), in original register order.
    clusters: Vec<Bdd>,
    /// Post-image schedule (∃ current-state ∪ input variables).
    post: ImageSchedule,
    /// Pre-image schedule (∃ next-state variables).
    pre: ImageSchedule,
    /// Cube of all input variables, for the plain pre-image.
    input_cube: Bdd,
}

impl TransitionRelation {
    /// The per-register partitions (one `next ↔ f` BDD per register).
    pub fn parts(&self) -> &[Bdd] {
        &self.parts
    }

    /// The clustered partitions the image schedules conjoin, in original
    /// register order (equal to [`TransitionRelation::parts`] when
    /// clustering is disabled).
    pub fn clusters(&self) -> &[Bdd] {
        &self.clusters
    }

    /// Number of clusters in the image schedules.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Input variables this relation's functions mention.
    pub fn input_vars(&self) -> &[VarId] {
        &self.input_vars
    }

    /// The precomputed post-image schedule (parallel image computation
    /// replays it on a shared manager).
    pub(crate) fn post_sched(&self) -> &ImageSchedule {
        &self.post
    }

    /// The precomputed pre-image schedule.
    pub(crate) fn pre_sched(&self) -> &ImageSchedule {
        &self.pre
    }

    /// Cube of all input variables (quantified by the plain pre-image).
    pub(crate) fn input_cube(&self) -> Bdd {
        self.input_cube
    }

    /// Roots to keep alive across garbage collection: partitions, clusters,
    /// and every precomputed quantification cube.
    pub fn roots(&self) -> impl Iterator<Item = Bdd> + '_ {
        self.parts
            .iter()
            .chain(self.clusters.iter())
            .copied()
            .chain(self.post.roots())
            .chain(self.pre.roots())
            .chain(std::iter::once(self.input_cube))
    }
}

/// A cube of a symbolic state set, translated back to netlist signals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateCube {
    /// Literals over register outputs (current-state variables).
    pub state: Cube,
    /// Literals over free-input signals.
    pub inputs: Cube,
    /// Literals over next-state variables, as register outputs.
    pub next_state: Cube,
}

/// A BDD encoding of a [`ModelSpec`] plus the machinery for image
/// computation. Additional transition relations (e.g. a min-cut design's) can
/// be built in the same variable space with
/// [`SymbolicModel::build_transition`].
///
/// Variable layout: each register gets a `(current, next)` pair registered as
/// a sifting group so renaming stays valid under dynamic reordering; free
/// inputs get singleton variables on demand.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct SymbolicModel<'n> {
    netlist: &'n Netlist,
    spec: ModelSpec,
    mgr: BddManager,
    cur: HashMap<SignalId, VarId>,
    nxt: HashMap<SignalId, VarId>,
    inp: HashMap<SignalId, VarId>,
    signal_of_var: Vec<(SignalId, VarKind)>,
    trans: TransitionRelation,
    /// Cache of main-spec signal functions (over current-state + input vars).
    signal_cache: HashMap<SignalId, Bdd>,
    /// Cluster node threshold applied when building transition relations.
    cluster_limit: usize,
}

impl<'n> SymbolicModel<'n> {
    /// Builds the symbolic model of a specification.
    ///
    /// # Errors
    ///
    /// Fails if a gate of the spec reads a signal the spec does not define
    /// ([`McError::UnboundSignal`]) or if BDD construction exceeds the node
    /// limit.
    pub fn new(netlist: &'n Netlist, spec: ModelSpec) -> Result<Self, McError> {
        Self::with_manager(netlist, spec, BddManager::new())
    }

    /// Like [`SymbolicModel::new`] with a caller-configured manager (node
    /// limits, pre-seeded options).
    pub fn with_manager(
        netlist: &'n Netlist,
        spec: ModelSpec,
        mgr: BddManager,
    ) -> Result<Self, McError> {
        Self::with_options(netlist, spec, mgr, ModelOptions::default())
    }

    /// Like [`SymbolicModel::with_manager`] with explicit model options.
    pub fn with_options(
        netlist: &'n Netlist,
        spec: ModelSpec,
        mut mgr: BddManager,
        options: ModelOptions,
    ) -> Result<Self, McError> {
        let mut cur = HashMap::new();
        let mut nxt = HashMap::new();
        let mut inp = HashMap::new();
        let mut signal_of_var: Vec<(SignalId, VarKind)> = Vec::new();
        match options.static_order {
            StaticOrder::Seed => {
                for &r in &spec.registers {
                    let pair = mgr.new_var_group(2);
                    cur.insert(r, pair[0]);
                    nxt.insert(r, pair[1]);
                    signal_of_var.push((r, VarKind::Current));
                    signal_of_var.push((r, VarKind::Next));
                }
            }
            StaticOrder::Force => {
                // Allocate every element — register pairs and inputs alike —
                // in FORCE arrangement order, so the initial level order is
                // the computed linear arrangement. `eval_spec_gates` then
                // finds every input pre-allocated.
                let arranged = force_order(netlist, &spec.registers, &spec.inputs, &[]);
                let regs: HashSet<SignalId> = spec.registers.iter().copied().collect();
                for &s in &arranged {
                    if regs.contains(&s) {
                        let pair = mgr.new_var_group(2);
                        cur.insert(s, pair[0]);
                        nxt.insert(s, pair[1]);
                        signal_of_var.push((s, VarKind::Current));
                        signal_of_var.push((s, VarKind::Next));
                    } else {
                        let v = mgr.new_var();
                        inp.insert(s, v);
                        signal_of_var.push((s, VarKind::Input));
                    }
                }
            }
        }
        let one = mgr.one();
        let mut model = SymbolicModel {
            netlist,
            spec: spec.clone(),
            mgr,
            cur,
            nxt,
            inp,
            signal_of_var,
            trans: TransitionRelation {
                parts: Vec::new(),
                input_vars: Vec::new(),
                clusters: Vec::new(),
                post: ImageSchedule::default(),
                pre: ImageSchedule::default(),
                input_cube: one,
            },
            signal_cache: HashMap::new(),
            cluster_limit: options.cluster_limit,
        };
        // One gate evaluation serves both the transition relation and the
        // signal cache used for target construction.
        let cache = model.eval_spec_gates(&spec)?;
        model.trans = model.transition_from_cache(&spec, &cache)?;
        model.signal_cache = cache;
        Ok(model)
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The model's specification.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The BDD manager (exposed for reordering, gc and cube analysis).
    pub fn manager(&mut self) -> &mut BddManager {
        &mut self.mgr
    }

    /// Immutable manager access.
    pub fn manager_ref(&self) -> &BddManager {
        &self.mgr
    }

    /// The main transition relation built from the model's spec.
    pub fn transition(&self) -> &TransitionRelation {
        &self.trans
    }

    /// The current-state variable of a register.
    pub fn current_var(&self, reg: SignalId) -> Option<VarId> {
        self.cur.get(&reg).copied()
    }

    /// The signal and role behind a variable.
    pub fn var_signal(&self, v: VarId) -> (SignalId, VarKind) {
        self.signal_of_var[v.index()]
    }

    /// The next-state variable of a register.
    pub fn next_var(&self, reg: SignalId) -> Option<VarId> {
        self.nxt.get(&reg).copied()
    }

    /// The variable of a free-input signal, if one has been allocated.
    pub fn try_input_var(&self, s: SignalId) -> Option<VarId> {
        self.inp.get(&s).copied()
    }

    /// The variable of a free-input signal, allocated on demand.
    pub fn input_var(&mut self, s: SignalId) -> VarId {
        if let Some(&v) = self.inp.get(&s) {
            return v;
        }
        let v = self.mgr.new_var();
        self.inp.insert(s, v);
        debug_assert_eq!(v.index(), self.signal_of_var.len());
        self.signal_of_var.push((s, VarKind::Input));
        v
    }

    /// Evaluates every gate of a spec into BDDs over current-state and input
    /// variables. Returns the cache keyed by signal.
    fn eval_spec_gates(&mut self, spec: &ModelSpec) -> Result<HashMap<SignalId, Bdd>, McError> {
        let mut cache: HashMap<SignalId, Bdd> = HashMap::new();
        for &r in &spec.registers {
            let v = self.cur[&r];
            cache.insert(r, self.mgr.var(v));
        }
        for &i in &spec.inputs {
            let v = self.input_var(i);
            cache.insert(i, self.mgr.var(v));
        }
        for &g in &spec.gates {
            let NetKind::Gate { op, fanins } = self.netlist.kind(g) else {
                return Err(McError::UnboundSignal(g));
            };
            let mut fanin_bdds = Vec::with_capacity(fanins.len());
            for &f in fanins {
                let b = match cache.get(&f) {
                    Some(&b) => b,
                    None => match self.netlist.kind(f) {
                        NetKind::Const(v) => {
                            if *v {
                                self.mgr.one()
                            } else {
                                self.mgr.zero()
                            }
                        }
                        _ => return Err(McError::UnboundSignal(f)),
                    },
                };
                fanin_bdds.push(b);
            }
            let b = self.apply_gate(*op, &fanin_bdds)?;
            cache.insert(g, b);
        }
        Ok(cache)
    }

    fn apply_gate(&mut self, op: rfn_netlist::GateOp, fanins: &[Bdd]) -> BddResult {
        use rfn_netlist::GateOp::*;
        let m = &mut self.mgr;
        match op {
            Buf => Ok(fanins[0]),
            Not => m.not(fanins[0]),
            And => m.and_many(fanins.iter().copied()),
            Nand => {
                let a = m.and_many(fanins.iter().copied())?;
                m.not(a)
            }
            Or => m.or_many(fanins.iter().copied()),
            Nor => {
                let a = m.or_many(fanins.iter().copied())?;
                m.not(a)
            }
            Xor => {
                let mut acc = m.zero();
                for &f in fanins {
                    acc = m.xor(acc, f)?;
                }
                Ok(acc)
            }
            Xnor => {
                let mut acc = m.zero();
                for &f in fanins {
                    acc = m.xor(acc, f)?;
                }
                m.not(acc)
            }
            Mux => m.ite(fanins[0], fanins[2], fanins[1]),
        }
    }

    /// Builds a transition relation for an alternative spec (e.g. a min-cut
    /// design) sharing this model's registers and variable space.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SymbolicModel::new`]; additionally the spec
    /// must have exactly the same registers as the model.
    pub fn build_transition(&mut self, spec: &ModelSpec) -> Result<TransitionRelation, McError> {
        let cache = self.eval_spec_gates(spec)?;
        self.transition_from_cache(spec, &cache)
    }

    fn transition_from_cache(
        &mut self,
        spec: &ModelSpec,
        cache: &HashMap<SignalId, Bdd>,
    ) -> Result<TransitionRelation, McError> {
        let mut parts = Vec::with_capacity(spec.registers.len());
        for &r in &spec.registers {
            let next_sig = self.netlist.register_next(r);
            let f = match cache.get(&next_sig) {
                Some(&f) => f,
                None => match self.netlist.kind(next_sig) {
                    NetKind::Const(v) => {
                        if *v {
                            self.mgr.one()
                        } else {
                            self.mgr.zero()
                        }
                    }
                    _ => return Err(McError::UnboundSignal(next_sig)),
                },
            };
            let nv = *self.nxt.get(&r).ok_or(McError::UnboundSignal(r))?;
            let nvb = self.mgr.var(nv);
            let part = self.mgr.xnor(nvb, f)?;
            parts.push(part);
        }
        let input_vars: Vec<VarId> = spec.inputs.iter().map(|s| self.inp[s]).collect();
        self.finish_transition(parts, input_vars)
    }

    /// Clusters the partitions, precomputes both image schedules and the
    /// input cube, and assembles the finished relation.
    fn finish_transition(
        &mut self,
        parts: Vec<Bdd>,
        input_vars: Vec<VarId>,
    ) -> Result<TransitionRelation, McError> {
        let clusters = self.cluster_parts(&parts, self.cluster_limit)?;
        let mut post_quant: BTreeSet<VarId> = self.cur.values().copied().collect();
        post_quant.extend(input_vars.iter().copied());
        let pre_quant: BTreeSet<VarId> = self.nxt.values().copied().collect();
        let post = self.schedule(&clusters, &post_quant);
        let pre = self.schedule(&clusters, &pre_quant);
        let input_cube = self.mgr.var_cube(input_vars.iter().copied());
        Ok(TransitionRelation {
            parts,
            input_vars,
            clusters,
            post,
            pre,
            input_cube,
        })
    }

    /// Greedily conjoins adjacent per-register partitions while the
    /// conjunction stays at or below `limit` nodes (IWLS95-style
    /// clustering). `limit == 0` disables clustering.
    fn cluster_parts(&mut self, parts: &[Bdd], limit: usize) -> Result<Vec<Bdd>, McError> {
        if limit == 0 || parts.len() <= 1 {
            return Ok(parts.to_vec());
        }
        // Finished clusters and the unconsumed partition tail are held
        // across `and` calls where they are not operands; protect them from
        // the automatic collector.
        for &p in parts {
            self.mgr.protect(p);
        }
        let mut clusters: Vec<Bdd> = Vec::new();
        let result = (|| -> BddResult {
            let mut acc = parts[0];
            for &p in &parts[1..] {
                let joined = self.mgr.and(acc, p)?;
                if self.mgr.size(joined) <= limit {
                    acc = joined;
                } else {
                    self.mgr.protect(acc);
                    clusters.push(acc);
                    acc = p;
                }
            }
            self.mgr.protect(acc);
            clusters.push(acc);
            Ok(acc)
        })();
        for &p in parts {
            self.mgr.unprotect(p);
        }
        for &c in &clusters {
            self.mgr.unprotect(c);
        }
        result?;
        Ok(clusters)
    }

    /// Orders clusters by the IWLS95 benefit heuristic — a cluster scores by
    /// how many quantifiable variables it would release right now (it is
    /// their last unscheduled mention), tie-broken toward smaller supports —
    /// and precomputes the per-step quantification cubes.
    fn schedule(&mut self, clusters: &[Bdd], quant: &BTreeSet<VarId>) -> ImageSchedule {
        let supports: Vec<BTreeSet<VarId>> = clusters
            .iter()
            .map(|&c| self.mgr.support(c).into_iter().collect())
            .collect();
        // How many unscheduled clusters still mention each quantifiable var.
        let mut uses: HashMap<VarId, usize> = HashMap::new();
        for s in &supports {
            for &v in s {
                if quant.contains(&v) {
                    *uses.entry(v).or_insert(0) += 1;
                }
            }
        }
        let mut remaining: Vec<usize> = (0..clusters.len()).collect();
        let mut unquantified: BTreeSet<VarId> = quant.clone();
        let mut steps = Vec::with_capacity(clusters.len());
        while !remaining.is_empty() {
            let mut best_k = 0;
            let mut best_key = (isize::MIN, isize::MIN, std::cmp::Reverse(usize::MAX));
            for (k, &i) in remaining.iter().enumerate() {
                let released = supports[i]
                    .iter()
                    .filter(|v| uses.get(v) == Some(&1))
                    .count() as isize;
                let key = (
                    released,
                    -(supports[i].len() as isize),
                    std::cmp::Reverse(i),
                );
                if key > best_key {
                    best_key = key;
                    best_k = k;
                }
            }
            let i = remaining.remove(best_k);
            for v in &supports[i] {
                if let Some(n) = uses.get_mut(v) {
                    *n -= 1;
                }
            }
            // Quantify everything whose last mention was just scheduled —
            // plus, on the first step, variables no cluster mentions at all.
            let now: Vec<VarId> = unquantified
                .iter()
                .copied()
                .filter(|v| uses.get(v).is_none_or(|&n| n == 0))
                .collect();
            for v in &now {
                unquantified.remove(v);
            }
            let cube = self.mgr.var_cube(now);
            steps.push(ImageStep {
                rel: clusters[i],
                cube,
            });
        }
        let residual = if unquantified.is_empty() {
            None
        } else {
            Some(self.mgr.var_cube(unquantified))
        };
        ImageSchedule { steps, residual }
    }

    /// The function of a main-spec signal over current-state and input
    /// variables.
    ///
    /// # Errors
    ///
    /// Fails with [`McError::UnboundSignal`] if the signal is not part of the
    /// model. Constants are always available — they appear in no spec
    /// section (gate evaluation folds them into fanins), but a property may
    /// watch one directly.
    pub fn signal_bdd(&mut self, s: SignalId) -> Result<Bdd, McError> {
        if let Some(&b) = self.signal_cache.get(&s) {
            return Ok(b);
        }
        if let NetKind::Const(v) = self.netlist.kind(s) {
            let b = if *v { self.mgr.one() } else { self.mgr.zero() };
            self.signal_cache.insert(s, b);
            return Ok(b);
        }
        Err(McError::UnboundSignal(s))
    }

    /// The set of initial states: every register with a known reset value is
    /// constrained to it; unknown resets are free.
    pub fn init_states(&mut self) -> BddResult {
        let lits: Vec<(VarId, bool)> = self
            .spec
            .registers
            .iter()
            .filter_map(|&r| self.netlist.register_init(r).map(|v| (self.cur[&r], v)))
            .collect();
        Ok(self.mgr.cube(lits))
    }

    /// Converts a signal-level cube (over registers and inputs of the model)
    /// to a BDD over the corresponding variables.
    ///
    /// # Errors
    ///
    /// Fails with [`McError::UnboundSignal`] for signals with no variable.
    pub fn cube_to_bdd(&mut self, cube: &Cube) -> Result<Bdd, McError> {
        let mut lits = Vec::with_capacity(cube.len());
        for (s, v) in cube.iter() {
            let var = if let Some(&var) = self.cur.get(&s) {
                var
            } else if let Some(&var) = self.inp.get(&s) {
                var
            } else {
                return Err(McError::UnboundSignal(s));
            };
            lits.push((var, v));
        }
        Ok(self.mgr.cube(lits))
    }

    /// Translates a variable-level cube (from `pick_cube`/`shortest_cube`)
    /// back to netlist signals, partitioned by variable kind.
    pub fn cube_to_signals(&self, lits: &[(VarId, bool)]) -> StateCube {
        let mut out = StateCube::default();
        for &(v, val) in lits {
            let (s, kind) = self.signal_of_var[v.index()];
            let cube = match kind {
                VarKind::Current => &mut out.state,
                VarKind::Input => &mut out.inputs,
                VarKind::Next => &mut out.next_state,
            };
            cube.insert(s, val)
                .expect("variable cubes have unique variables");
        }
        out
    }

    /// Renames next-state variables to current-state variables.
    pub fn nxt_to_cur(&mut self, f: Bdd) -> BddResult {
        let map: Vec<(VarId, VarId)> = self
            .spec
            .registers
            .iter()
            .map(|r| (self.nxt[r], self.cur[r]))
            .collect();
        self.mgr.permute(f, &map)
    }

    /// Renames current-state variables to next-state variables.
    pub fn cur_to_nxt(&mut self, f: Bdd) -> BddResult {
        let map: Vec<(VarId, VarId)> = self
            .spec
            .registers
            .iter()
            .map(|r| (self.cur[r], self.nxt[r]))
            .collect();
        self.mgr.permute(f, &map)
    }

    /// Post-image under the model's main transition relation: the states
    /// reachable in one step from `q`. Replays the precomputed post
    /// schedule — no per-call cloning or support analysis.
    pub fn post_image(&mut self, q: Bdd) -> BddResult {
        let sched = std::mem::take(&mut self.trans.post);
        let img = self.image(&sched, q);
        self.trans.post = sched;
        self.nxt_to_cur(img?)
    }

    /// Post-image under an explicit transition relation.
    pub fn post_image_with(&mut self, trans: &TransitionRelation, q: Bdd) -> BddResult {
        let img = self.image(&trans.post, q)?;
        self.nxt_to_cur(img)
    }

    /// Pre-image under the model's main transition relation: the states that
    /// reach `q` in one step. Input variables are quantified away.
    pub fn pre_image(&mut self, q: Bdd) -> BddResult {
        let sched = std::mem::take(&mut self.trans.pre);
        let q_next = self.cur_to_nxt(q);
        let with_inputs = q_next.and_then(|qn| self.image(&sched, qn));
        self.trans.pre = sched;
        let input_cube = self.trans.input_cube;
        self.mgr.exists(with_inputs?, input_cube)
    }

    /// Pre-image that *keeps input variables alive*: the result ranges over
    /// current-state variables and the relation's input variables. The
    /// hybrid engine uses this on the min-cut design — the cut-signal
    /// literals of the result's cubes are exactly the paper's min-cut-cube
    /// content (Figure 1).
    pub fn pre_image_with_inputs(&mut self, trans: &TransitionRelation, q: Bdd) -> BddResult {
        let q_next = self.cur_to_nxt(q)?;
        self.image(&trans.pre, q_next)
    }

    /// Replays a precomputed early-quantification schedule: conjoin each
    /// cluster in benefit order with the fused `and_exists`, quantifying its
    /// cube immediately, then quantify the residual variables no cluster
    /// mentions.
    fn image(&mut self, sched: &ImageSchedule, q: Bdd) -> BddResult {
        // Pending clusters and cubes are held across earlier `and_exists`
        // calls where they are not operands; protect them from the automatic
        // collector. (The accumulator is always an operand of the next call.)
        for root in sched.roots() {
            self.mgr.protect(root);
        }
        let result = (|| -> BddResult {
            let mut acc = q;
            for s in &sched.steps {
                acc = self.mgr.and_exists(acc, s.rel, s.cube)?;
            }
            match sched.residual {
                Some(cube) => self.mgr.exists(acc, cube),
                None => Ok(acc),
            }
        })();
        for root in sched.roots() {
            self.mgr.unprotect(root);
        }
        result
    }

    /// Projects a state set onto the given register signals: every other
    /// variable in the support is quantified away.
    ///
    /// # Errors
    ///
    /// Fails with [`McError::UnboundSignal`] if a projection signal has no
    /// current-state variable.
    pub fn project_to(&mut self, f: Bdd, signals: &[SignalId]) -> Result<Bdd, McError> {
        let mut keep = BTreeSet::new();
        for &s in signals {
            let v = self.cur.get(&s).copied().ok_or(McError::UnboundSignal(s))?;
            keep.insert(v);
        }
        let drop: Vec<VarId> = self
            .mgr
            .support(f)
            .into_iter()
            .filter(|v| !keep.contains(v))
            .collect();
        let cube = self.mgr.var_cube(drop);
        Ok(self.mgr.exists(f, cube)?)
    }

    /// Roots that must survive garbage collection for the model to remain
    /// usable: transition partitions, clusters, precomputed quantification
    /// cubes, and cached signal functions.
    pub fn persistent_roots(&self) -> Vec<Bdd> {
        let mut roots: Vec<Bdd> = self.trans.roots().collect();
        roots.extend(self.signal_cache.values().copied());
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{Abstraction, GateOp};

    /// 2-bit counter with carry.
    fn counter() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut n = Netlist::new("c");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b0, b1]);
        let carry = n.add_gate("carry", GateOp::And, &[b0, b1]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        n.validate().unwrap();
        (n, b0, b1, carry)
    }

    fn model_of<'n>(n: &'n Netlist, roots: &[SignalId]) -> SymbolicModel<'n> {
        let regs: Vec<SignalId> = n.registers().to_vec();
        let view = Abstraction::from_registers(regs)
            .view(n, roots.iter().copied())
            .unwrap();
        SymbolicModel::new(n, ModelSpec::from_view(&view)).unwrap()
    }

    #[test]
    fn init_states_follow_resets() {
        let (n, b0, _, carry) = counter();
        let mut m = model_of(&n, &[carry]);
        let init = m.init_states().unwrap();
        // Exactly one state over the two current-state vars (the manager
        // also holds the two next-state vars, which are free in `init`).
        let nv = m.manager_ref().num_vars();
        assert_eq!(m.manager().sat_count(init, nv), 4.0);
        let cube: Cube = [(b0, false)].into_iter().collect();
        let b = m.cube_to_bdd(&cube).unwrap();
        let conj = m.manager().and(init, b).unwrap();
        assert_eq!(conj, init);
    }

    #[test]
    fn post_image_steps_the_counter() {
        let (n, b0, b1, carry) = counter();
        let mut m = model_of(&n, &[carry]);
        let init = m.init_states().unwrap();
        let s1 = m.post_image(init).unwrap();
        // One successor: 01.
        let expect: Cube = [(b0, true), (b1, false)].into_iter().collect();
        let eb = m.cube_to_bdd(&expect).unwrap();
        assert_eq!(s1, eb);
        let s2 = m.post_image(s1).unwrap();
        let expect2: Cube = [(b0, false), (b1, true)].into_iter().collect();
        let eb2 = m.cube_to_bdd(&expect2).unwrap();
        assert_eq!(s2, eb2);
    }

    #[test]
    fn pre_image_inverts_post() {
        let (n, b0, b1, carry) = counter();
        let mut m = model_of(&n, &[carry]);
        // For the counter, the predecessor of 3 (b1=1,b0=1) is 2 (b1=1,b0=0):
        // b0' = ¬b0 forces b0=0, and b1' = b0⊕b1 with b0=0 forces b1=1.
        let c11: Cube = [(b0, true), (b1, true)].into_iter().collect();
        let b11 = m.cube_to_bdd(&c11).unwrap();
        let pre = m.pre_image(b11).unwrap();
        let expect: Cube = [(b0, false), (b1, true)].into_iter().collect();
        let be = m.cube_to_bdd(&expect).unwrap();
        assert_eq!(pre, be);
    }

    #[test]
    fn adjointness_of_images() {
        // post(Q) ∩ B ≠ ∅  ⇔  Q ∩ pre(B) ≠ ∅ on the counter for cube sets.
        let (n, b0, b1, carry) = counter();
        let mut m = model_of(&n, &[carry]);
        for qbits in 0..4u32 {
            for bbits in 0..4u32 {
                let q: Cube = [(b0, qbits & 1 == 1), (b1, qbits & 2 == 2)]
                    .into_iter()
                    .collect();
                let b: Cube = [(b0, bbits & 1 == 1), (b1, bbits & 2 == 2)]
                    .into_iter()
                    .collect();
                let qb = m.cube_to_bdd(&q).unwrap();
                let bb = m.cube_to_bdd(&b).unwrap();
                let post_q = m.post_image(qb).unwrap();
                let pre_b = m.pre_image(bb).unwrap();
                let lhs = m.manager().and(post_q, bb).unwrap() != m.manager_ref().zero();
                let rhs = m.manager().and(qb, pre_b).unwrap() != m.manager_ref().zero();
                assert_eq!(lhs, rhs, "q={qbits:02b} b={bbits:02b}");
            }
        }
    }

    #[test]
    fn signal_bdd_of_gate() {
        let (n, b0, b1, carry) = counter();
        let mut m = model_of(&n, &[carry]);
        let cb = m.signal_bdd(carry).unwrap();
        // carry == b0 ∧ b1.
        let c: Cube = [(b0, true), (b1, true)].into_iter().collect();
        let expect = m.cube_to_bdd(&c).unwrap();
        assert_eq!(cb, expect);
    }

    #[test]
    fn pre_image_with_inputs_keeps_input_literals() {
        // r' = r | i : pre(r=1) with inputs alive distinguishes i.
        let mut n = Netlist::new("d");
        let i = n.add_input("i");
        let r = n.add_register("r", Some(false));
        let g = n.add_gate("g", GateOp::Or, &[r, i]);
        n.set_register_next(r, g).unwrap();
        n.validate().unwrap();
        let mut m = model_of(&n, &[]);
        let target: Cube = [(r, true)].into_iter().collect();
        let tb = m.cube_to_bdd(&target).unwrap();
        let trans = m.transition().clone();
        let pre = m.pre_image_with_inputs(&trans, tb).unwrap();
        // pre = r=1 ∨ i=1 (over cur var of r and input var of i).
        let iv = m.input_var(i);
        let rv = m.current_var(r).unwrap();
        let ib = m.manager().var(iv);
        let rb = m.manager().var(rv);
        let expect = m.manager().or(ib, rb).unwrap();
        assert_eq!(pre, expect);
        // Quantifying inputs gives the plain pre-image: all states.
        let plain = m.pre_image(tb).unwrap();
        assert_eq!(plain, m.manager_ref().one());
    }

    #[test]
    fn project_to_drops_other_registers() {
        let (n, b0, b1, carry) = counter();
        let mut m = model_of(&n, &[carry]);
        let c: Cube = [(b0, true), (b1, false)].into_iter().collect();
        let f = m.cube_to_bdd(&c).unwrap();
        let p = m.project_to(f, &[b0]).unwrap();
        let expect_cube: Cube = [(b0, true)].into_iter().collect();
        let expect = m.cube_to_bdd(&expect_cube).unwrap();
        assert_eq!(p, expect);
    }

    #[test]
    fn cube_round_trip_through_signals() {
        let (n, b0, b1, carry) = counter();
        let mut m = model_of(&n, &[carry]);
        let c: Cube = [(b0, true), (b1, false)].into_iter().collect();
        let f = m.cube_to_bdd(&c).unwrap();
        let lits = m.manager_ref().pick_cube(f).unwrap();
        let sc = m.cube_to_signals(&lits);
        assert_eq!(sc.state, c);
        assert!(sc.inputs.is_empty());
        assert!(sc.next_state.is_empty());
    }

    #[test]
    fn mincut_transition_shares_register_vars() {
        // Funnel design: min-cut relation over the same state space.
        let mut n = Netlist::new("f");
        let inputs: Vec<_> = (0..4).map(|k| n.add_input(&format!("i{k}"))).collect();
        let funnel = n.add_gate("funnel", GateOp::Xor, &inputs);
        let r = n.add_register("r", Some(false));
        let upd = n.add_gate("upd", GateOp::Xor, &[r, funnel]);
        n.set_register_next(r, upd).unwrap();
        n.validate().unwrap();
        let view = Abstraction::from_registers([r]).view(&n, []).unwrap();
        let mcut = rfn_netlist::compute_min_cut(&n, &view);
        assert_eq!(mcut.cut_signals.len(), 1);
        let mut m = SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let mc_spec = ModelSpec::from_min_cut(&view, &mcut);
        let mc_trans = m.build_transition(&mc_spec).unwrap();
        // Pre-image of r=1 on the min-cut design: r ⊕ cut = 1.
        let target: Cube = [(r, true)].into_iter().collect();
        let tb = m.cube_to_bdd(&target).unwrap();
        let pre = m.pre_image_with_inputs(&mc_trans, tb).unwrap();
        let cut_var = m.input_var(mcut.cut_signals[0]);
        let rv = m.current_var(r).unwrap();
        let cb = m.manager().var(cut_var);
        let rb = m.manager().var(rv);
        let expect = m.manager().xor(rb, cb).unwrap();
        assert_eq!(pre, expect);
    }

    #[test]
    fn clustered_and_linear_images_agree() {
        let (n, _, _, carry) = counter();
        let regs: Vec<SignalId> = n.registers().to_vec();
        let view = Abstraction::from_registers(regs).view(&n, [carry]).unwrap();
        let spec = ModelSpec::from_view(&view);
        let mut lin = SymbolicModel::with_options(
            &n,
            spec.clone(),
            rfn_bdd::BddManager::new(),
            ModelOptions {
                cluster_limit: 0,
                ..ModelOptions::default()
            },
        )
        .unwrap();
        let mut clu = SymbolicModel::new(&n, spec).unwrap();
        assert_eq!(lin.transition().num_clusters(), 2);
        assert_eq!(clu.transition().num_clusters(), 1);
        // Both models allocate variables in the same order, so sat counts
        // over the full variable space are directly comparable.
        let nv = lin.manager_ref().num_vars();
        let mut fl = lin.init_states().unwrap();
        let mut fc = clu.init_states().unwrap();
        for _ in 0..4 {
            fl = lin.post_image(fl).unwrap();
            fc = clu.post_image(fc).unwrap();
            assert_eq!(
                lin.manager().sat_count(fl, nv),
                clu.manager().sat_count(fc, nv)
            );
            let pl = lin.pre_image(fl).unwrap();
            let pc = clu.pre_image(fc).unwrap();
            assert_eq!(
                lin.manager().sat_count(pl, nv),
                clu.manager().sat_count(pc, nv)
            );
        }
    }
}
