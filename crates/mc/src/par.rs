//! Intra-property parallel image computation.
//!
//! [`ParImage`] fans one `post_image`/`pre_image` across worker threads on a
//! [`SharedBddManager`]: the precomputed cluster schedule is exported into
//! the shared manager once, each frontier is split into disjoint slices by
//! top-variable decomposition (`q = ¬v·q|v=0 ∨ v·q|v=1`, applied repeatedly
//! to the largest slice), every worker replays the full benefit-ordered
//! `and_exists` chain on its slices, the partial images are OR-combined in a
//! parallel reduction tree, and the result is imported back into the serial
//! master manager. Because `Img(A ∪ B) = Img(A) ∪ Img(B)` and both managers
//! hash-cons over the *same variable order*, the imported result is exactly
//! the node the serial computation would have produced — verdicts, rings and
//! fixpoint step counts are bit-identical for every thread count.
//!
//! The shared manager is a sidecar: the master's serial hot path is
//! untouched, and everything here is driven between master operations, so
//! the golden traces of `bdd_threads: 1` runs cannot change.
//!
//! # Schedule export and per-cluster quantification
//!
//! Exporting the schedule also performs the independent per-cluster
//! quantifications concurrently: an input variable mentioned by exactly one
//! cluster can be quantified into that cluster once at export time
//! (`∃v (A ∧ R) = A ∧ ∃v R` when `v` is not in `A`'s support — frontiers
//! range over current-state variables only, so inputs never occur in `A`).
//! Every slice of every subsequent image then replays a strictly smaller
//! chain.
//!
//! # Lifetimes and invalidation
//!
//! Exported handles stay valid as long as neither side collects or reorders:
//!
//! * a master collection (manual or automatic) can recycle node indices, so
//!   the master→shared memo is rebuilt whenever the master's `gc_runs`
//!   counter moved;
//! * a shared collection (run stop-the-world between images once the shared
//!   arena passes an adaptive threshold) keeps the schedule alive as GC
//!   roots but drops everything else, so the memo is cleared as well;
//! * reordering the master (sifting) changes the variable order itself —
//!   [`ParImage::invalidate`] drops the whole shared manager, and the next
//!   image rebuilds it under the new order.

use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

use rfn_bdd::{Bdd, BddError, BddManager, BddResult, BddStats, SharedBddManager, VarId};
use rfn_govern::Budget;

use crate::model::ImageSchedule;
use crate::SymbolicModel;

/// Shared-manager live-node count that arms the first stop-the-world
/// collection between images; doubles to track the live set afterwards.
const SHARED_GC_THRESHOLD: usize = 1 << 16;

/// Target slices per worker thread: more slices than workers smooths load
/// imbalance between cheap and expensive slices.
const SLICES_PER_THREAD: usize = 4;

/// Frontier node count below which fanning out costs more than it saves:
/// export, split, per-worker replay and import all pay fixed overheads
/// that a small serial `and_exists` chain beats easily. Frontiers under
/// this size take the serial master path instead (same result — the
/// parallel path is bit-identical to serial by construction, so choosing
/// per-image is always sound).
const PAR_FALLBACK_NODES: usize = 512;

/// An exported image schedule: shared-manager handles for each step's
/// cluster and quantification cube.
struct ParSchedule {
    steps: Vec<(Bdd, Bdd)>,
    residual: Option<Bdd>,
}

impl ParSchedule {
    fn roots(&self) -> Vec<Bdd> {
        self.steps
            .iter()
            .flat_map(|&(r, c)| [r, c])
            .chain(self.residual)
            .collect()
    }
}

/// Reusable parallel-image context for one [`SymbolicModel`]. Created when
/// [`ReachOptions::bdd_threads`](crate::ReachOptions::bdd_threads) exceeds
/// one; owns the sidecar [`SharedBddManager`] and the export state.
pub struct ParImage {
    threads: usize,
    budget: Budget,
    shared: Option<SharedBddManager>,
    post: Option<ParSchedule>,
    pre: Option<ParSchedule>,
    /// Master node index → shared handle memo. Valid only while the
    /// master's `gc_runs` counter equals `master_gc_runs` and the shared
    /// side has not collected.
    export_memo: HashMap<Bdd, Bdd>,
    master_gc_runs: u64,
    shared_gc_threshold: usize,
    /// Counters already harvested from dropped shared managers (after
    /// [`ParImage::invalidate`]).
    retired_stats: BddStats,
    /// Images that actually fanned out across workers.
    parallel_images: u64,
    /// Images routed to the serial master path because the frontier was
    /// below `fallback_nodes`.
    fallback_images: u64,
    /// Frontier node count below which images stay serial.
    fallback_nodes: usize,
}

impl ParImage {
    /// Creates a context that will fan images across `threads` workers,
    /// governed by `budget` (polled from every worker).
    pub fn new(threads: usize, budget: Budget) -> Self {
        ParImage {
            threads: threads.max(1),
            budget,
            shared: None,
            post: None,
            pre: None,
            export_memo: HashMap::new(),
            master_gc_runs: 0,
            shared_gc_threshold: SHARED_GC_THRESHOLD,
            retired_stats: BddStats::default(),
            parallel_images: 0,
            fallback_images: 0,
            fallback_nodes: PAR_FALLBACK_NODES,
        }
    }

    /// Overrides the serial-fallback threshold (frontier node count below
    /// which images stay serial). Zero disables the fallback entirely;
    /// mainly for tests and benches that need to force the fan-out path.
    pub fn set_fallback_nodes(&mut self, nodes: usize) {
        self.fallback_nodes = nodes;
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Images that fanned out across worker threads.
    pub fn parallel_images(&self) -> u64 {
        self.parallel_images
    }

    /// Images that fell back to the serial master path (frontier below the
    /// fan-out threshold).
    pub fn fallback_images(&self) -> u64 {
        self.fallback_images
    }

    /// Drops the shared manager and every exported handle. Must be called
    /// after the master manager reorders (the variable order no longer
    /// matches); the next image rebuilds everything under the new order.
    pub fn invalidate(&mut self) {
        if let Some(shared) = self.shared.take() {
            self.retired_stats.merge(&shared.stats());
        }
        self.post = None;
        self.pre = None;
        self.export_memo.clear();
    }

    /// Cumulative shared-kernel counters across every shared manager this
    /// context has owned (live and retired).
    pub fn stats(&self) -> BddStats {
        let mut s = self.retired_stats;
        if let Some(shared) = &self.shared {
            s.merge(&shared.stats());
        }
        s
    }

    /// Parallel post-image: same contract (and bit-identical result) as
    /// [`SymbolicModel::post_image`]. Frontiers below the fan-out threshold
    /// take the serial master path directly.
    pub fn post_image(&mut self, model: &mut SymbolicModel<'_>, q: Bdd) -> BddResult {
        if model.manager_ref().size(q) < self.fallback_nodes {
            self.fallback_images += 1;
            return model.post_image(q);
        }
        self.parallel_images += 1;
        self.ensure_exported(model)?;
        let img = self.image(model, true, q)?;
        model.nxt_to_cur(img)
    }

    /// Parallel pre-image: same contract (and bit-identical result) as
    /// [`SymbolicModel::pre_image`]. Frontiers below the fan-out threshold
    /// take the serial master path directly.
    pub fn pre_image(&mut self, model: &mut SymbolicModel<'_>, q: Bdd) -> BddResult {
        if model.manager_ref().size(q) < self.fallback_nodes {
            self.fallback_images += 1;
            return model.pre_image(q);
        }
        self.parallel_images += 1;
        self.ensure_exported(model)?;
        let q_next = model.cur_to_nxt(q)?;
        let with_inputs = self.image(model, false, q_next)?;
        let input_cube = model.transition().input_cube();
        model.manager().exists(with_inputs, input_cube)
    }

    /// Builds the shared manager and exports both schedules if needed;
    /// refreshes the export memo when the master has collected since.
    fn ensure_exported(&mut self, model: &mut SymbolicModel<'_>) -> Result<(), BddError> {
        if self.shared.is_some() {
            return Ok(());
        }
        let mut shared = SharedBddManager::mirroring(model.manager_ref());
        shared.set_budget(self.budget.clone());
        self.shared = Some(shared);
        self.export_memo.clear();
        self.master_gc_runs = model.manager_ref().stats().gc_runs;
        let post = model.transition().post_sched().clone();
        let pre = model.transition().pre_sched().clone();
        let post = self.export_schedule(model, &post, true)?;
        let pre = self.export_schedule(model, &pre, false)?;
        self.post = Some(post);
        self.pre = Some(pre);
        Ok(())
    }

    /// Exports one schedule into the shared manager. For the post schedule,
    /// single-cluster input variables are quantified into their cluster
    /// concurrently (one scoped worker per affected cluster).
    fn export_schedule(
        &mut self,
        model: &SymbolicModel<'_>,
        sched: &ImageSchedule,
        quantify_local_inputs: bool,
    ) -> Result<ParSchedule, BddError> {
        let mgr = model.manager_ref();
        let mut steps = Vec::with_capacity(sched.steps.len());
        for s in &sched.steps {
            let rel = self.export(mgr, s.rel)?;
            let cube = self.export(mgr, s.cube)?;
            steps.push((rel, cube));
        }
        let residual = match sched.residual {
            Some(r) => Some(self.export(mgr, r)?),
            None => None,
        };
        let mut out = ParSchedule { steps, residual };
        if quantify_local_inputs {
            self.quantify_local_inputs(model, sched, &mut out)?;
        }
        Ok(out)
    }

    /// The independent per-cluster quantifications: an input variable
    /// mentioned by exactly one cluster is existentially quantified into
    /// that cluster on the shared side, one worker per affected cluster.
    /// Sound because frontiers never mention inputs, so
    /// `∃v (q ∧ R_i) = q ∧ ∃v R_i` whenever no other cluster mentions `v`.
    fn quantify_local_inputs(
        &mut self,
        model: &SymbolicModel<'_>,
        sched: &ImageSchedule,
        out: &mut ParSchedule,
    ) -> Result<(), BddError> {
        let mgr = model.manager_ref();
        let inputs: BTreeSet<VarId> = model.transition().input_vars().iter().copied().collect();
        let supports: Vec<BTreeSet<VarId>> = sched
            .steps
            .iter()
            .map(|s| mgr.support(s.rel).into_iter().collect())
            .collect();
        let mut mentions: HashMap<VarId, usize> = HashMap::new();
        for sup in &supports {
            for &v in sup {
                *mentions.entry(v).or_insert(0) += 1;
            }
        }
        // For each step: the local input vars to push in, and the remaining
        // quantification cube.
        let mut jobs: Vec<(usize, Vec<VarId>, Vec<VarId>)> = Vec::new();
        for (i, s) in sched.steps.iter().enumerate() {
            let cube_vars: Vec<VarId> = mgr.support(s.cube);
            let (local, rest): (Vec<VarId>, Vec<VarId>) = cube_vars.into_iter().partition(|v| {
                inputs.contains(v) && supports[i].contains(v) && mentions.get(v) == Some(&1)
            });
            if !local.is_empty() {
                jobs.push((i, local, rest));
            }
        }
        if jobs.is_empty() {
            return Ok(());
        }
        let shared = self.shared.as_ref().expect("shared manager exists");
        let results: Vec<(usize, BddResult, BddResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(i, local, rest)| {
                    let (rel, _) = out.steps[*i];
                    scope.spawn(move || {
                        let lcube = shared.var_cube(local.iter().copied());
                        let rel2 = lcube.and_then(|c| shared.exists(rel, c));
                        let cube2 = shared.var_cube(rest.iter().copied());
                        (*i, rel2, cube2)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("quantification worker panicked"))
                .collect()
        });
        for (i, rel2, cube2) in results {
            out.steps[i] = (rel2?, cube2?);
        }
        Ok(())
    }

    /// Copies a master BDD into the shared manager (bottom-up structural
    /// copy; hash-consing keeps it canonical). Memoized across calls via
    /// `export_memo`.
    fn export(&mut self, mgr: &BddManager, f: Bdd) -> BddResult {
        let shared = self.shared.as_ref().expect("shared manager exists");
        if f == mgr.zero() {
            return Ok(shared.zero());
        }
        if f == mgr.one() {
            return Ok(shared.one());
        }
        let mut stack = vec![f];
        while let Some(&n) = stack.last() {
            if self.export_memo.contains_key(&n) || n == mgr.zero() || n == mgr.one() {
                stack.pop();
                continue;
            }
            let (v, lo, hi) = mgr.node_info(n).expect("internal node");
            let lo_done = lo == mgr.zero() || lo == mgr.one() || self.export_memo.contains_key(&lo);
            let hi_done = hi == mgr.zero() || hi == mgr.one() || self.export_memo.contains_key(&hi);
            if lo_done && hi_done {
                let slo = self.exported(mgr, shared, lo);
                let shi = self.exported(mgr, shared, hi);
                let s = shared.make_node(v, slo, shi)?;
                self.export_memo.insert(n, s);
                stack.pop();
            } else {
                if !hi_done {
                    stack.push(hi);
                }
                if !lo_done {
                    stack.push(lo);
                }
            }
        }
        Ok(self.export_memo[&f])
    }

    #[inline]
    fn exported(&self, mgr: &BddManager, shared: &SharedBddManager, n: Bdd) -> Bdd {
        if n == mgr.zero() {
            shared.zero()
        } else if n == mgr.one() {
            shared.one()
        } else {
            self.export_memo[&n]
        }
    }

    /// Copies a shared BDD back into the master manager. The master's
    /// hash-consing makes the result canonical: it is the same node a serial
    /// computation of the same function would return.
    fn import(&self, model: &mut SymbolicModel<'_>, f: Bdd) -> BddResult {
        let shared = self.shared.as_ref().expect("shared manager exists");
        let mgr = model.manager();
        if f == shared.zero() {
            return Ok(mgr.zero());
        }
        if f == shared.one() {
            return Ok(mgr.one());
        }
        let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
        let mut stack = vec![f];
        while let Some(&n) = stack.last() {
            if memo.contains_key(&n) || n == shared.zero() || n == shared.one() {
                stack.pop();
                continue;
            }
            let (v, lo, hi) = shared.node_info(n).expect("internal node");
            let lo_done = lo == shared.zero() || lo == shared.one() || memo.contains_key(&lo);
            let hi_done = hi == shared.zero() || hi == shared.one() || memo.contains_key(&hi);
            if lo_done && hi_done {
                let mlo = Self::imported(shared, mgr, &memo, lo);
                let mhi = Self::imported(shared, mgr, &memo, hi);
                let m = mgr.make_node(v, mlo, mhi)?;
                memo.insert(n, m);
                stack.pop();
            } else {
                if !hi_done {
                    stack.push(hi);
                }
                if !lo_done {
                    stack.push(lo);
                }
            }
        }
        Ok(memo[&f])
    }

    #[inline]
    fn imported(
        shared: &SharedBddManager,
        mgr: &BddManager,
        memo: &HashMap<Bdd, Bdd>,
        n: Bdd,
    ) -> Bdd {
        if n == shared.zero() {
            mgr.zero()
        } else if n == shared.one() {
            mgr.one()
        } else {
            memo[&n]
        }
    }

    /// Splits `f` into up to `want` pairwise-disjoint slices whose union is
    /// `f`, by repeatedly decomposing the largest slice on a variable of its
    /// support.
    fn split_disjoint(
        shared: &SharedBddManager,
        f: Bdd,
        want: usize,
    ) -> Result<Vec<Bdd>, BddError> {
        let mut parts: Vec<(Bdd, bool)> = vec![(f, true)]; // (slice, splittable)
        while parts.len() < want && parts.iter().any(|&(_, s)| s) {
            // Largest still-splittable slice.
            let k = parts
                .iter()
                .enumerate()
                .filter(|(_, &(_, s))| s)
                .max_by_key(|(_, &(b, _))| shared.size(b))
                .map(|(k, _)| k)
                .expect("a splittable slice exists");
            let (b, _) = parts[k];
            match Self::split_one(shared, b)? {
                Some((p0, p1)) => {
                    parts[k] = (p0, true);
                    parts.push((p1, true));
                }
                None => parts[k].1 = false,
            }
        }
        Ok(parts.into_iter().map(|(b, _)| b).collect())
    }

    /// Splits one slice into two nonempty disjoint halves on the first
    /// support variable giving a nontrivial split, or `None` when every
    /// cofactor is empty (the slice is a single cube path).
    fn split_one(shared: &SharedBddManager, f: Bdd) -> Result<Option<(Bdd, Bdd)>, BddError> {
        let mut n = f;
        while let Some((v, lo, hi)) = shared.node_info(n) {
            if lo != shared.zero() && hi != shared.zero() {
                if n == f {
                    // Top-variable split is free: ¬v·lo ∨ v·hi.
                    let p0 = shared.make_node(v, lo, shared.zero())?;
                    let p1 = shared.make_node(v, shared.zero(), hi)?;
                    return Ok(Some((p0, p1)));
                }
                // Deeper variable: split globally with a literal.
                let pos = shared.make_node(v, shared.zero(), shared.one())?;
                let neg = shared.make_node(v, shared.one(), shared.zero())?;
                let p0 = shared.and(f, neg)?;
                let p1 = shared.and(f, pos)?;
                if p0 != shared.zero() && p1 != shared.zero() {
                    return Ok(Some((p0, p1)));
                }
                return Ok(None);
            }
            // One cofactor is ⊥: descend the live branch.
            n = if lo == shared.zero() { hi } else { lo };
        }
        Ok(None)
    }

    /// Drops master→shared memo entries when the master has collected since
    /// they were recorded: a collection can recycle master node indices, so
    /// every key is suspect. Checked immediately before each export (the
    /// master may auto-collect between any two master operations, e.g.
    /// during the `cur_to_nxt` rename inside a pre-image). The shared-side
    /// schedule handles are unaffected.
    fn refresh_master_memo(&mut self, mgr: &BddManager) {
        let gc_runs = mgr.stats().gc_runs;
        if gc_runs != self.master_gc_runs {
            self.export_memo.clear();
            self.master_gc_runs = gc_runs;
        }
    }

    /// The parallel image proper: split, fan out, combine, import.
    fn image(&mut self, model: &mut SymbolicModel<'_>, post: bool, q: Bdd) -> BddResult {
        self.maybe_shared_gc();
        self.refresh_master_memo(model.manager_ref());
        let sq = self.export(model.manager_ref(), q)?;
        let shared = self.shared.as_mut().expect("shared manager exists");
        shared.clear_poison();
        let shared = self.shared.as_ref().expect("shared manager exists");
        let sched = if post {
            self.post.as_ref().expect("schedule exported")
        } else {
            self.pre.as_ref().expect("schedule exported")
        };
        let slices = Self::split_disjoint(shared, sq, self.threads * SLICES_PER_THREAD)?;
        let queue: Mutex<Vec<Bdd>> = Mutex::new(slices);
        let partials: Mutex<Vec<Bdd>> = Mutex::new(Vec::new());
        let first_error: Mutex<Option<BddError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let mut acc = shared.zero();
                    loop {
                        let slice = queue.lock().expect("queue lock").pop();
                        let Some(slice) = slice else { break };
                        match Self::slice_image(shared, sched, slice) {
                            Ok(img) => match shared.or(acc, img) {
                                Ok(u) => acc = u,
                                Err(e) => {
                                    Self::record_error(shared, &first_error, e);
                                    return;
                                }
                            },
                            Err(e) => {
                                Self::record_error(shared, &first_error, e);
                                return;
                            }
                        }
                    }
                    partials.lock().expect("partials lock").push(acc);
                });
            }
        });
        if let Some(e) = first_error.into_inner().expect("error lock") {
            return Err(e);
        }
        let partials = partials.into_inner().expect("partials lock");
        let combined = shared.or_many_parallel(&partials, self.threads)?;
        self.import(model, combined)
    }

    /// One slice through the whole early-quantified chain.
    fn slice_image(shared: &SharedBddManager, sched: &ParSchedule, slice: Bdd) -> BddResult {
        let mut acc = slice;
        for &(rel, cube) in &sched.steps {
            if acc == shared.zero() {
                return Ok(acc);
            }
            acc = shared.and_exists(acc, rel, cube)?;
        }
        if let Some(residual) = sched.residual {
            acc = shared.exists(acc, residual)?;
        }
        Ok(acc)
    }

    /// Stores the first real error and poisons the manager so sibling
    /// workers unwind promptly; poison echoes (`Cancelled` caused by the
    /// poison flag, not the budget) never overwrite a real error.
    fn record_error(shared: &SharedBddManager, slot: &Mutex<Option<BddError>>, e: BddError) {
        let mut guard = slot.lock().expect("error lock");
        match &*guard {
            None => *guard = Some(e),
            Some(BddError::Cancelled) if e != BddError::Cancelled => *guard = Some(e),
            _ => {}
        }
        drop(guard);
        shared.poison();
    }

    /// Stop-the-world shared-side collection between images, keeping only
    /// the exported schedules. The export memo is cleared: its values may
    /// reference reclaimed shared nodes.
    fn maybe_shared_gc(&mut self) {
        let Some(shared) = self.shared.as_mut() else {
            return;
        };
        if shared.num_nodes() < self.shared_gc_threshold {
            return;
        }
        let mut roots: Vec<Bdd> = Vec::new();
        if let Some(p) = &self.post {
            roots.extend(p.roots());
        }
        if let Some(p) = &self.pre {
            roots.extend(p.roots());
        }
        shared.gc(&roots);
        self.export_memo.clear();
        self.shared_gc_threshold = (shared.num_nodes() * 2).max(SHARED_GC_THRESHOLD);
    }
}

impl std::fmt::Debug for ParImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ParImage({} threads, exported: {})",
            self.threads,
            self.shared.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSpec;
    use rfn_netlist::{Abstraction, GateOp, Netlist, SignalId};

    /// 3-bit LFSR-ish design with a couple of inputs, so the post schedule
    /// has input variables to pre-quantify.
    fn design() -> Netlist {
        let mut n = Netlist::new("par");
        let i0 = n.add_input("i0");
        let i1 = n.add_input("i1");
        let b: Vec<SignalId> = (0..3)
            .map(|k| n.add_register(&format!("b{k}"), Some(k == 0)))
            .collect();
        let x0 = n.add_gate("x0", GateOp::Xor, &[b[2], i0]);
        let x1 = n.add_gate("x1", GateOp::And, &[b[0], i1]);
        let x2 = n.add_gate("x2", GateOp::Xor, &[b[1], b[0]]);
        n.set_register_next(b[0], x0).unwrap();
        n.set_register_next(b[1], x1).unwrap();
        n.set_register_next(b[2], x2).unwrap();
        n.validate().unwrap();
        n
    }

    fn model(n: &Netlist) -> SymbolicModel<'_> {
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(n, [])
            .unwrap();
        SymbolicModel::new(n, ModelSpec::from_view(&view)).unwrap()
    }

    #[test]
    fn parallel_images_match_serial_exactly() {
        let n = design();
        let mut m = model(&n);
        let mut par = ParImage::new(3, Budget::unlimited());
        par.set_fallback_nodes(0);
        let mut frontier = m.init_states().unwrap();
        for step in 0..6 {
            let serial = m.post_image(frontier).unwrap();
            let parallel = par.post_image(&mut m, frontier).unwrap();
            assert_eq!(serial, parallel, "post image diverged at step {step}");
            let pre_serial = m.pre_image(frontier).unwrap();
            let pre_parallel = par.pre_image(&mut m, frontier).unwrap();
            assert_eq!(
                pre_serial, pre_parallel,
                "pre image diverged at step {step}"
            );
            frontier = serial;
        }
        assert!(par.stats().unique_probes > 0);
        assert!(par.parallel_images() > 0);
        assert_eq!(par.fallback_images(), 0);
    }

    #[test]
    fn small_frontiers_fall_back_to_serial() {
        let n = design();
        let mut m = model(&n);
        // The whole design is far below the default threshold, so every
        // image should take the serial path without ever building the
        // shared sidecar — and still match serial exactly (trivially so).
        let mut par = ParImage::new(3, Budget::unlimited());
        let init = m.init_states().unwrap();
        let a = par.post_image(&mut m, init).unwrap();
        let serial = m.post_image(init).unwrap();
        assert_eq!(a, serial);
        let b = par.pre_image(&mut m, init).unwrap();
        let pre_serial = m.pre_image(init).unwrap();
        assert_eq!(b, pre_serial);
        assert_eq!(par.fallback_images(), 2);
        assert_eq!(par.parallel_images(), 0);
        assert_eq!(par.stats().unique_probes, 0, "no shared manager built");
    }

    #[test]
    fn invalidate_then_reuse_is_sound() {
        let n = design();
        let mut m = model(&n);
        let mut par = ParImage::new(2, Budget::unlimited());
        par.set_fallback_nodes(0);
        let init = m.init_states().unwrap();
        let a = par.post_image(&mut m, init).unwrap();
        par.invalidate();
        let b = par.post_image(&mut m, init).unwrap();
        assert_eq!(a, b);
        let serial = m.post_image(init).unwrap();
        assert_eq!(a, serial);
        // Retired stats survive the invalidation.
        assert!(par.stats().unique_probes > 0);
    }

    #[test]
    fn cancelled_budget_fails_parallel_image() {
        let n = design();
        let mut m = model(&n);
        let budget = Budget::unlimited();
        let mut par = ParImage::new(2, budget.clone());
        par.set_fallback_nodes(0);
        let init = m.init_states().unwrap();
        budget.cancel();
        let r = par.post_image(&mut m, init);
        assert_eq!(r, Err(BddError::Cancelled));
    }
}
