//! Forward reachability with onion rings.

use std::fmt;
use std::time::{Duration, Instant};

use rfn_bdd::{Bdd, BddError, BddStats, DvoPolicy};
use rfn_govern::{Budget, Exhaustion, GovPhase};
use rfn_trace::TraceCtx;

use crate::{CommonOptions, McError, SymbolicModel};

/// Configuration for [`forward_reach`].
#[derive(Clone, Debug)]
pub struct ReachOptions {
    /// Maximum image steps before giving up.
    pub max_steps: usize,
    /// Enable dynamic variable reordering between images.
    pub reorder: bool,
    /// Node count that triggers the first reorder; doubles after each one.
    pub reorder_threshold: usize,
    /// Sifting growth bound.
    pub max_growth: f64,
    /// *When* reordering runs, once [`reorder`](ReachOptions::reorder) says
    /// it may: a declarative schedule ([`DvoPolicy::Doubling`] reproduces
    /// the historical fixed trigger exactly and is the default; growth-ratio,
    /// wall-clock and backoff policies are available via `--dvo-schedule`).
    /// The trigger floor is [`reorder_threshold`](ReachOptions::reorder_threshold).
    pub dvo: DvoPolicy,
    /// The budget and trace context shared with every other engine (see
    /// [`CommonOptions`]). The budget governs the fixpoint — wall-clock
    /// deadline (plus an optional [`GovPhase::Reach`] quota), cancellation,
    /// node and memory ceilings — and is also installed on the model's BDD
    /// manager for the duration of the call, so exhaustion is detected
    /// *inside* long-running image operations, not just between steps.
    ///
    /// The legacy `time_limit` knob is a view over the budget: see
    /// [`ReachOptions::with_time_limit`] / [`ReachOptions::time_limit`].
    pub common: CommonOptions,
    /// Enable the kernel's automatic garbage collector for the duration of
    /// the fixpoint. Rings, the reached set, the targets and the model's
    /// persistent roots are protected; image intermediates become
    /// collectible as soon as each step completes.
    pub auto_gc: bool,
    /// Node-count threshold for clustering the transition partitions.
    /// Consumers pass this to [`ModelOptions`](crate::ModelOptions) when
    /// building the [`SymbolicModel`]; `0` keeps the linear per-register
    /// schedule.
    pub cluster_limit: usize,
    /// Initial variable-order strategy. Like
    /// [`cluster_limit`](ReachOptions::cluster_limit), this is consumed at
    /// model-construction time: consumers pass it to
    /// [`ModelOptions`](crate::ModelOptions) when building the
    /// [`SymbolicModel`] this fixpoint will run on.
    pub static_order: crate::StaticOrder,
    /// Minimize the frontier against the reached set (as don't-cares) with
    /// the sibling-substitution restrict operator before each image. The
    /// frontier may be replaced by any set between itself and `reached`,
    /// which leaves every ring and the verdict unchanged while shrinking the
    /// BDD fed to the image.
    pub frontier_simplify: bool,
    /// Worker threads for image computation. `1` (the default) keeps the
    /// serial engine untouched; above one, every post/pre-image is fanned
    /// across this many scoped worker threads on a sidecar
    /// [`SharedBddManager`](rfn_bdd::SharedBddManager) via [`ParImage`](crate::ParImage).
    /// Verdicts, rings, step counts and the reached set are bit-identical
    /// for every thread count (see the [`par`](crate::ParImage) docs).
    pub bdd_threads: usize,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            max_steps: usize::MAX,
            reorder: true,
            reorder_threshold: 20_000,
            max_growth: 1.5,
            dvo: DvoPolicy::Doubling,
            common: CommonOptions::default(),
            auto_gc: true,
            cluster_limit: crate::DEFAULT_CLUSTER_LIMIT,
            static_order: crate::StaticOrder::Seed,
            frontier_simplify: true,
            bdd_threads: 1,
        }
    }
}

impl ReachOptions {
    /// Sets the maximum number of image steps.
    #[must_use]
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Enables or disables dynamic variable reordering.
    #[must_use]
    pub fn with_reorder(mut self, reorder: bool) -> Self {
        self.reorder = reorder;
        self
    }

    /// Selects the dynamic-reordering schedule (see [`DvoPolicy`]).
    #[must_use]
    pub fn with_dvo(mut self, dvo: DvoPolicy) -> Self {
        self.dvo = dvo;
        self
    }

    /// Sets the wall-clock budget for the fixpoint (a view over the shared
    /// budget: the deadline is re-anchored at this call).
    #[must_use]
    pub fn with_time_limit(mut self, limit: std::time::Duration) -> Self {
        self.common = self.common.with_time_limit(limit);
        self
    }

    /// Installs a shared resource budget (replacing any previous one).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.common = self.common.with_budget(budget);
        self
    }

    /// The wall-clock limit of the governing budget, if any (the legacy
    /// `time_limit` field as a view).
    pub fn time_limit(&self) -> Option<Duration> {
        self.common.time_limit()
    }

    /// Enables or disables the automatic garbage collector.
    #[must_use]
    pub fn with_auto_gc(mut self, auto_gc: bool) -> Self {
        self.auto_gc = auto_gc;
        self
    }

    /// Sets the transition-cluster node threshold (`0` disables clustering).
    #[must_use]
    pub fn with_cluster_limit(mut self, limit: usize) -> Self {
        self.cluster_limit = limit;
        self
    }

    /// Selects the initial variable-order strategy (see
    /// [`StaticOrder`](crate::StaticOrder)).
    #[must_use]
    pub fn with_static_order(mut self, order: crate::StaticOrder) -> Self {
        self.static_order = order;
        self
    }

    /// Enables or disables don't-care frontier minimization.
    #[must_use]
    pub fn with_frontier_simplify(mut self, simplify: bool) -> Self {
        self.frontier_simplify = simplify;
        self
    }

    /// Sets the number of image-computation worker threads (`1` = serial;
    /// values below one are treated as `1`).
    #[must_use]
    pub fn with_bdd_threads(mut self, threads: usize) -> Self {
        self.bdd_threads = threads.max(1);
        self
    }

    /// Attaches a structured-event context; each `forward_reach` call wraps
    /// itself in a `reach` span carrying the verdict, step count, cluster
    /// count and BDD peak-node counter. Disabled by default.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.common = self.common.with_trace(trace);
        self
    }
}

/// How a reachability run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReachVerdict {
    /// The fixpoint was reached without touching a target state: the
    /// unreachability property holds on this model.
    FixpointProved,
    /// A target state was reached; `step` is its BFS distance from the
    /// initial states.
    TargetHit {
        /// Number of image steps to the first target intersection.
        step: usize,
    },
    /// A resource limit (nodes, steps or time) was exceeded.
    Aborted,
}

/// Why a reachability run gave up. Carried next to
/// [`ReachVerdict::Aborted`] in [`ReachResult::abort`] so callers can tell
/// a time-out from capacity exhaustion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AbortReason {
    /// The wall-clock budget ran out.
    TimeLimit,
    /// The image-step cap was reached before the fixpoint.
    MaxSteps,
    /// The BDD manager's node limit (or the budget's node ceiling) was
    /// exceeded.
    NodeLimit,
    /// The governing budget's cancellation token was triggered.
    Cancelled,
    /// The governing budget's memory ceiling was exceeded.
    MemoryLimit,
    /// Another kernel error.
    Bdd,
}

impl AbortReason {
    pub(crate) fn of(e: &BddError) -> AbortReason {
        match e {
            BddError::NodeLimit => AbortReason::NodeLimit,
            BddError::Cancelled => AbortReason::Cancelled,
            BddError::TimeLimit => AbortReason::TimeLimit,
            BddError::MemoryLimit => AbortReason::MemoryLimit,
            _ => AbortReason::Bdd,
        }
    }

    /// Maps a budget exhaustion report onto the abort vocabulary.
    pub fn of_exhaustion(e: Exhaustion) -> AbortReason {
        match e {
            Exhaustion::Cancelled => AbortReason::Cancelled,
            Exhaustion::TimeLimit => AbortReason::TimeLimit,
            Exhaustion::MemoryLimit => AbortReason::MemoryLimit,
            Exhaustion::NodeLimit => AbortReason::NodeLimit,
            _ => AbortReason::Bdd,
        }
    }

    /// Stable lowercase token used in trace records and CLI breakdowns.
    pub fn as_str(&self) -> &'static str {
        match self {
            AbortReason::TimeLimit => "time_limit",
            AbortReason::MaxSteps => "max_steps",
            AbortReason::NodeLimit => "node_limit",
            AbortReason::Cancelled => "cancelled",
            AbortReason::MemoryLimit => "memory_limit",
            AbortReason::Bdd => "bdd_error",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AbortReason::TimeLimit => "time limit",
            AbortReason::MaxSteps => "step limit",
            AbortReason::NodeLimit => "node limit",
            AbortReason::Cancelled => "cancelled",
            AbortReason::MemoryLimit => "memory limit",
            AbortReason::Bdd => "BDD error",
        })
    }
}

/// Result of [`forward_reach`].
#[derive(Clone, Debug)]
pub struct ReachResult {
    /// How the run ended.
    pub verdict: ReachVerdict,
    /// Why the run aborted; `None` unless the verdict is
    /// [`ReachVerdict::Aborted`].
    pub abort: Option<AbortReason>,
    /// Onion rings: `rings[k]` holds the states first reached after exactly
    /// `k` steps (`rings[0]` is the initial set). On
    /// [`ReachVerdict::TargetHit`] the last ring intersects the targets.
    pub rings: Vec<Bdd>,
    /// Union of all rings.
    pub reached: Bdd,
    /// Number of image computations performed.
    pub steps: usize,
    /// Peak live node count observed.
    pub peak_nodes: usize,
    /// Kernel performance counters of the manager at the end of the run
    /// (cumulative since the manager was created or its stats were reset).
    pub stats: BddStats,
}

/// Computes a forward fixpoint from the model's initial states, stopping
/// early if `targets` is reached (the on-the-fly check of the paper's Step
/// 2).
///
/// `targets` may involve input variables (combinational watchdog outputs): a
/// ring "hits" if some state in it asserts the target under *some* input.
///
/// # Errors
///
/// Only internal errors are returned; resource exhaustion (including the BDD
/// manager's node limit) is reported as [`ReachVerdict::Aborted`], not as an
/// error, because the RFN loop treats it as an ordinary outcome.
pub fn forward_reach(
    model: &mut SymbolicModel<'_>,
    targets: Bdd,
    options: &ReachOptions,
) -> Result<ReachResult, McError> {
    forward_reach_warm(model, targets, options, &[])
}

/// [`forward_reach`] warm-started from a previously saved ring sequence
/// (see the [`store`](crate::store) module): instead of starting BFS at the
/// initial states, the loop adopts `saved_rings` as its onion rings —
/// `saved_rings[0]` must be the model's initial-state set — and resumes
/// image computation from the last ring. A complete saved fixpoint
/// re-proves in a single (empty) image; a partial one continues where it
/// stopped. Verdicts and reached sets are identical to a cold run's.
///
/// # Errors
///
/// Returns [`McError::Store`] if `saved_rings[0]` is not the model's
/// initial-state set — a stale or foreign warm-start must fail loudly, not
/// corrupt the fixpoint.
pub fn forward_reach_warm(
    model: &mut SymbolicModel<'_>,
    targets: Bdd,
    options: &ReachOptions,
    saved_rings: &[Bdd],
) -> Result<ReachResult, McError> {
    // Everything held across kernel calls inside the loop — targets, the
    // model's transition partitions and signal cache, rings, the reached
    // set — is registered in the manager's protected root set so the
    // automatic collector cannot reclaim it. The log makes the protection
    // exactly reversible on every exit path, and the collector is switched
    // off again on return so callers may hold unprotected handles as before.
    let mut span = options.common.trace.span("reach");
    // Install the governing budget on the kernel so exhaustion (cancel,
    // deadline, memory, node ceiling) is detected inside image operations.
    // The budget stays installed after the call: subsequent phases of the
    // same run (hybrid trace extraction) share it by design.
    model.manager().set_budget(options.common.budget.clone());
    let mut protect_log: Vec<Bdd> = model.persistent_roots();
    protect_log.push(targets);
    for &b in &protect_log {
        model.manager().protect(b);
    }
    if options.auto_gc {
        model.manager().set_auto_gc(true);
    }
    // Above one thread, images run on a sidecar shared manager; results are
    // imported back, so everything downstream of this dispatch is identical.
    let mut par = (options.bdd_threads > 1)
        .then(|| crate::ParImage::new(options.bdd_threads, options.common.budget.clone()));
    let result = reach_loop(
        model,
        targets,
        options,
        &mut protect_log,
        &mut par,
        saved_rings,
    );
    model.manager().set_auto_gc(false);
    for &b in &protect_log {
        model.manager().unprotect(b);
    }
    let result = result.map(|mut r| {
        r.stats = model.manager_ref().stats();
        if let Some(p) = &par {
            // Fold the shared kernel's counters (including the shard/lock
            // contention counters the serial kernel leaves at zero) into the
            // reported stats.
            r.stats.merge(&p.stats());
        }
        r
    });
    if let Ok(r) = &result {
        let verdict = match r.verdict {
            ReachVerdict::FixpointProved => "fixpoint",
            ReachVerdict::TargetHit { .. } => "target_hit",
            ReachVerdict::Aborted => "aborted",
        };
        span.record("verdict", verdict);
        if let ReachVerdict::TargetHit { step } = r.verdict {
            span.record("hit_step", step);
        }
        if let Some(reason) = r.abort {
            span.record("abort_reason", reason.as_str());
        }
        span.record("steps", r.steps);
        span.record("rings", r.rings.len());
        span.record("clusters", model.transition().num_clusters());
        span.record("peak_nodes", r.peak_nodes);
        // Parallel-engine fields only when the parallel path ran, keeping
        // serial (`bdd_threads: 1`) traces byte-identical.
        if let Some(p) = &par {
            let ps = p.stats();
            span.record("par.threads", p.threads());
            span.record("par.shard_locks", ps.shard_locks);
            span.record("par.shard_contended", ps.shard_contended);
            span.record("par.shard_peak_occupancy", ps.shard_peak_occupancy);
            // The small-frontier fallback decision, per image: how many
            // images ran on the worker pool vs. fell back to the serial
            // path because the frontier was below the cost threshold.
            span.record("par.parallel_images", p.parallel_images());
            span.record("par.fallback_images", p.fallback_images());
        }
        // Sift bookkeeping and warm-start provenance appear only when the
        // feature actually ran, keeping legacy traces byte-identical.
        if r.stats.sift_runs > 0 {
            span.record("sift.runs", r.stats.sift_runs);
            span.record("sift.unprofitable", r.stats.unprofitable_sifts);
            span.record("sift.nodes_shrunk", r.stats.sift_nodes_shrunk);
        }
        if !saved_rings.is_empty() {
            span.record("warm.rings", saved_rings.len());
        }
        record_budget(&mut span, &options.common.budget, r.peak_nodes);
        options
            .common
            .trace
            .counter("bdd.peak_nodes", r.stats.peak_nodes as u64);
    }
    result
}

/// Records `budget.*` fields on an engine span: the wall-clock remaining
/// (only when a deadline is configured, keeping traces deterministic for
/// unbudgeted runs) and the node headroom left under the ceiling.
pub(crate) fn record_budget(span: &mut rfn_trace::Span, budget: &Budget, peak_nodes: usize) {
    if let Some(remaining) = budget.remaining() {
        span.record("budget.remaining_ms", remaining.as_millis() as u64);
    }
    if budget.node_ceiling() != usize::MAX {
        span.record(
            "budget.node_headroom",
            budget.node_ceiling().saturating_sub(peak_nodes),
        );
    }
}

fn reach_loop(
    model: &mut SymbolicModel<'_>,
    targets: Bdd,
    options: &ReachOptions,
    protect_log: &mut Vec<Bdd>,
    par: &mut Option<crate::ParImage>,
    saved_rings: &[Bdd],
) -> Result<ReachResult, McError> {
    let deadline = options.common.budget.deadline_for(GovPhase::Reach);
    let mut dvo = if options.reorder {
        options.dvo.build(options.reorder_threshold)
    } else {
        DvoPolicy::Never.build(usize::MAX)
    };
    let init = match model.init_states() {
        Ok(b) => b,
        Err(e) => return Ok(aborted(model, vec![], 0, AbortReason::of(&e))),
    };
    if let Some(&first) = saved_rings.first() {
        // Canonicity makes this a handle comparison: a warm-start whose
        // ring 0 is not this model's initial-state set is stale or foreign
        // and must fail loudly instead of corrupting the fixpoint.
        if first != init {
            return Err(McError::Store(rfn_bdd::StoreError::Rebuild(
                "saved rings do not start at this model's initial states".to_owned(),
            )));
        }
    }
    model.manager().protect(init);
    protect_log.push(init);
    let mut rings = if saved_rings.is_empty() {
        vec![init]
    } else {
        saved_rings.to_vec()
    };
    // Protect every adopted ring *before* the first manager operation: the
    // or-chain below can trigger the automatic collector, whose root set is
    // the protected set plus that one call's operands — any ring not yet
    // protected at that moment would be reclaimed and its handle recycled.
    for &r in &rings[1..] {
        model.manager().protect(r);
        protect_log.push(r);
    }
    let mut reached = init;
    for &r in &rings[1..] {
        reached = match model.manager().or(reached, r) {
            Ok(b) => b,
            Err(e) => return Ok(aborted(model, rings, 0, AbortReason::of(&e))),
        };
    }
    model.manager().protect(reached);
    protect_log.push(reached);
    let mut frontier = *rings.last().expect("at least the initial ring");
    let mut steps = rings.len() - 1;
    let mut peak = model.manager_ref().num_nodes();

    let hit = |model: &mut SymbolicModel<'_>, set: Bdd| -> Result<bool, BddError> {
        Ok(model.manager().and(set, targets)? != model.manager_ref().zero())
    };

    // On a cold start this is the classic step-0 check; on a warm start
    // every adopted ring is re-checked in BFS order so the hit depth is
    // identical to what the cold run would have reported.
    for step in 0..rings.len() {
        match hit(model, rings[step]) {
            Ok(true) => {
                rings.truncate(step + 1);
                let reached = match or_all(model, &rings) {
                    Ok(b) => b,
                    Err(e) => return Ok(aborted(model, rings, step, AbortReason::of(&e))),
                };
                return Ok(ReachResult {
                    verdict: ReachVerdict::TargetHit { step },
                    abort: None,
                    rings,
                    reached,
                    steps: step,
                    peak_nodes: peak,
                    stats: BddStats::default(),
                });
            }
            Ok(false) => {}
            Err(e) => return Ok(aborted(model, rings, steps, AbortReason::of(&e))),
        }
    }

    loop {
        if steps >= options.max_steps {
            return Ok(aborted_with(
                model,
                rings,
                reached,
                steps,
                peak,
                AbortReason::MaxSteps,
            ));
        }
        if options.common.budget.is_cancelled() {
            return Ok(aborted_with(
                model,
                rings,
                reached,
                steps,
                peak,
                AbortReason::Cancelled,
            ));
        }
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Ok(aborted_with(
                    model,
                    rings,
                    reached,
                    steps,
                    peak,
                    AbortReason::TimeLimit,
                ));
            }
        }
        if let Err(e) = options
            .common
            .budget
            .check_memory(model.manager_ref().approx_bytes())
        {
            return Ok(aborted_with(
                model,
                rings,
                reached,
                steps,
                peak,
                AbortReason::of_exhaustion(e),
            ));
        }
        // Minimize the frontier against the reached set before imaging: any
        // set between the frontier and `reached` yields the same new states,
        // so the restrict operator may fill `reached ∖ frontier` freely.
        // Keep the minimized version only when it is actually smaller.
        let src = if options.frontier_simplify {
            match simplify_frontier(model, frontier, reached) {
                Ok(f) => f,
                Err(e) => {
                    return Ok(aborted_with(
                        model,
                        rings,
                        reached,
                        steps,
                        peak,
                        AbortReason::of(&e),
                    ))
                }
            }
        } else {
            frontier
        };
        // `img` is held across the `not`, where it is not an operand, so it
        // needs transient protection from the collector.
        let step_result = {
            let img = match par.as_mut() {
                Some(p) => p.post_image(model, src),
                None => model.post_image(src),
            };
            match img {
                Ok(img) => {
                    model.manager().protect(img);
                    let new = model
                        .manager()
                        .not(reached)
                        .and_then(|nr| model.manager().and(img, nr));
                    model.manager().unprotect(img);
                    new
                }
                Err(e) => Err(e),
            }
        };
        let new = match step_result {
            Ok(new) => new,
            Err(e) => {
                return Ok(aborted_with(
                    model,
                    rings,
                    reached,
                    steps,
                    peak,
                    AbortReason::of(&e),
                ))
            }
        };
        steps += 1;
        options
            .common
            .trace
            .counter("reach.image_nodes", model.manager_ref().num_nodes() as u64);
        if new == model.manager_ref().zero() {
            return Ok(ReachResult {
                verdict: ReachVerdict::FixpointProved,
                abort: None,
                rings,
                reached,
                steps,
                peak_nodes: peak,
                stats: BddStats::default(),
            });
        }
        model.manager().protect(new);
        protect_log.push(new);
        reached = match model.manager().or(reached, new) {
            Ok(b) => b,
            Err(e) => {
                return Ok(aborted_with(
                    model,
                    rings,
                    reached,
                    steps,
                    peak,
                    AbortReason::of(&e),
                ))
            }
        };
        model.manager().protect(reached);
        protect_log.push(reached);
        rings.push(new);
        peak = peak.max(model.manager_ref().num_nodes());
        match hit(model, new) {
            Ok(true) => {
                return Ok(ReachResult {
                    verdict: ReachVerdict::TargetHit { step: steps },
                    abort: None,
                    rings,
                    reached,
                    steps,
                    peak_nodes: peak,
                    stats: BddStats::default(),
                })
            }
            Ok(false) => {}
            Err(e) => {
                return Ok(aborted_with(
                    model,
                    rings,
                    reached,
                    steps,
                    peak,
                    AbortReason::of(&e),
                ))
            }
        }
        frontier = new;
        if dvo.should_sift(model.manager_ref().num_nodes()) {
            let before = model.manager_ref().num_nodes();
            let mut roots = model.persistent_roots();
            roots.extend(rings.iter().copied());
            roots.push(reached);
            roots.push(targets);
            roots.push(frontier);
            model.manager().sift_with_roots(&roots, options.max_growth);
            // The shared manager's variable order no longer matches: drop it
            // and every exported handle. The next image rebuilds both under
            // the new order.
            if let Some(p) = par.as_mut() {
                p.invalidate();
            }
            dvo.record_sift(before, model.manager_ref().num_nodes());
        }
    }
}

/// Union of a ring sequence (used when a warm-start scan truncates the
/// adopted rings at a target hit).
pub(crate) fn or_all(model: &mut SymbolicModel<'_>, rings: &[Bdd]) -> Result<Bdd, BddError> {
    let mut acc = model.manager_ref().zero();
    for &r in rings {
        acc = model.manager().or(acc, r)?;
    }
    Ok(acc)
}

/// Shrinks the frontier by treating already-reached states as don't-cares:
/// the care set is `frontier ∨ ¬reached`, so the restrict operator may map
/// `reached ∖ frontier` to anything. Because `frontier ⊆ reached`, the
/// result always lies between the frontier and the reached set, which makes
/// its image produce exactly the same new states. Returns the smaller of the
/// minimized and original frontiers.
pub(crate) fn simplify_frontier(
    model: &mut SymbolicModel<'_>,
    frontier: Bdd,
    reached: Bdd,
) -> Result<Bdd, BddError> {
    // `nr` is an operand of the `or` immediately after; no protection needed.
    let nr = model.manager().not(reached)?;
    let care = model.manager().or(frontier, nr)?;
    let min = model.manager().gc_restrict(frontier, care)?;
    if model.manager_ref().size(min) < model.manager_ref().size(frontier) {
        Ok(min)
    } else {
        Ok(frontier)
    }
}

fn aborted(
    model: &SymbolicModel<'_>,
    rings: Vec<Bdd>,
    steps: usize,
    reason: AbortReason,
) -> ReachResult {
    let zero = model.manager_ref().zero();
    ReachResult {
        verdict: ReachVerdict::Aborted,
        abort: Some(reason),
        reached: rings.first().copied().unwrap_or(zero),
        rings,
        steps,
        peak_nodes: model.manager_ref().num_nodes(),
        stats: BddStats::default(),
    }
}

fn aborted_with(
    model: &SymbolicModel<'_>,
    rings: Vec<Bdd>,
    reached: Bdd,
    steps: usize,
    peak: usize,
    reason: AbortReason,
) -> ReachResult {
    ReachResult {
        verdict: ReachVerdict::Aborted,
        abort: Some(reason),
        rings,
        reached,
        steps,
        peak_nodes: peak.max(model.manager_ref().num_nodes()),
        stats: BddStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSpec;
    use rfn_netlist::{Abstraction, Cube, GateOp, Netlist, SignalId};

    fn counter3() -> (Netlist, Vec<SignalId>) {
        // 3-bit counter that saturates at 5 (never reaches 6 or 7).
        let mut n = Netlist::new("sat5");
        let b: Vec<SignalId> = (0..3)
            .map(|k| n.add_register(&format!("b{k}"), Some(false)))
            .collect();
        // value == 5 detector (101).
        let nb1 = n.add_gate("nb1", GateOp::Not, &[b[1]]);
        let at5 = n.add_gate("at5", GateOp::And, &[b[0], nb1, b[2]]);
        let hold = n.add_gate("hold", GateOp::Not, &[at5]);
        // increment logic
        let i0 = n.add_gate("i0", GateOp::Xor, &[b[0], hold]);
        let c0 = n.add_gate("c0", GateOp::And, &[b[0], hold]);
        let i1 = n.add_gate("i1", GateOp::Xor, &[b[1], c0]);
        let c1 = n.add_gate("c1", GateOp::And, &[b[1], c0]);
        let i2 = n.add_gate("i2", GateOp::Xor, &[b[2], c1]);
        n.set_register_next(b[0], i0).unwrap();
        n.set_register_next(b[1], i1).unwrap();
        n.set_register_next(b[2], i2).unwrap();
        n.validate().unwrap();
        (n, b)
    }

    fn model(n: &Netlist) -> crate::SymbolicModel<'_> {
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(n, [])
            .unwrap();
        crate::SymbolicModel::new(n, ModelSpec::from_view(&view)).unwrap()
    }

    #[test]
    fn fixpoint_proves_unreachable_state() {
        let (n, b) = counter3();
        let mut m = model(&n);
        // 7 (111) is unreachable: the counter saturates at 5.
        let c: Cube = [(b[0], true), (b[1], true), (b[2], true)]
            .into_iter()
            .collect();
        let target = m.cube_to_bdd(&c).unwrap();
        let r = forward_reach(&mut m, target, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdict, ReachVerdict::FixpointProved);
        // Reached = {0..5}: 6 states. The manager holds 6 vars (3 cur/nxt
        // pairs); `reached` ranges over the 3 current-state vars only.
        let nv = m.manager_ref().num_vars();
        let total = m.manager().sat_count(r.reached, nv);
        assert_eq!(total / 8.0, 6.0);
    }

    #[test]
    fn target_hit_at_correct_depth() {
        let (n, b) = counter3();
        let mut m = model(&n);
        // 3 (011) is reached after exactly 3 steps.
        let c: Cube = [(b[0], true), (b[1], true), (b[2], false)]
            .into_iter()
            .collect();
        let target = m.cube_to_bdd(&c).unwrap();
        let r = forward_reach(&mut m, target, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdict, ReachVerdict::TargetHit { step: 3 });
        assert_eq!(r.rings.len(), 4);
        // The last ring contains the target.
        let last = *r.rings.last().unwrap();
        let conj = m.manager().and(last, target).unwrap();
        assert_ne!(conj, m.manager_ref().zero());
    }

    #[test]
    fn rings_are_disjoint_and_cover_reached() {
        let (n, _) = counter3();
        let mut m = model(&n);
        let zero = m.manager_ref().zero();
        let r = forward_reach(&mut m, zero, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdict, ReachVerdict::FixpointProved);
        let mut union = m.manager_ref().zero();
        for (i, &ring) in r.rings.iter().enumerate() {
            for &other in &r.rings[i + 1..] {
                let inter = m.manager().and(ring, other).unwrap();
                assert_eq!(inter, m.manager_ref().zero(), "rings overlap");
            }
            union = m.manager().or(union, ring).unwrap();
        }
        assert_eq!(union, r.reached);
    }

    #[test]
    fn node_limit_aborts_cleanly() {
        let (n, b) = counter3();
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let mut mgr = rfn_bdd::BddManager::new();
        mgr.set_node_limit(16); // absurdly small
        let mut m = match crate::SymbolicModel::with_manager(&n, ModelSpec::from_view(&view), mgr) {
            Ok(m) => m,
            Err(McError::Bdd(_)) => return, // failed even earlier: fine
            Err(e) => panic!("unexpected error {e}"),
        };
        let c: Cube = [(b[0], true)].into_iter().collect();
        let target = match m.cube_to_bdd(&c) {
            Ok(t) => t,
            Err(_) => return,
        };
        let r = forward_reach(&mut m, target, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdict, ReachVerdict::Aborted);
        assert_eq!(r.abort, Some(AbortReason::NodeLimit));
    }

    #[test]
    fn step_limit_aborts() {
        let (n, b) = counter3();
        let mut m = model(&n);
        let c: Cube = [(b[0], true), (b[1], false), (b[2], true)]
            .into_iter()
            .collect();
        let target = m.cube_to_bdd(&c).unwrap();
        let opts = ReachOptions {
            max_steps: 2,
            ..ReachOptions::default()
        };
        let r = forward_reach(&mut m, target, &opts).unwrap();
        assert_eq!(r.verdict, ReachVerdict::Aborted);
        assert_eq!(r.abort, Some(AbortReason::MaxSteps));
        assert_eq!(r.steps, 2);
    }

    #[test]
    fn time_limit_abort_reports_its_reason() {
        let (n, b) = counter3();
        let mut m = model(&n);
        let c: Cube = [(b[0], true), (b[1], false), (b[2], true)]
            .into_iter()
            .collect();
        let target = m.cube_to_bdd(&c).unwrap();
        let opts = ReachOptions::default().with_time_limit(Duration::ZERO);
        let r = forward_reach(&mut m, target, &opts).unwrap();
        assert_eq!(r.verdict, ReachVerdict::Aborted);
        assert_eq!(r.abort, Some(AbortReason::TimeLimit));
    }

    /// Frontier minimization must be invisible in the result: same rings,
    /// same reached set, same verdict — only the image inputs change.
    #[test]
    fn frontier_simplification_preserves_rings_and_verdict() {
        let (n, b) = counter3();
        let mut m_on = model(&n);
        let mut m_off = model(&n);
        let c: Cube = [(b[0], true), (b[1], true), (b[2], true)]
            .into_iter()
            .collect();
        let t_on = m_on.cube_to_bdd(&c).unwrap();
        let t_off = m_off.cube_to_bdd(&c).unwrap();
        let on = forward_reach(&mut m_on, t_on, &ReachOptions::default()).unwrap();
        let off = forward_reach(
            &mut m_off,
            t_off,
            &ReachOptions::default().with_frontier_simplify(false),
        )
        .unwrap();
        assert_eq!(on.verdict, off.verdict);
        assert_eq!(on.steps, off.steps);
        assert_eq!(on.rings.len(), off.rings.len());
        // Both models allocate variables identically, so ring sat counts are
        // directly comparable across the two managers.
        let nv = m_on.manager_ref().num_vars();
        for (&ra, &rb) in on.rings.iter().zip(off.rings.iter()) {
            assert_eq!(
                m_on.manager().sat_count(ra, nv),
                m_off.manager().sat_count(rb, nv)
            );
        }
        assert!(
            m_on.manager_ref().stats().restrict_misses > 0,
            "restrict operator never ran"
        );
    }

    /// With a threshold of one node the collector fires at every public
    /// kernel operation; any handle the reach loop or the relational product
    /// fails to protect would be reclaimed and corrupt the result.
    #[test]
    fn aggressive_auto_gc_during_reach_is_sound() {
        let (n, b) = counter3();
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let mut mgr = rfn_bdd::BddManager::new();
        mgr.set_auto_gc_threshold(1);
        let mut m =
            crate::SymbolicModel::with_manager(&n, ModelSpec::from_view(&view), mgr).unwrap();
        let c: Cube = [(b[0], true), (b[1], true), (b[2], true)]
            .into_iter()
            .collect();
        let target = m.cube_to_bdd(&c).unwrap();
        let r = forward_reach(&mut m, target, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdict, ReachVerdict::FixpointProved);
        assert!(r.stats.auto_gc_runs > 0, "collector never fired");
        let nv = m.manager_ref().num_vars();
        let total = m.manager().sat_count(r.reached, nv);
        assert_eq!(total / 8.0, 6.0);
    }

    /// Adopted warm-start rings must all be protected before the first
    /// manager operation of the adoption loop: the or-chain folding them
    /// into the reached set can trigger the collector, and any ring not yet
    /// protected at that moment would be reclaimed and its handle recycled.
    /// With a one-node threshold the collector fires on every call, so an
    /// unprotected tail ring cannot survive by luck.
    #[test]
    fn aggressive_auto_gc_during_warm_start_is_sound() {
        let (n, _) = counter3();
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let spec = ModelSpec::from_view(&view);

        // Partial cold run: enough rings that the adoption or-chain runs
        // several operations past the first collection.
        let mut m = crate::SymbolicModel::new(&n, spec.clone()).unwrap();
        let zero = m.manager_ref().zero();
        let partial =
            forward_reach(&mut m, zero, &ReachOptions::default().with_max_steps(4)).unwrap();
        assert_eq!(partial.verdict, ReachVerdict::Aborted);
        assert_eq!(partial.rings.len(), 5);
        let store = crate::store::snapshot_model(&m, "k", &partial.rings).unwrap();

        // Reference: the full cold fixpoint.
        let mut m_ref = crate::SymbolicModel::new(&n, spec.clone()).unwrap();
        let zero_ref = m_ref.manager_ref().zero();
        let full = forward_reach(&mut m_ref, zero_ref, &ReachOptions::default()).unwrap();
        assert_eq!(full.verdict, ReachVerdict::FixpointProved);

        // Warm-start under an eager collector.
        let mut mgr = rfn_bdd::BddManager::new();
        mgr.set_auto_gc_threshold(1);
        let mut m2 = crate::SymbolicModel::with_manager(&n, spec, mgr).unwrap();
        let adopted = crate::store::apply_store(&mut m2, &store, "k").unwrap();
        let zero2 = m2.manager_ref().zero();
        let warm = forward_reach_warm(&mut m2, zero2, &ReachOptions::default(), &adopted).unwrap();
        assert_eq!(warm.verdict, ReachVerdict::FixpointProved);
        assert!(warm.stats.auto_gc_runs > 0, "collector never fired");
        assert_eq!(warm.steps, full.steps);
        assert_eq!(warm.rings.len(), full.rings.len());
        let nv = m2.manager_ref().num_vars();
        for (&wr, &fr) in warm.rings.iter().zip(full.rings.iter()) {
            assert_eq!(
                m2.manager().sat_count(wr, nv),
                m_ref.manager().sat_count(fr, nv)
            );
        }
        // The surviving handles serialize into a structurally valid store:
        // rebuilding them in a fresh model must succeed.
        let store2 = crate::store::snapshot_model(&m2, "k", &warm.rings).unwrap();
        let mut m3 = crate::SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let rebuilt = crate::store::apply_store(&mut m3, &store2, "k").unwrap();
        assert_eq!(rebuilt.len(), warm.rings.len());
    }

    /// Disabling the knob must keep the collector off even with an eager
    /// threshold.
    #[test]
    fn auto_gc_knob_disables_collection() {
        let (n, _) = counter3();
        let view = Abstraction::from_registers(n.registers().to_vec())
            .view(&n, [])
            .unwrap();
        let mut mgr = rfn_bdd::BddManager::new();
        mgr.set_auto_gc_threshold(1);
        let mut m =
            crate::SymbolicModel::with_manager(&n, ModelSpec::from_view(&view), mgr).unwrap();
        let zero = m.manager_ref().zero();
        let opts = ReachOptions {
            auto_gc: false,
            ..ReachOptions::default()
        };
        let r = forward_reach(&mut m, zero, &opts).unwrap();
        assert_eq!(r.verdict, ReachVerdict::FixpointProved);
        assert_eq!(r.stats.auto_gc_runs, 0);
    }

    #[test]
    fn initial_target_hits_at_step_zero() {
        let (n, b) = counter3();
        let mut m = model(&n);
        let c: Cube = [(b[0], false), (b[1], false), (b[2], false)]
            .into_iter()
            .collect();
        let target = m.cube_to_bdd(&c).unwrap();
        let r = forward_reach(&mut m, target, &ReachOptions::default()).unwrap();
        assert_eq!(r.verdict, ReachVerdict::TargetHit { step: 0 });
    }
}

#[cfg(test)]
mod comb_target_tests {
    use super::*;
    use crate::ModelSpec;
    use rfn_netlist::{Abstraction, GateOp, Netlist};

    /// Targets that depend on *input* variables: a state hits if some input
    /// valuation asserts the watched gate.
    #[test]
    fn combinational_targets_hit_under_some_input() {
        // r' = i ; watch = r AND j. State r=1 is target-hitting (choose j=1).
        let mut n = Netlist::new("c");
        let i = n.add_input("i");
        let j = n.add_input("j");
        let r = n.add_register("r", Some(false));
        n.set_register_next(r, i).unwrap();
        let watch = n.add_gate("watch", GateOp::And, &[r, j]);
        n.validate().unwrap();
        let view = Abstraction::from_registers([r]).view(&n, [watch]).unwrap();
        let mut m = crate::SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let target = m.signal_bdd(watch).unwrap();
        let res = forward_reach(&mut m, target, &ReachOptions::default()).unwrap();
        // Reset state r=0 cannot assert watch; r=1 arrives after one step.
        assert_eq!(res.verdict, ReachVerdict::TargetHit { step: 1 });
    }

    /// With the gating register stuck low, the same combinational target is
    /// unreachable and the fixpoint proves it.
    #[test]
    fn combinational_targets_proved_unreachable() {
        let mut n = Netlist::new("c2");
        let j = n.add_input("j");
        let r = n.add_register("r", Some(false));
        n.set_register_next(r, r).unwrap(); // stuck at 0
        let watch = n.add_gate("watch", GateOp::And, &[r, j]);
        n.validate().unwrap();
        let view = Abstraction::from_registers([r]).view(&n, [watch]).unwrap();
        let mut m = crate::SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let target = m.signal_bdd(watch).unwrap();
        let res = forward_reach(&mut m, target, &ReachOptions::default()).unwrap();
        assert_eq!(res.verdict, ReachVerdict::FixpointProved);
    }
}
