//! Group verification for the plain symbolic model checker: one shared
//! model, reached set and warm-start store entry per COI cluster.
//!
//! [`verify_plain_group`] is the multi-property counterpart of
//! [`verify_plain`](crate::verify_plain): it builds *one* symbolic model over
//! the union cone of influence of a property group, turns every member into a
//! target BDD, and discharges all of them with a single
//! [`forward_reach_multi`] fixpoint. Per-property verdicts and falsification
//! depths are identical to dedicated runs (see the [`multi`](crate::multi
//! docs) module); the group pays for one model build, one cluster schedule,
//! one FORCE order and — when a store directory is configured — one
//! warm-start store entry instead of one per property.

use std::path::PathBuf;
use std::time::Instant;

use rfn_bdd::Bdd;
use rfn_netlist::{Abstraction, Coi, Netlist, Property};

use crate::{
    forward_reach_multi_warm, McError, ModelSpec, PlainOptions, PlainReport, PlainVerdict,
    SymbolicModel, TargetVerdict,
};

/// Configuration for [`verify_plain_group`].
#[derive(Clone, Debug, Default)]
pub struct GroupOptions {
    /// Options for the underlying plain model checker (budget, trace,
    /// reachability knobs). The trace context also wraps the group run in a
    /// `plain_mc_group` span.
    pub plain: PlainOptions,
    /// Directory of the warm-start store. When set, the group loads the
    /// entry keyed by `(design hash, group key)` before the fixpoint and
    /// saves its variable order and rings back after a conclusive run — one
    /// entry per *group*, not per property.
    pub store_dir: Option<PathBuf>,
    /// Canonical design identity used to key the warm-start store. Defaults
    /// to the netlist's structural hash; callers loading designs from files
    /// (via `DesignSource`) pass the content hash instead, so a renamed
    /// file keeps its warm start and a changed file never steals one.
    pub design_hash: Option<u64>,
}

impl GroupOptions {
    /// Uses the given plain-engine options.
    #[must_use]
    pub fn with_plain(mut self, plain: PlainOptions) -> Self {
        self.plain = plain;
        self
    }

    /// Enables the per-group warm-start store under `dir`.
    #[must_use]
    pub fn with_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Keys the warm-start store by an explicit canonical design hash
    /// instead of the netlist's structural hash.
    #[must_use]
    pub fn with_design_hash(mut self, hash: u64) -> Self {
        self.design_hash = Some(hash);
        self
    }
}

/// Verifies a group of properties against one shared model and fixpoint.
///
/// `key` names the group's warm-start store entry (ignored unless
/// [`GroupOptions::store_dir`] is set); use
/// [`PropertyGroup::key`](rfn_netlist::PropertyGroup::key) for a
/// deterministic name. Returns one [`PlainReport`] per property, indexed
/// like the input slice: COI sizes are each property's own, while steps,
/// peak nodes, elapsed time and kernel stats describe the shared run.
///
/// # Errors
///
/// Internal errors only; capacity exhaustion is reported per property as
/// [`PlainVerdict::OutOfCapacity`]. A corrupt or mismatched store entry is
/// an error ([`McError::Store`]) — a warm start must never silently degrade
/// the run — while a missing entry is an ordinary cold start.
pub fn verify_plain_group(
    netlist: &Netlist,
    properties: &[Property],
    key: &str,
    options: &GroupOptions,
) -> Result<Vec<PlainReport>, McError> {
    let mut span = options.plain.common.trace.span_with(
        "plain_mc_group",
        vec![
            ("group".to_owned(), key.into()),
            ("members".to_owned(), properties.len().into()),
        ],
    );
    let result = verify_group_inner(netlist, properties, key, options);
    if let Ok(reports) = &result {
        let falsified = reports
            .iter()
            .filter(|r| matches!(r.verdict, PlainVerdict::Falsified { .. }))
            .count();
        let proved = reports
            .iter()
            .filter(|r| matches!(r.verdict, PlainVerdict::Proved))
            .count();
        span.record("falsified", falsified);
        span.record("proved", proved);
        if let Some(r) = reports.first() {
            span.record("steps", r.steps);
            span.record("peak_nodes", r.peak_nodes);
        }
    }
    // Per-property spans carry the same fields as a dedicated
    // `verify_plain` run, so downstream consumers keep one span per
    // property whether or not grouping is on.
    if let Ok(reports) = &result {
        for (p, report) in properties.iter().zip(reports) {
            let mut ps = options.plain.common.trace.span_with(
                "plain_mc",
                vec![("property".to_owned(), p.name.as_str().into())],
            );
            let verdict = match report.verdict {
                PlainVerdict::Proved => "proved",
                PlainVerdict::Falsified { .. } => "falsified",
                PlainVerdict::OutOfCapacity => "out_of_capacity",
            };
            ps.record("verdict", verdict);
            if let PlainVerdict::Falsified { depth } = report.verdict {
                ps.record("depth", depth);
            }
            if let Some(reason) = report.abort {
                ps.record("abort_reason", reason.as_str());
            }
            ps.record("coi_registers", report.coi_registers);
            ps.record("coi_gates", report.coi_gates);
            ps.record("steps", report.steps);
            ps.record("peak_nodes", report.peak_nodes);
        }
    }
    result
}

fn verify_group_inner(
    netlist: &Netlist,
    properties: &[Property],
    key: &str,
    options: &GroupOptions,
) -> Result<Vec<PlainReport>, McError> {
    let start = Instant::now();
    // Per-property COIs feed the reports (identical to dedicated runs); the
    // union COI sizes the shared model.
    let member_cois: Vec<Coi> = properties
        .iter()
        .map(|p| Coi::of(netlist, [p.signal]))
        .collect();
    let union_coi = Coi::of(netlist, properties.iter().map(|p| p.signal));
    let out_of_capacity = |reason, stats: rfn_bdd::BddStats, elapsed| -> Vec<PlainReport> {
        member_cois
            .iter()
            .map(|coi| PlainReport {
                verdict: PlainVerdict::OutOfCapacity,
                abort: Some(reason),
                coi_registers: coi.num_registers(),
                coi_gates: coi.num_gates(),
                steps: 0,
                peak_nodes: options.plain.node_limit(),
                elapsed,
                stats,
            })
            .collect()
    };

    let abstraction = Abstraction::from_registers(union_coi.registers().iter().copied());
    let view = abstraction.view(netlist, properties.iter().map(|p| p.signal))?;
    let mut mgr = rfn_bdd::BddManager::new();
    mgr.set_budget(options.plain.common.budget.clone());
    let mut reach_opts = options.plain.reach.clone();
    reach_opts.common = options.plain.common.clone();
    let model_opts = crate::ModelOptions {
        cluster_limit: reach_opts.cluster_limit,
        static_order: reach_opts.static_order,
    };
    let build = SymbolicModel::with_options(netlist, ModelSpec::from_view(&view), mgr, model_opts);
    let mut model = match build {
        Ok(m) => m,
        Err(McError::Bdd(e)) => {
            return Ok(out_of_capacity(
                crate::AbortReason::of(&e),
                rfn_bdd::BddStats::default(),
                start.elapsed(),
            ));
        }
        Err(e) => return Err(e),
    };
    let targets = (|| -> Result<Vec<Bdd>, McError> {
        let mut ts = Vec::with_capacity(properties.len());
        for p in properties {
            let sig = model.signal_bdd(p.signal)?;
            let t = if p.value {
                sig
            } else {
                model.manager().not(sig)?
            };
            // Targets must survive until the fixpoint protects them; the
            // next signal_bdd call can collect unprotected intermediates.
            model.manager().protect(t);
            ts.push(t);
        }
        for &t in &ts {
            model.manager().unprotect(t);
        }
        Ok(ts)
    })();
    let targets = match targets {
        Ok(t) => t,
        Err(McError::Bdd(e)) => {
            return Ok(out_of_capacity(
                crate::AbortReason::of(&e),
                model.manager_ref().stats(),
                start.elapsed(),
            ));
        }
        Err(e) => return Err(e),
    };

    // Warm start: one store entry per group. A missing entry is a cold
    // start; a corrupt or foreign one fails loudly.
    let hash = options
        .design_hash
        .unwrap_or_else(|| netlist.structural_hash());
    let saved = match &options.store_dir {
        Some(dir) => match crate::store::load_store(dir, hash, key)? {
            Some(store) => crate::store::apply_store_as(&mut model, &store, key, hash)?,
            None => Vec::new(),
        },
        None => Vec::new(),
    };

    let result = forward_reach_multi_warm(&mut model, &targets, &reach_opts, &saved)?;

    // Persist the group's order and rings for the next run, but only after
    // a conclusive fixpoint: an aborted run's rings may be truncated by the
    // failure and a save error must never destroy the verdicts.
    if let Some(dir) = &options.store_dir {
        if result.abort.is_none() {
            match crate::store::snapshot_model(&model, key, &result.rings)
                .map(|mut store| {
                    store.design_hash = hash;
                    store
                })
                .and_then(|store| crate::store::save_store(dir, &store))
            {
                Ok(_) => {}
                Err(_) => options
                    .plain
                    .common
                    .trace
                    .counter("group.store_save_error", 1),
            }
        }
    }

    let elapsed = start.elapsed();
    Ok(properties
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let verdict = match result.verdicts[i] {
                TargetVerdict::Proved => PlainVerdict::Proved,
                TargetVerdict::Hit { step } => PlainVerdict::Falsified { depth: step },
                TargetVerdict::Aborted => PlainVerdict::OutOfCapacity,
            };
            PlainReport {
                verdict,
                abort: match result.verdicts[i] {
                    TargetVerdict::Aborted => result.abort,
                    _ => None,
                },
                coi_registers: member_cois[i].num_registers(),
                coi_gates: member_cois[i].num_gates(),
                steps: result.steps,
                peak_nodes: result.peak_nodes,
                elapsed,
                stats: result.stats,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_plain;
    use rfn_netlist::{GateOp, PropertyGroups};

    /// Two independent saturating 2-bit counters, three properties each:
    /// one falsifiable shallow, one falsifiable deeper, one safe.
    fn two_counters() -> (Netlist, Vec<Property>) {
        let mut n = Netlist::new("two_counters");
        let mut props = Vec::new();
        for c in 0..2 {
            let b0 = n.add_register(&format!("c{c}_b0"), Some(false));
            let b1 = n.add_register(&format!("c{c}_b1"), Some(false));
            let full = n.add_gate(&format!("c{c}_full"), GateOp::And, &[b0, b1]);
            let nfull = n.add_gate(&format!("c{c}_nfull"), GateOp::Not, &[full]);
            let t0 = n.add_gate(&format!("c{c}_t0"), GateOp::Xor, &[b0, nfull]);
            let carry = n.add_gate(&format!("c{c}_carry"), GateOp::And, &[b0, nfull]);
            let t1 = n.add_gate(&format!("c{c}_t1"), GateOp::Xor, &[b1, carry]);
            n.set_register_next(b0, t0).unwrap();
            n.set_register_next(b1, t1).unwrap();
            // value == 2 detector (b0=0, b1=1): first true at depth 2.
            let nb0 = n.add_gate(&format!("c{c}_nb0"), GateOp::Not, &[b0]);
            let at2 = n.add_gate(&format!("c{c}_at2"), GateOp::And, &[nb0, b1]);
            // Watchdog latches if the saturating counter ever wraps from 11
            // to 00 — structurally impossible, so the property is safe.
            let nb1 = n.add_gate(&format!("c{c}_nb1"), GateOp::Not, &[b1]);
            let wrapped = n.add_gate(&format!("c{c}_wrapped"), GateOp::And, &[full, nb0, nb1]);
            let w = n.add_register(&format!("c{c}_w"), Some(false));
            let worwrap = n.add_gate(&format!("c{c}_worwrap"), GateOp::Or, &[w, wrapped]);
            n.set_register_next(w, worwrap).unwrap();
            props.push(Property::never(&n, format!("c{c}_b0_high"), b0)); // depth 1
            props.push(Property::never(&n, format!("c{c}_at2"), at2)); // depth 2
            props.push(Property::never(&n, format!("c{c}_no_wrap"), w)); // safe
        }
        n.validate().unwrap();
        (n, props)
    }

    #[test]
    fn group_reports_match_dedicated_runs() {
        let (n, props) = two_counters();
        let opts = GroupOptions::default();
        let reports = verify_plain_group(&n, &props, "all", &opts).unwrap();
        assert_eq!(reports.len(), props.len());
        for (p, grouped) in props.iter().zip(&reports) {
            let solo = verify_plain(&n, p, &PlainOptions::default()).unwrap();
            assert_eq!(grouped.verdict, solo.verdict, "property {}", p.name);
            assert_eq!(grouped.coi_registers, solo.coi_registers);
            assert_eq!(grouped.coi_gates, solo.coi_gates);
        }
    }

    #[test]
    fn clustered_groups_match_dedicated_runs() {
        let (n, props) = two_counters();
        let groups = PropertyGroups::cluster(&n, &props, 0.5);
        assert_eq!(groups.len(), 2, "two independent counters, two clusters");
        assert_eq!(groups.num_non_singleton(), 2);
        for g in groups.groups() {
            let members: Vec<Property> = g.members().iter().map(|&i| props[i].clone()).collect();
            let key = g.key(&props);
            let reports = verify_plain_group(&n, &members, &key, &GroupOptions::default()).unwrap();
            for (p, grouped) in members.iter().zip(&reports) {
                let solo = verify_plain(&n, p, &PlainOptions::default()).unwrap();
                assert_eq!(grouped.verdict, solo.verdict, "property {}", p.name);
            }
        }
    }

    #[test]
    fn store_round_trip_is_one_entry_per_group() {
        let (n, props) = two_counters();
        let dir = std::env::temp_dir().join(format!("rfn-mc-group-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = GroupOptions::default().with_store_dir(&dir);
        let cold = verify_plain_group(&n, &props, "all", &opts).unwrap();
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 1, "one store entry for the whole group");
        let warm = verify_plain_group(&n, &props, "all", &opts).unwrap();
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.verdict, w.verdict);
            assert_eq!(c.steps, w.steps);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn node_limit_reports_out_of_capacity_for_all_members() {
        let (n, props) = two_counters();
        let opts = GroupOptions::default().with_plain(PlainOptions::default().with_node_limit(4));
        let reports = verify_plain_group(&n, &props, "all", &opts).unwrap();
        for r in &reports {
            assert_eq!(r.verdict, PlainVerdict::OutOfCapacity);
            assert!(r.abort.is_some());
        }
    }
}
