//! BDD-based symbolic model checking for the RFN verification tool.
//!
//! This crate implements the *formal engine* of the paper: symbolic forward
//! reachability (post-image fixpoints with onion rings), pre-image
//! computation — including the variant that keeps input variables alive,
//! which the hybrid BDD–ATPG engine needs for its min-cut pre-images — and
//! the plain symbolic model checker with cone-of-influence reduction that
//! serves as the Table 1 baseline.
//!
//! The central type is [`SymbolicModel`]: a BDD encoding of a [`ModelSpec`]
//! (registers + free inputs + gates, extracted from an abstract model or a
//! min-cut design). Several transition relations can share one model's
//! variable space, which is how the hybrid engine intersects onion rings of
//! the abstract model with pre-images computed on the min-cut design.
//!
//! # Example
//!
//! Prove that a self-looping flag never rises:
//!
//! ```
//! use rfn_netlist::{Netlist, GateOp, Abstraction, Property};
//! use rfn_mc::{SymbolicModel, ModelSpec, forward_reach, ReachOptions, ReachVerdict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut n = Netlist::new("d");
//! let flag = n.add_register("flag", Some(false));
//! n.set_register_next(flag, flag)?; // once low, always low
//! n.validate()?;
//!
//! let view = Abstraction::from_registers([flag]).view(&n, [])?;
//! let mut model = SymbolicModel::new(&n, ModelSpec::from_view(&view))?;
//! let target = model.signal_bdd(flag)?; // states with flag == 1
//! let result = forward_reach(&mut model, target, &ReachOptions::default())?;
//! assert_eq!(result.verdict, ReachVerdict::FixpointProved);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod group;
mod model;
mod multi;
mod options;
mod par;
mod plain;
mod reach;
pub mod store;

pub use error::McError;
pub use group::{verify_plain_group, GroupOptions};
pub use model::{
    ModelOptions, ModelSpec, StateCube, StaticOrder, SymbolicModel, TransitionRelation, VarKind,
    DEFAULT_CLUSTER_LIMIT,
};
pub use multi::{forward_reach_multi, forward_reach_multi_warm, MultiReachResult, TargetVerdict};
pub use options::CommonOptions;
pub use par::ParImage;
pub use plain::{verify_plain, PlainOptions, PlainReport, PlainVerdict};
pub use reach::{
    forward_reach, forward_reach_warm, AbortReason, ReachOptions, ReachResult, ReachVerdict,
};
pub use rfn_bdd::{BddStats, DvoPolicy, StoreError};
