//! Property tests: ATPG against exhaustive reachability on small designs.

use proptest::prelude::*;
use rfn_atpg::{AtpgOptions, SequentialAtpg};
use rfn_netlist::{Cube, GateOp, Netlist, SignalId};
use rfn_sim::Simulator;

/// Random layered sequential netlist with few inputs/registers so exhaustive
/// search stays cheap.
fn arb_netlist(n_inputs: usize, n_regs: usize, n_gates: usize) -> impl Strategy<Value = Netlist> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
    ]);
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>()), n_gates);
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    (gates, nexts).prop_map(move |(gates, nexts)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fanins: Vec<SignalId> = if matches!(op, GateOp::Not) {
                vec![fa]
            } else {
                vec![fa, fb]
            };
            pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            n.set_register_next(regs[k], pool[nx as usize % pool.len()])
                .unwrap();
        }
        n
    })
}

/// Exhaustively checks whether some input sequence of length `depth - 1`
/// drives the design from reset into a state satisfying `target`.
fn exhaustive_reachable(n: &Netlist, depth: usize, target: &Cube) -> bool {
    let inputs = n.inputs().to_vec();
    let ni = inputs.len();
    let seqs = 1u64 << (ni * (depth - 1));
    for seq in 0..seqs {
        let mut sim = Simulator::new(n).unwrap();
        sim.reset();
        let mut ok = true;
        for t in 0..depth {
            if t + 1 == depth {
                break;
            }
            let cube: Cube = inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, (seq >> (t * ni + k)) & 1 == 1))
                .collect();
            sim.step(&cube);
            let _ = &mut ok;
        }
        let hit = target
            .iter()
            .all(|(s, v)| sim.value(s).to_bool() == Some(v));
        if hit && ok {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ATPG agrees with exhaustive reachability, and SAT witnesses replay.
    #[test]
    fn atpg_matches_exhaustive(
        n in arb_netlist(2, 3, 10),
        reg_pick in any::<u8>(),
        val in any::<bool>(),
        depth in 1usize..4,
    ) {
        let regs = n.registers();
        let r = regs[reg_pick as usize % regs.len()];
        let target: Cube = [(r, val)].into_iter().collect();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        let outcome = atpg.find_trace(depth, &target, &[]);
        let expected = exhaustive_reachable(&n, depth, &target);
        match outcome {
            rfn_atpg::AtpgOutcome::Satisfiable(trace) => {
                prop_assert!(expected, "ATPG found a trace where none exists");
                prop_assert_eq!(trace.num_cycles(), depth);
                let mut sim = Simulator::new(&n).unwrap();
                prop_assert!(sim.replay(&trace), "witness does not replay");
                prop_assert_eq!(sim.value(r).to_bool(), Some(val));
            }
            rfn_atpg::AtpgOutcome::Unsatisfiable => {
                prop_assert!(!expected, "ATPG missed a reachable target");
            }
            rfn_atpg::AtpgOutcome::Aborted => {
                // Limits are generous; abort would indicate pathology here.
                prop_assert!(false, "unexpected abort on tiny design");
            }
        }
    }

    /// Two-literal targets: ATPG still agrees with exhaustive search.
    #[test]
    fn atpg_matches_exhaustive_two_literals(
        n in arb_netlist(2, 3, 10),
        vals in any::<u8>(),
        depth in 1usize..4,
    ) {
        let regs = n.registers();
        let r0 = regs[0];
        let r1 = regs[1];
        let target: Cube = [(r0, vals & 1 == 1), (r1, vals & 2 == 2)]
            .into_iter()
            .collect();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        let outcome = atpg.find_trace(depth, &target, &[]);
        let expected = exhaustive_reachable(&n, depth, &target);
        prop_assert_eq!(outcome.is_sat(), expected);
        prop_assert!(!matches!(outcome, rfn_atpg::AtpgOutcome::Aborted));
    }

    /// Guidance that matches a real witness never turns SAT into UNSAT.
    #[test]
    fn consistent_guidance_preserves_sat(
        n in arb_netlist(2, 3, 10),
        reg_pick in any::<u8>(),
        depth in 2usize..4,
    ) {
        let regs = n.registers();
        let r = regs[reg_pick as usize % regs.len()];
        let target: Cube = [(r, true)].into_iter().collect();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        if let rfn_atpg::AtpgOutcome::Satisfiable(trace) = atpg.find_trace(depth, &target, &[]) {
            // Use the witness's own state cubes as guidance: still SAT.
            let guidance: Vec<Cube> = trace.steps().iter().map(|s| s.state.clone()).collect();
            let again = atpg.find_trace(depth, &target, &guidance);
            prop_assert!(again.is_sat(), "witness-derived guidance broke SAT");
        }
    }
}
