//! SCOAP-style controllability estimates used by the PODEM backtrace.

use rfn_netlist::{GateOp, NetKind, SignalId};

use crate::scope::{Role, Scope};

/// Controllability cost per signal: `cc0[s]` estimates how hard it is to set
/// `s` to 0, `cc1[s]` to 1. Lower is easier. Registers are handled with a
/// bounded fixpoint so sequential depth is reflected coarsely.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp};
/// use rfn_atpg::{Scoap, Scope};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.add_gate("g", GateOp::And, &[a, b]);
/// n.add_output("g", g);
/// let scope = Scope::whole_design(&n)?;
/// let scoap = Scoap::compute(&scope);
/// // Making an AND output 1 needs both inputs; 0 needs only one.
/// assert!(scoap.cc1(g) > scoap.cc0(g));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
}

const HARD: u32 = 1 << 24;
/// Cost added when crossing a register boundary (one time frame).
const FRAME_COST: u32 = 8;
/// Fixpoint sweeps for sequential feedback.
const SWEEPS: usize = 3;

impl Scoap {
    /// Computes controllability for every signal in the scope.
    pub fn compute(scope: &Scope<'_>) -> Self {
        let n = scope.netlist();
        let len = n.num_signals();
        let mut cc0 = vec![HARD; len];
        let mut cc1 = vec![HARD; len];
        for s in n.signals() {
            match scope.role(s) {
                Role::Input => {
                    cc0[s.index()] = 1;
                    cc1[s.index()] = 1;
                }
                Role::Const(v) => {
                    if v {
                        cc1[s.index()] = 0;
                    } else {
                        cc0[s.index()] = 0;
                    }
                }
                Role::Register => {
                    // Seeded from the reset value; refined by the sweeps.
                    // The reset value is free; the opposite value starts as
                    // unreachable and is refined through the next-state
                    // logic by the sweeps below.
                    match n.register_init(s) {
                        Some(false) => cc0[s.index()] = 1,
                        Some(true) => cc1[s.index()] = 1,
                        None => {
                            cc0[s.index()] = 1;
                            cc1[s.index()] = 1;
                        }
                    }
                }
                _ => {}
            }
        }
        for _ in 0..SWEEPS {
            for &g in scope.gates() {
                let NetKind::Gate { op, fanins } = n.kind(g) else {
                    continue;
                };
                let (c0, c1) = gate_cc(*op, fanins, &cc0, &cc1);
                cc0[g.index()] = c0;
                cc1[g.index()] = c1;
            }
            for &r in scope.registers() {
                let next = n.register_next(r);
                let through0 = cc0[next.index()].saturating_add(FRAME_COST);
                let through1 = cc1[next.index()].saturating_add(FRAME_COST);
                cc0[r.index()] = cc0[r.index()].min(through0);
                cc1[r.index()] = cc1[r.index()].min(through1);
            }
        }
        Scoap { cc0, cc1 }
    }

    /// Cost estimate of driving `s` to 0.
    pub fn cc0(&self, s: SignalId) -> u32 {
        self.cc0[s.index()]
    }

    /// Cost estimate of driving `s` to 1.
    pub fn cc1(&self, s: SignalId) -> u32 {
        self.cc1[s.index()]
    }

    /// Cost of driving `s` to the given value.
    pub fn cost(&self, s: SignalId, value: bool) -> u32 {
        if value {
            self.cc1(s)
        } else {
            self.cc0(s)
        }
    }
}

fn gate_cc(op: GateOp, fanins: &[SignalId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let sum = |sel: &dyn Fn(SignalId) -> u32| -> u32 {
        fanins
            .iter()
            .fold(0u32, |a, &f| a.saturating_add(sel(f)))
            .saturating_add(1)
    };
    let min = |sel: &dyn Fn(SignalId) -> u32| -> u32 {
        fanins
            .iter()
            .map(|&f| sel(f))
            .min()
            .unwrap_or(HARD)
            .saturating_add(1)
    };
    let f0 = |f: SignalId| cc0[f.index()];
    let f1 = |f: SignalId| cc1[f.index()];
    match op {
        GateOp::Buf => (f0(fanins[0]) + 1, f1(fanins[0]) + 1),
        GateOp::Not => (f1(fanins[0]) + 1, f0(fanins[0]) + 1),
        GateOp::And => (min(&f0), sum(&f1)),
        GateOp::Nand => (sum(&f1), min(&f0)),
        GateOp::Or => (sum(&f0), min(&f1)),
        GateOp::Nor => (min(&f1), sum(&f0)),
        // Parity: crude symmetric estimate (exact parity CC is exponential in
        // care combinations; the min/sum mix is the usual approximation).
        GateOp::Xor | GateOp::Xnor => {
            let all0 = sum(&f0);
            let all1 = sum(&f1);
            let mixed = min(&f0).saturating_add(min(&f1));
            let even = all0.min(if fanins.len().is_multiple_of(2) {
                all1
            } else {
                HARD
            });
            let c0 = even.min(mixed);
            let c1 = all1.min(mixed);
            if matches!(op, GateOp::Xor) {
                (c0, c1)
            } else {
                (c1, c0)
            }
        }
        GateOp::Mux => {
            let (s, d0, d1) = (fanins[0], fanins[1], fanins[2]);
            let via0 = |want0: bool| {
                cc0[s.index()].saturating_add(if want0 {
                    cc0[d0.index()]
                } else {
                    cc1[d0.index()]
                })
            };
            let via1 = |want0: bool| {
                cc1[s.index()].saturating_add(if want0 {
                    cc0[d1.index()]
                } else {
                    cc1[d1.index()]
                })
            };
            (
                via0(true).min(via1(true)).saturating_add(1),
                via0(false).min(via1(false)).saturating_add(1),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::Netlist;

    #[test]
    fn and_or_duality() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let and_g = n.add_gate("and", GateOp::And, &[a, b]);
        let or_g = n.add_gate("or", GateOp::Or, &[a, b]);
        let scope = Scope::whole_design(&n).unwrap();
        let s = Scoap::compute(&scope);
        assert!(s.cc1(and_g) > s.cc0(and_g));
        assert!(s.cc0(or_g) > s.cc1(or_g));
        assert_eq!(s.cc1(and_g), s.cc0(or_g));
    }

    #[test]
    fn constants_are_one_sided() {
        let mut n = Netlist::new("d");
        let c1 = n.add_const("one", true);
        let c0 = n.add_const("zero", false);
        let scope = Scope::whole_design(&n).unwrap();
        let s = Scoap::compute(&scope);
        assert_eq!(s.cc1(c1), 0);
        assert!(s.cc0(c1) >= HARD);
        assert_eq!(s.cc0(c0), 0);
        assert!(s.cc1(c0) >= HARD);
    }

    #[test]
    fn register_chains_accumulate_frame_cost() {
        // r2 <- r1 <- i : setting r2 is harder than setting r1.
        let mut n = Netlist::new("d");
        let i = n.add_input("i");
        let r1 = n.add_register("r1", Some(false));
        let r2 = n.add_register("r2", Some(false));
        n.set_register_next(r1, i).unwrap();
        n.set_register_next(r2, r1).unwrap();
        let scope = Scope::whole_design(&n).unwrap();
        let s = Scoap::compute(&scope);
        assert!(s.cc1(r2) > s.cc1(r1));
        // Reset values are cheap.
        assert_eq!(s.cc0(r1), 1);
    }

    #[test]
    fn deep_cones_cost_more() {
        let mut n = Netlist::new("d");
        let mut sig = n.add_input("i0");
        for k in 0..6 {
            let j = n.add_input(&format!("j{k}"));
            sig = n.add_gate(&format!("g{k}"), GateOp::And, &[sig, j]);
        }
        let shallow = n.add_input("s");
        let scope = Scope::whole_design(&n).unwrap();
        let s = Scoap::compute(&scope);
        assert!(s.cc1(sig) > s.cc1(shallow));
    }
}
