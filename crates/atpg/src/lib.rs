//! Combinational and sequential ATPG justification engines for the RFN
//! verification tool.
//!
//! RFN leans on ATPG in three places (all Section 2 of the DAC 2001 paper):
//!
//! 1. the **hybrid engine** uses *combinational* ATPG to lift min-cut cubes
//!    to no-cut cubes on the abstract model,
//! 2. *sequential* ATPG — guided by the abstract error trace as per-cycle
//!    constraint cubes — searches for a real error trace on the original
//!    design (Step 3), and
//! 3. the greedy refinement minimizer re-checks trace satisfiability on
//!    candidate abstractions with sequential ATPG (Step 4, phase two).
//!
//! The engine implements the paper's three-outcome contract: given a design,
//! a cycle count and a sequence of constraint cubes, it reports
//! [`AtpgOutcome::Satisfiable`] with a witness trace, definite
//! [`AtpgOutcome::Unsatisfiable`], or [`AtpgOutcome::Aborted`] when a
//! resource limit is hit.
//!
//! Internally this is a PODEM-style branch-and-bound over time-frame-expanded
//! circuits: decisions are made only on primary inputs (and free initial
//! register values), implications are propagated with event-driven
//! three-valued evaluation, and backtrace steers decisions with SCOAP-like
//! controllability estimates.
//!
//! # Example
//!
//! Justify "the toggler's register is 1 after two cycles":
//!
//! ```
//! use rfn_netlist::{Netlist, GateOp, Cube};
//! use rfn_atpg::{SequentialAtpg, AtpgOptions, AtpgOutcome};
//!
//! # fn main() -> Result<(), rfn_netlist::NetlistError> {
//! let mut n = Netlist::new("toggle");
//! let en = n.add_input("en");
//! let t = n.add_register("t", Some(false));
//! let nt = n.add_gate("nt", GateOp::Xor, &[t, en]);
//! n.set_register_next(t, nt)?;
//! n.validate()?;
//!
//! let atpg = SequentialAtpg::new(&n, AtpgOptions::default())?;
//! let target: Cube = [(t, true)].into_iter().collect();
//! let outcome = atpg.find_trace(3, &target, &[]);
//! assert!(matches!(outcome, AtpgOutcome::Satisfiable(_)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod scoap;
mod scope;

pub use engine::{
    AtpgEngine, AtpgOptions, AtpgOutcome, AtpgStats, CombinationalAtpg, SequentialAtpg,
};
pub use scoap::Scoap;
pub use scope::Scope;
