//! The PODEM-style justification engine over time-frame-expanded circuits.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rfn_govern::{Budget, GovPhase};
use rfn_netlist::{AbstractView, Cube, NetKind, Netlist, NetlistError, SignalId, Trace, TraceStep};
use rfn_sim::Tv;
use rfn_trace::TraceCtx;

use crate::scoap::Scoap;
use crate::scope::{Role, Scope};

/// Resource limits and search configuration for the ATPG engines.
///
/// The legacy `time_limit` knob is a view over the shared [`Budget`]: set
/// it with [`AtpgOptions::with_time_limit`] (or install a whole budget with
/// [`AtpgOptions::with_budget`]) and read it back through
/// [`AtpgOptions::time_limit`]. Besides the deadline, the budget supplies
/// cooperative cancellation (polled at every backtrack point and decision
/// batch) and an optional cross-call backtrack allowance drained by every
/// `justify` run sharing the budget.
#[derive(Clone, Debug)]
pub struct AtpgOptions {
    /// Maximum number of backtracks before aborting (per `justify` call; the
    /// budget's backtrack allowance additionally bounds the total across
    /// calls).
    pub max_backtracks: u64,
    /// Maximum number of decisions before aborting.
    pub max_decisions: u64,
    /// Shared resource budget: wall-clock deadline (with the quota of
    /// [`AtpgOptions::phase`]), cancellation and backtrack allowance.
    pub budget: Budget,
    /// Governance phase this engine invocation is charged to; selects which
    /// soft quota of the budget applies. Defaults to
    /// [`GovPhase::Concretize`] (sequential concretization); the hybrid
    /// engine's combinational calls use [`GovPhase::Hybrid`].
    pub phase: GovPhase,
    /// If `true`, initial register values are decision variables instead of
    /// being anchored to the reset state (used by combinational justification
    /// on abstract models).
    pub free_initial_state: bool,
    /// Optional per-time-frame objective priority (lower value = attacked
    /// first); frames beyond the vector's length rank last. Empty (the
    /// default) keeps the plain chronological objective order. The RFN loop
    /// feeds the random-simulation engine's per-cycle survivor counts here,
    /// so the frames where random patterns fell off the guidance corridor —
    /// the hard frames — are justified fail-first.
    pub frame_priority: Vec<u64>,
    /// Structured-event context; every `justify` call emits one
    /// `atpg.justify` point event with its effort counters. Disabled by
    /// default (a single pointer check per call).
    pub trace: TraceCtx,
}

impl Default for AtpgOptions {
    fn default() -> Self {
        AtpgOptions {
            max_backtracks: 50_000,
            max_decisions: 2_000_000,
            budget: Budget::unlimited(),
            phase: GovPhase::Concretize,
            free_initial_state: false,
            frame_priority: Vec::new(),
            trace: TraceCtx::disabled(),
        }
    }
}

impl AtpgOptions {
    /// Sets the per-call backtrack cap.
    #[must_use]
    pub fn with_max_backtracks(mut self, backtracks: u64) -> Self {
        self.max_backtracks = backtracks;
        self
    }

    /// Sets the per-call decision cap.
    #[must_use]
    pub fn with_max_decisions(mut self, decisions: u64) -> Self {
        self.max_decisions = decisions;
        self
    }

    /// Sets the wall-clock limit (a view over [`AtpgOptions::budget`]; the
    /// deadline is re-anchored at this call).
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.budget = self.budget.restarted().with_wall_clock(limit);
        self
    }

    /// Installs a shared resource budget (replacing any previous one).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the governance phase this invocation is charged to.
    #[must_use]
    pub fn with_phase(mut self, phase: GovPhase) -> Self {
        self.phase = phase;
        self
    }

    /// Frees or anchors initial register values.
    #[must_use]
    pub fn with_free_initial_state(mut self, free: bool) -> Self {
        self.free_initial_state = free;
        self
    }

    /// Sets the per-time-frame objective priorities.
    #[must_use]
    pub fn with_frame_priority(mut self, priority: Vec<u64>) -> Self {
        self.frame_priority = priority;
        self
    }

    /// Attaches a structured-event context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }

    /// The wall-clock limit of the governing budget, if any (the legacy
    /// `time_limit` field as a view).
    pub fn time_limit(&self) -> Option<Duration> {
        self.budget.wall_clock()
    }
}

/// Outcome of a justification run: the paper's three-valued ATPG contract.
#[derive(Clone, Debug)]
pub enum AtpgOutcome {
    /// All constraint cubes are simultaneously satisfiable; the witness trace
    /// drives the design through them.
    Satisfiable(Trace),
    /// The constraints are definitely unsatisfiable at this depth.
    Unsatisfiable,
    /// A resource limit was exceeded before a definite answer.
    Aborted,
}

impl AtpgOutcome {
    /// Convenience accessor for the witness trace.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            AtpgOutcome::Satisfiable(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the outcome is [`AtpgOutcome::Satisfiable`].
    pub fn is_sat(&self) -> bool {
        matches!(self, AtpgOutcome::Satisfiable(_))
    }

    /// Whether the outcome is [`AtpgOutcome::Unsatisfiable`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, AtpgOutcome::Unsatisfiable)
    }
}

/// Counters describing the effort a justification run spent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Decisions made.
    pub decisions: u64,
    /// Backtracks performed.
    pub backtracks: u64,
    /// Value assignments propagated.
    pub implications: u64,
}

/// The generic justification engine over a [`Scope`].
///
/// Most callers use the [`SequentialAtpg`] or [`CombinationalAtpg`] wrappers;
/// the raw engine is exposed for the hybrid engine, which justifies cubes on
/// abstract-model scopes.
#[derive(Debug)]
pub struct AtpgEngine<'n> {
    scope: Scope<'n>,
    scoap: Scoap,
    options: AtpgOptions,
}

impl<'n> AtpgEngine<'n> {
    /// Creates an engine over an explicit scope.
    pub fn new(scope: Scope<'n>, options: AtpgOptions) -> Self {
        let scoap = Scoap::compute(&scope);
        AtpgEngine {
            scope,
            scoap,
            options,
        }
    }

    /// The engine's scope.
    pub fn scope(&self) -> &Scope<'n> {
        &self.scope
    }

    /// Justifies one constraint cube per cycle: `constraints[t]` must hold
    /// during cycle `t` (over register outputs = state at `t`, primary
    /// inputs = inputs applied at `t`, and any scope gate = combinational
    /// value at `t`). The search depth is `constraints.len()` cycles.
    ///
    /// Returns the outcome together with effort statistics.
    ///
    /// # Panics
    ///
    /// Panics if a constraint mentions a signal outside the scope.
    pub fn justify(&self, constraints: &[Cube]) -> (AtpgOutcome, AtpgStats) {
        let frames = constraints.len();
        if frames == 0 {
            return (AtpgOutcome::Satisfiable(Trace::new()), AtpgStats::default());
        }
        let mut search = Search::new(self, frames);
        let (outcome, stats) = match search.setup(constraints) {
            Ok(()) => (search.run(), search.stats),
            Err(Conflict) => (AtpgOutcome::Unsatisfiable, search.stats),
        };
        if self.options.trace.is_enabled() {
            let label = match &outcome {
                AtpgOutcome::Satisfiable(_) => "sat",
                AtpgOutcome::Unsatisfiable => "unsat",
                AtpgOutcome::Aborted => "aborted",
            };
            let mut fields = vec![
                ("frames".to_owned(), frames.into()),
                ("outcome".to_owned(), label.into()),
                ("decisions".to_owned(), stats.decisions.into()),
                ("backtracks".to_owned(), stats.backtracks.into()),
                ("implications".to_owned(), stats.implications.into()),
            ];
            // `budget.*` governance fields: only emitted when the relevant
            // dimension is bounded, so unbudgeted traces stay deterministic.
            if let Some(remaining) = self.options.budget.remaining() {
                fields.push((
                    "budget.remaining_ms".to_owned(),
                    (remaining.as_millis() as u64).into(),
                ));
            }
            if let Some(left) = self.options.budget.backtracks_remaining() {
                fields.push(("budget.backtracks_remaining".to_owned(), left.into()));
            }
            self.options.trace.point("atpg.justify", fields);
        }
        (outcome, stats)
    }
}

/// Sequential ATPG over a whole design: searches for a trace from the reset
/// state satisfying per-cycle constraint cubes (Step 3 of the RFN loop).
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct SequentialAtpg<'n> {
    engine: AtpgEngine<'n>,
}

impl<'n> SequentialAtpg<'n> {
    /// Creates a sequential engine over the whole design.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn new(netlist: &'n Netlist, options: AtpgOptions) -> Result<Self, NetlistError> {
        Ok(SequentialAtpg {
            engine: AtpgEngine::new(Scope::whole_design(netlist)?, options),
        })
    }

    /// Creates a sequential engine over an abstract model (used by the greedy
    /// refinement minimizer to test trace satisfiability on candidate
    /// abstractions).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn over_view(
        netlist: &'n Netlist,
        view: &AbstractView,
        options: AtpgOptions,
    ) -> Result<Self, NetlistError> {
        Ok(SequentialAtpg {
            engine: AtpgEngine::new(Scope::abstract_model(netlist, view)?, options),
        })
    }

    /// Searches for a `depth`-cycle trace from reset that reaches `target`
    /// (a cube over scope signals, checked at the final cycle), under
    /// per-cycle `guidance` constraint cubes (`guidance[t]` applies at cycle
    /// `t`; missing cycles are unconstrained).
    ///
    /// This is the paper's trace-guided search: the abstract error trace's
    /// cubes become guidance, its length becomes `depth`.
    pub fn find_trace(&self, depth: usize, target: &Cube, guidance: &[Cube]) -> AtpgOutcome {
        self.find_trace_with_stats(depth, target, guidance).0
    }

    /// Like [`SequentialAtpg::find_trace`], additionally returning the
    /// search's effort counters (used by the RFN loop's concretization
    /// statistics).
    pub fn find_trace_with_stats(
        &self,
        depth: usize,
        target: &Cube,
        guidance: &[Cube],
    ) -> (AtpgOutcome, AtpgStats) {
        assert!(depth > 0, "find_trace needs at least one cycle");
        let mut constraints = vec![Cube::new(); depth];
        for (t, g) in guidance.iter().enumerate() {
            if t < depth {
                constraints[t] = g.clone();
            }
        }
        if constraints[depth - 1].merge(target).is_err() {
            return (AtpgOutcome::Unsatisfiable, AtpgStats::default());
        }
        self.engine.justify(&constraints)
    }

    /// Justifies arbitrary per-cycle constraints; see [`AtpgEngine::justify`].
    pub fn justify(&self, constraints: &[Cube]) -> (AtpgOutcome, AtpgStats) {
        self.engine.justify(constraints)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &AtpgEngine<'n> {
        &self.engine
    }
}

/// Combinational ATPG: single-frame justification where registers are free
/// decision variables (used by the hybrid engine to lift min-cut cubes to
/// no-cut cubes on abstract models).
#[derive(Debug)]
pub struct CombinationalAtpg<'n> {
    engine: AtpgEngine<'n>,
}

impl<'n> CombinationalAtpg<'n> {
    /// Creates a combinational engine over the whole design.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn new(netlist: &'n Netlist, mut options: AtpgOptions) -> Result<Self, NetlistError> {
        options.free_initial_state = true;
        Ok(CombinationalAtpg {
            engine: AtpgEngine::new(Scope::whole_design(netlist)?, options),
        })
    }

    /// Creates a combinational engine over an abstract model: pseudo-inputs
    /// and register outputs are all decision variables.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn over_view(
        netlist: &'n Netlist,
        view: &AbstractView,
        mut options: AtpgOptions,
    ) -> Result<Self, NetlistError> {
        options.free_initial_state = true;
        Ok(CombinationalAtpg {
            engine: AtpgEngine::new(Scope::abstract_model(netlist, view)?, options),
        })
    }

    /// Justifies a single cube over scope signals. On success the witness
    /// trace has exactly one step whose `state`/`inputs` cubes give the
    /// register and input assignment found.
    pub fn justify_cube(&self, target: &Cube) -> AtpgOutcome {
        self.engine.justify(std::slice::from_ref(target)).0
    }

    /// The underlying engine.
    pub fn engine(&self) -> &AtpgEngine<'n> {
        &self.engine
    }
}

struct Conflict;

struct Decision {
    fs: u32,
    value: bool,
    flipped: bool,
    trail_mark: usize,
}

struct Search<'a, 'n> {
    eng: &'a AtpgEngine<'n>,
    frames: usize,
    width: usize,
    values: Vec<Tv>,
    trail: Vec<u32>,
    base_mark: usize,
    decisions: Vec<Decision>,
    objectives: HashMap<u32, bool>,
    objective_list: Vec<(u32, bool)>,
    satisfied: usize,
    stats: AtpgStats,
    deadline: Option<Instant>,
    /// Set when the shared budget is exhausted (cancellation or a drained
    /// backtrack allowance); the main loop reports `Aborted`.
    exhausted: bool,
}

impl<'a, 'n> Search<'a, 'n> {
    fn new(eng: &'a AtpgEngine<'n>, frames: usize) -> Self {
        let width = eng.scope.netlist().num_signals();
        Search {
            eng,
            frames,
            width,
            values: vec![Tv::X; frames * width],
            trail: Vec::new(),
            base_mark: 0,
            decisions: Vec::new(),
            objectives: HashMap::new(),
            objective_list: Vec::new(),
            satisfied: 0,
            stats: AtpgStats::default(),
            deadline: eng.options.budget.deadline_for(eng.options.phase),
            exhausted: false,
        }
    }

    #[inline]
    fn fs(&self, frame: usize, s: SignalId) -> u32 {
        (frame * self.width + s.index()) as u32
    }

    #[inline]
    fn split(&self, fs: u32) -> (usize, SignalId) {
        let fs = fs as usize;
        (fs / self.width, SignalId::from_index(fs % self.width))
    }

    fn setup(&mut self, constraints: &[Cube]) -> Result<(), Conflict> {
        let scope = &self.eng.scope;
        let netlist = scope.netlist();
        // Register the objectives first so setup propagation checks them.
        for (t, cube) in constraints.iter().enumerate() {
            for (s, v) in cube.iter() {
                assert!(
                    scope.contains(s),
                    "constraint on signal {} outside the ATPG scope",
                    netlist.label(s)
                );
                let fs = self.fs(t, s);
                match self.objectives.insert(fs, v) {
                    Some(prev) if prev != v => return Err(Conflict),
                    Some(_) => {}
                    None => self.objective_list.push((fs, v)),
                }
            }
        }
        self.objective_list.sort_unstable();
        // Fail-first frame ordering: when the caller supplies per-frame
        // priorities, attack the lowest-priority-value (hardest) frames
        // first; within a frame the chronological signal order is kept.
        let priority = &self.eng.options.frame_priority;
        if !priority.is_empty() {
            let width = self.width;
            self.objective_list.sort_by_key(|&(fs, _)| {
                let frame = fs as usize / width;
                (priority.get(frame).copied().unwrap_or(u64::MAX), fs)
            });
        }
        // Constants hold at every frame.
        let mut queue: Vec<u32> = Vec::new();
        for s in netlist.signals() {
            if let Role::Const(v) = scope.role(s) {
                for t in 0..self.frames {
                    let fs = self.fs(t, s);
                    self.assign(fs, v, &mut queue)?;
                }
            }
        }
        // Anchor initial register values unless the state is free.
        if !self.eng.options.free_initial_state {
            for &r in scope.registers() {
                if let Some(init) = netlist.register_init(r) {
                    let fs = self.fs(0, r);
                    self.assign(fs, init, &mut queue)?;
                }
            }
        }
        self.propagate(&mut queue)?;
        self.base_mark = self.trail.len();
        Ok(())
    }

    /// Sets a value, recording it on the trail and checking objectives.
    fn assign(&mut self, fs: u32, v: bool, queue: &mut Vec<u32>) -> Result<(), Conflict> {
        match self.values[fs as usize] {
            Tv::X => {
                self.values[fs as usize] = Tv::from(v);
                self.trail.push(fs);
                self.stats.implications += 1;
                if let Some(&target) = self.objectives.get(&fs) {
                    if target == v {
                        self.satisfied += 1;
                    } else {
                        return Err(Conflict);
                    }
                }
                queue.push(fs);
                Ok(())
            }
            cur => {
                if cur == Tv::from(v) {
                    Ok(())
                } else {
                    Err(Conflict)
                }
            }
        }
    }

    /// Event-driven forward implication from the queued assignments.
    fn propagate(&mut self, queue: &mut Vec<u32>) -> Result<(), Conflict> {
        let scope = &self.eng.scope;
        while let Some(fs) = queue.pop() {
            let (frame, s) = self.split(fs);
            // Same-frame gate fanouts.
            for &g in scope.fanouts(s) {
                let gfs = self.fs(frame, g);
                if self.values[gfs as usize] != Tv::X {
                    continue;
                }
                let v = self.eval_gate(frame, g);
                if let Some(b) = v.to_bool() {
                    self.assign(gfs, b, queue)?;
                }
            }
            // Cross-frame register fanouts.
            if frame + 1 < self.frames {
                let v = self.values[fs as usize];
                if let Some(b) = v.to_bool() {
                    for &r in scope.reg_fanouts(s) {
                        let rfs = self.fs(frame + 1, r);
                        self.assign(rfs, b, queue)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn eval_gate(&self, frame: usize, g: SignalId) -> Tv {
        let netlist = self.eng.scope.netlist();
        let NetKind::Gate { op, fanins } = netlist.kind(g) else {
            unreachable!("eval_gate on non-gate");
        };
        let mut vals: [Tv; 8] = [Tv::X; 8];
        if fanins.len() <= 8 {
            for (k, f) in fanins.iter().enumerate() {
                vals[k] = self.values[self.fs(frame, *f) as usize];
            }
            Tv::eval_gate(*op, &vals[..fanins.len()])
        } else {
            let vals: Vec<Tv> = fanins
                .iter()
                .map(|f| self.values[self.fs(frame, *f) as usize])
                .collect();
            Tv::eval_gate(*op, &vals)
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let fs = self.trail.pop().expect("trail non-empty");
            if let Some(&target) = self.objectives.get(&fs) {
                if self.values[fs as usize] == Tv::from(target) {
                    self.satisfied -= 1;
                }
            }
            self.values[fs as usize] = Tv::X;
        }
    }

    fn run(&mut self) -> AtpgOutcome {
        loop {
            if self.satisfied == self.objective_list.len() {
                return AtpgOutcome::Satisfiable(self.extract_witness());
            }
            if self.exhausted
                || self.stats.decisions >= self.eng.options.max_decisions
                || self.stats.backtracks >= self.eng.options.max_backtracks
            {
                return AtpgOutcome::Aborted;
            }
            if self.eng.options.budget.is_cancelled() {
                return AtpgOutcome::Aborted;
            }
            if let Some(deadline) = self.deadline {
                if self.stats.decisions.is_multiple_of(64) && Instant::now() > deadline {
                    return AtpgOutcome::Aborted;
                }
            }
            // Pick the first unsatisfied objective and backtrace it.
            let (ofs, want) = match self
                .objective_list
                .iter()
                .find(|&&(fs, _)| self.values[fs as usize] == Tv::X)
            {
                Some(&(fs, w)) => (fs, w),
                None => {
                    // All objectives are binary, but not all satisfied:
                    // an objective conflicted during setup propagation —
                    // handled there — or this is unreachable.
                    unreachable!("binary unsatisfied objective escaped conflict detection")
                }
            };
            let (dfs, dval) = self.backtrace(ofs, want);
            self.stats.decisions += 1;
            let mark = self.trail.len();
            self.decisions.push(Decision {
                fs: dfs,
                value: dval,
                flipped: false,
                trail_mark: mark,
            });
            if self.decide_and_propagate() {
                continue;
            }
            if !self.backtrack() {
                return AtpgOutcome::Unsatisfiable;
            }
        }
    }

    /// Applies the top decision; returns `false` on conflict.
    fn decide_and_propagate(&mut self) -> bool {
        let d = self.decisions.last().expect("decision exists");
        let (fs, v) = (d.fs, d.value);
        let mut queue = Vec::new();
        if self.assign(fs, v, &mut queue).is_err() {
            return false;
        }
        self.propagate(&mut queue).is_ok()
    }

    /// Chronological backtracking; returns `false` when the search space is
    /// exhausted (UNSAT).
    fn backtrack(&mut self) -> bool {
        loop {
            self.stats.backtracks += 1;
            if self.stats.backtracks >= self.eng.options.max_backtracks {
                // Let the main loop report Aborted.
                return true;
            }
            // Backtrack points are the search's natural governance
            // checkpoints: poll cancellation and draw from the budget's
            // shared backtrack allowance.
            if self.eng.options.budget.is_cancelled()
                || self.eng.options.budget.charge_backtracks(1).is_err()
            {
                self.exhausted = true;
                return true;
            }
            let Some(d) = self.decisions.last_mut() else {
                return false;
            };
            let mark = d.trail_mark;
            let flipped = d.flipped;
            if flipped {
                self.undo_to(mark);
                self.decisions.pop();
                continue;
            }
            d.flipped = true;
            d.value = !d.value;
            self.undo_to(mark);
            if self.decide_and_propagate() {
                return true;
            }
        }
    }

    fn backtrace(&self, fs: u32, want: bool) -> (u32, bool) {
        let scope = &self.eng.scope;
        let netlist = scope.netlist();
        let scoap = &self.eng.scoap;
        let (mut frame, mut s) = self.split(fs);
        let mut want = want;
        loop {
            debug_assert_eq!(
                self.values[self.fs(frame, s) as usize],
                Tv::X,
                "backtrace walked onto an assigned signal"
            );
            match scope.role(s) {
                Role::Input => return (self.fs(frame, s), want),
                Role::Register => {
                    if frame == 0 {
                        // Free initial value (free mode or unknown reset).
                        return (self.fs(0, s), want);
                    }
                    frame -= 1;
                    s = netlist.register_next(s);
                }
                Role::Gate => {
                    let NetKind::Gate { op, fanins } = netlist.kind(s) else {
                        unreachable!()
                    };
                    let (next_s, next_want) = self.backtrace_gate(frame, *op, fanins, want, scoap);
                    s = next_s;
                    want = next_want;
                }
                Role::Const(_) | Role::Outside => {
                    unreachable!("backtrace reached a constant or out-of-scope signal")
                }
            }
        }
    }

    fn backtrace_gate(
        &self,
        frame: usize,
        op: rfn_netlist::GateOp,
        fanins: &[SignalId],
        want: bool,
        scoap: &Scoap,
    ) -> (SignalId, bool) {
        use rfn_netlist::GateOp::*;
        let val = |f: SignalId| self.values[self.fs(frame, f) as usize];
        let x_fanins = || fanins.iter().copied().filter(|&f| val(f) == Tv::X);
        match op {
            Buf => (fanins[0], want),
            Not => (fanins[0], !want),
            And | Nand | Or | Nor => {
                // Normalize to "all fanins must be `all_val`" vs "one fanin
                // must be `one_val`".
                let (and_like, inverted) = match op {
                    And => (true, false),
                    Nand => (true, true),
                    Or => (false, false),
                    Nor => (false, true),
                    _ => unreachable!(),
                };
                let eff_want = want ^ inverted;
                let need_all = if and_like { eff_want } else { !eff_want };
                if need_all {
                    // All fanins must take the non-controlling value: attack
                    // the hardest X fanin first.
                    let v = and_like; // non-controlling value
                    let f = x_fanins()
                        .max_by_key(|&f| scoap.cost(f, v))
                        .expect("X output has an X fanin");
                    (f, v)
                } else {
                    // One controlling fanin suffices: pick the easiest.
                    let v = !and_like;
                    let f = x_fanins()
                        .min_by_key(|&f| scoap.cost(f, v))
                        .expect("X output has an X fanin");
                    (f, v)
                }
            }
            Xor | Xnor => {
                let mut parity = want ^ matches!(op, Xnor);
                let mut unknowns = Vec::new();
                for &f in fanins {
                    match val(f).to_bool() {
                        Some(b) => parity ^= b,
                        None => unknowns.push(f),
                    }
                }
                // Assume the other unknowns resolve to 0 and drive the
                // easiest one to the needed parity.
                let f = *unknowns
                    .iter()
                    .min_by_key(|&&f| scoap.cost(f, parity).min(scoap.cost(f, !parity)))
                    .expect("X output has an X fanin");
                (f, parity)
            }
            Mux => {
                let (sel, d0, d1) = (fanins[0], fanins[1], fanins[2]);
                match val(sel).to_bool() {
                    Some(false) => (d0, want),
                    Some(true) => (d1, want),
                    None => {
                        // Steer the select toward a data input that already
                        // has the wanted value. When both data inputs are
                        // still X, justify the cheaper *data* branch first:
                        // if both branches end up agreeing (the common
                        // redundant-mux case), the output propagates without
                        // ever deciding the select, keeping irrelevant
                        // signals out of the witness.
                        if val(d0).to_bool() == Some(want) {
                            (sel, false)
                        } else if val(d1).to_bool() == Some(want) {
                            (sel, true)
                        } else if val(d0) == Tv::X && val(d1) != Tv::X {
                            (sel, false)
                        } else if val(d1) == Tv::X && val(d0) != Tv::X {
                            (sel, true)
                        } else if scoap.cost(d0, want) <= scoap.cost(d1, want) {
                            (d0, want)
                        } else {
                            (d1, want)
                        }
                    }
                }
            }
        }
    }

    fn extract_witness(&self) -> Trace {
        let scope = &self.eng.scope;
        let mut trace = Trace::new();
        for t in 0..self.frames {
            let mut state = Cube::new();
            for &r in scope.registers() {
                if let Some(v) = self.values[self.fs(t, r) as usize].to_bool() {
                    state.insert(r, v).expect("fresh cube cannot conflict");
                }
            }
            let mut inputs = Cube::new();
            for &i in scope.inputs() {
                if let Some(v) = self.values[self.fs(t, i) as usize].to_bool() {
                    inputs.insert(i, v).expect("fresh cube cannot conflict");
                }
            }
            trace.push(TraceStep { state, inputs });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::GateOp;

    /// 2-bit counter.
    fn counter() -> (Netlist, SignalId, SignalId) {
        let mut n = Netlist::new("c");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b0, b1]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        n.validate().unwrap();
        (n, b0, b1)
    }

    #[test]
    fn combinational_justifies_and() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate("g", GateOp::And, &[a, b]);
        n.validate().unwrap();
        let atpg = CombinationalAtpg::new(&n, AtpgOptions::default()).unwrap();
        let out = atpg.justify_cube(&[(g, true)].into_iter().collect());
        let trace = out.trace().expect("satisfiable");
        assert_eq!(trace.steps()[0].inputs.get(a), Some(true));
        assert_eq!(trace.steps()[0].inputs.get(b), Some(true));
    }

    #[test]
    fn combinational_detects_unsat() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        let na = n.add_gate("na", GateOp::Not, &[a]);
        let g = n.add_gate("g", GateOp::And, &[a, na]);
        n.validate().unwrap();
        let atpg = CombinationalAtpg::new(&n, AtpgOptions::default()).unwrap();
        let out = atpg.justify_cube(&[(g, true)].into_iter().collect());
        assert!(out.is_unsat());
    }

    #[test]
    fn sequential_reaches_counter_state() {
        let (n, b0, b1) = counter();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        // Counter reaches 3 (b1=1,b0=1) at cycle 3 (0-indexed state after 3 steps).
        let target: Cube = [(b0, true), (b1, true)].into_iter().collect();
        let out = atpg.find_trace(4, &target, &[]);
        let trace = out.trace().expect("reachable at depth 4");
        assert_eq!(trace.num_cycles(), 4);
        assert_eq!(trace.last_state().unwrap().get(b0), Some(true));
        assert_eq!(trace.last_state().unwrap().get(b1), Some(true));
    }

    #[test]
    fn sequential_depth_matters() {
        let (n, b0, b1) = counter();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        let target: Cube = [(b0, true), (b1, true)].into_iter().collect();
        // At depth 2 the counter has only reached 1: unsatisfiable.
        assert!(atpg.find_trace(2, &target, &[]).is_unsat());
    }

    #[test]
    fn witness_replays_on_simulator() {
        let mut n = Netlist::new("d");
        let i = n.add_input("i");
        let j = n.add_input("j");
        let r = n.add_register("r", Some(false));
        let s = n.add_register("s", Some(false));
        let and_ij = n.add_gate("and_ij", GateOp::And, &[i, j]);
        let or_rs = n.add_gate("or_rs", GateOp::Or, &[r, and_ij]);
        n.set_register_next(r, or_rs).unwrap();
        n.set_register_next(s, r).unwrap();
        n.validate().unwrap();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        let target: Cube = [(s, true)].into_iter().collect();
        let out = atpg.find_trace(3, &target, &[]);
        let trace = out.trace().expect("satisfiable");
        let mut sim = rfn_sim::Simulator::new(&n).unwrap();
        assert!(sim.replay(trace), "ATPG witness must replay concretely");
        assert_eq!(sim.value(s), rfn_sim::Tv::One);
    }

    #[test]
    fn guidance_constrains_the_path() {
        let (n, b0, b1) = counter();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        let target: Cube = [(b0, true), (b1, true)].into_iter().collect();
        // Guidance consistent with the counter sequence 0,1,2,3.
        let guidance = vec![
            [(b0, false), (b1, false)].into_iter().collect(),
            [(b0, true), (b1, false)].into_iter().collect(),
            [(b0, false), (b1, true)].into_iter().collect(),
        ];
        assert!(atpg.find_trace(4, &target, &guidance).is_sat());
        // Contradictory guidance makes it unsatisfiable.
        let bad = vec![
            [(b0, false), (b1, false)].into_iter().collect(),
            [(b0, false), (b1, true)].into_iter().collect(), // counter can't jump to 2
        ];
        assert!(atpg.find_trace(4, &target, &bad).is_unsat());
    }

    #[test]
    fn conflicting_target_is_unsat_immediately() {
        let (n, b0, _) = counter();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        let guidance: Vec<Cube> = vec![[(b0, true)].into_iter().collect()]; // reset has b0=0
        let target: Cube = Cube::new();
        assert!(atpg.find_trace(1, &target, &guidance).is_unsat());
    }

    #[test]
    fn abort_on_backtrack_limit() {
        // A hard function: parity chain equality needing search.
        let mut n = Netlist::new("hard");
        let bits: Vec<SignalId> = (0..18).map(|k| n.add_input(&format!("i{k}"))).collect();
        // Build a pseudo-random CNF-ish structure that forces backtracking:
        // target = AND of xors of overlapping triples, plus a contradiction.
        let mut ands = Vec::new();
        for w in bits.windows(3) {
            ands.push(n.add_gate("", GateOp::Xor, w));
        }
        // Add a term that contradicts the first xor being 1: its negation.
        let neg = n.add_gate("neg", GateOp::Not, &[ands[0]]);
        ands.push(neg);
        let all = n.add_gate("all", GateOp::And, &ands);
        n.validate().unwrap();
        let opts = AtpgOptions {
            max_backtracks: 3,
            ..AtpgOptions::default()
        };
        let atpg = CombinationalAtpg::new(&n, opts).unwrap();
        let out = atpg.justify_cube(&[(all, true)].into_iter().collect());
        // With 3 backtracks allowed, the definite UNSAT can't be proven.
        assert!(matches!(
            out,
            AtpgOutcome::Aborted | AtpgOutcome::Unsatisfiable
        ));
    }

    #[test]
    fn free_initial_state_ignores_reset() {
        let (n, b0, b1) = counter();
        // Combinational: both registers free, ask for state 3 directly.
        let atpg = CombinationalAtpg::new(&n, AtpgOptions::default()).unwrap();
        let out = atpg.justify_cube(&[(b0, true), (b1, true)].into_iter().collect());
        assert!(out.is_sat());
    }

    #[test]
    fn justify_on_abstract_view_uses_pseudo_inputs() {
        use rfn_netlist::Abstraction;
        // a' = a | b with b outside the abstraction: b is a decision var.
        let mut n = Netlist::new("d");
        let a = n.add_register("a", Some(false));
        let b = n.add_register("b", Some(false));
        let upd = n.add_gate("upd", GateOp::Or, &[a, b]);
        n.set_register_next(a, upd).unwrap();
        n.set_register_next(b, a).unwrap();
        n.validate().unwrap();
        let view = Abstraction::from_registers([a]).view(&n, []).unwrap();
        let atpg = SequentialAtpg::over_view(&n, &view, AtpgOptions::default()).unwrap();
        // In the abstraction, a can become 1 in one step by choosing b=1 —
        // impossible in the full design at that depth (b resets to 0).
        let target: Cube = [(a, true)].into_iter().collect();
        let out = atpg.find_trace(2, &target, &[]);
        assert!(out.is_sat());
        let full = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        assert!(full.find_trace(2, &target, &[]).is_unsat());
    }

    #[test]
    fn stats_are_populated() {
        let (n, b0, b1) = counter();
        let atpg = SequentialAtpg::new(&n, AtpgOptions::default()).unwrap();
        let target: Cube = [(b0, true), (b1, true)].into_iter().collect();
        let (out, stats) = atpg.justify(&{
            let mut cs = vec![Cube::new(); 4];
            cs[3] = target;
            cs
        });
        assert!(out.is_sat());
        assert!(stats.implications > 0);
    }
}

#[cfg(test)]
mod limit_tests {
    use super::*;
    use rfn_netlist::GateOp;

    /// A wide parity cone with a contradiction forces real search effort.
    fn hard_unsat() -> (Netlist, SignalId) {
        let mut n = Netlist::new("hard");
        let bits: Vec<SignalId> = (0..20).map(|k| n.add_input(&format!("i{k}"))).collect();
        let mut terms = Vec::new();
        for w in bits.windows(3) {
            terms.push(n.add_gate("", GateOp::Xor, w));
        }
        let neg = n.add_gate("neg", GateOp::Not, &[terms[0]]);
        terms.push(neg);
        let all = n.add_gate("all", GateOp::And, &terms);
        n.validate().unwrap();
        (n, all)
    }

    #[test]
    fn time_limit_aborts_search() {
        let (n, all) = hard_unsat();
        let opts = AtpgOptions::default().with_time_limit(std::time::Duration::ZERO);
        let atpg = CombinationalAtpg::new(&n, opts).unwrap();
        let out = atpg.justify_cube(&[(all, true)].into_iter().collect());
        assert!(matches!(out, AtpgOutcome::Aborted));
    }

    #[test]
    fn decision_limit_aborts_search() {
        let (n, all) = hard_unsat();
        let opts = AtpgOptions {
            max_decisions: 2,
            ..AtpgOptions::default()
        };
        let atpg = CombinationalAtpg::new(&n, opts).unwrap();
        let out = atpg.justify_cube(&[(all, true)].into_iter().collect());
        assert!(matches!(out, AtpgOutcome::Aborted));
    }

    #[test]
    fn zero_depth_is_trivially_satisfiable() {
        let (n, _) = hard_unsat();
        let atpg = CombinationalAtpg::new(&n, AtpgOptions::default()).unwrap();
        let (out, stats) = atpg.engine().justify(&[]);
        assert!(out.is_sat());
        assert_eq!(stats, AtpgStats::default());
    }
}
