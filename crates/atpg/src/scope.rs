//! Search scope: which part of a design the ATPG engine operates on.

use rfn_netlist::{AbstractView, NetKind, Netlist, NetlistError, SignalId};

/// The role a signal plays inside an ATPG [`Scope`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Not part of the scope; never evaluated or assigned.
    Outside,
    /// A decision variable: a primary input of the scope (true primary input
    /// or — on abstract models — a pseudo-input register of the original
    /// design).
    Input,
    /// A state element of the scope.
    Register,
    /// A combinational gate of the scope.
    Gate,
    /// A constant driver.
    Const(bool),
}

/// A *scope* restricts the ATPG engine to a subcircuit: either a whole
/// design, or an abstract model where excluded registers become decision
/// inputs. The scope pre-computes roles, topological order and fanout lists
/// used by event-driven implication.
///
/// # Example
///
/// ```
/// use rfn_netlist::{Netlist, GateOp, Abstraction};
/// use rfn_atpg::Scope;
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// let mut n = Netlist::new("d");
/// let a = n.add_register("a", Some(false));
/// let b = n.add_register("b", Some(false));
/// let g = n.add_gate("g", GateOp::Or, &[a, b]);
/// n.set_register_next(a, g)?;
/// n.set_register_next(b, a)?;
/// n.validate()?;
///
/// let whole = Scope::whole_design(&n)?;
/// assert_eq!(whole.registers().len(), 2);
///
/// let view = Abstraction::from_registers([a]).view(&n, [])?;
/// let sub = Scope::abstract_model(&n, &view)?;
/// assert_eq!(sub.registers().len(), 1);
/// assert_eq!(sub.inputs().len(), 1); // b became a decision input
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Scope<'n> {
    netlist: &'n Netlist,
    roles: Vec<Role>,
    gates: Vec<SignalId>,
    registers: Vec<SignalId>,
    inputs: Vec<SignalId>,
    /// Per signal: the scope gates that read it.
    fanouts: Vec<Vec<SignalId>>,
    /// Per signal: the scope registers whose next-state input it is.
    reg_fanouts: Vec<Vec<SignalId>>,
}

impl<'n> Scope<'n> {
    /// A scope covering the entire design: all primary inputs are decision
    /// variables, all registers are state.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn whole_design(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let mut roles = vec![Role::Outside; netlist.num_signals()];
        for s in netlist.signals() {
            roles[s.index()] = match netlist.kind(s) {
                NetKind::Input => Role::Input,
                NetKind::Register { .. } => Role::Register,
                NetKind::Gate { .. } => Role::Gate,
                NetKind::Const(v) => Role::Const(*v),
            };
        }
        let gates = netlist.topo_order()?;
        Self::assemble(netlist, roles, gates)
    }

    /// A scope covering an abstract model: the view's pseudo-inputs join the
    /// true primary inputs as decision variables.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn abstract_model(netlist: &'n Netlist, view: &AbstractView) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let mut roles = vec![Role::Outside; netlist.num_signals()];
        for &i in view.inputs() {
            roles[i.index()] = Role::Input;
        }
        for &p in view.pseudo_inputs() {
            roles[p.index()] = Role::Input;
        }
        for &r in view.registers() {
            roles[r.index()] = Role::Register;
        }
        for &g in view.gates() {
            roles[g.index()] = Role::Gate;
        }
        for &c in view.constants() {
            if let NetKind::Const(v) = netlist.kind(c) {
                roles[c.index()] = Role::Const(*v);
            }
        }
        Self::assemble(netlist, roles, view.gates().to_vec())
    }

    fn assemble(
        netlist: &'n Netlist,
        roles: Vec<Role>,
        gates: Vec<SignalId>,
    ) -> Result<Self, NetlistError> {
        let mut registers = Vec::new();
        let mut inputs = Vec::new();
        for s in netlist.signals() {
            match roles[s.index()] {
                Role::Register => registers.push(s),
                Role::Input => inputs.push(s),
                _ => {}
            }
        }
        let mut fanouts: Vec<Vec<SignalId>> = vec![Vec::new(); netlist.num_signals()];
        for &g in &gates {
            for &f in netlist.fanins(g) {
                fanouts[f.index()].push(g);
            }
        }
        let mut reg_fanouts: Vec<Vec<SignalId>> = vec![Vec::new(); netlist.num_signals()];
        for &r in &registers {
            let next = netlist.register_next(r);
            reg_fanouts[next.index()].push(r);
        }
        Ok(Scope {
            netlist,
            roles,
            gates,
            registers,
            inputs,
            fanouts,
            reg_fanouts,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The role of a signal in this scope.
    pub fn role(&self, s: SignalId) -> Role {
        self.roles[s.index()]
    }

    /// Scope gates in topological order.
    pub fn gates(&self) -> &[SignalId] {
        &self.gates
    }

    /// Scope registers (state elements).
    pub fn registers(&self) -> &[SignalId] {
        &self.registers
    }

    /// Decision inputs (true primary inputs plus pseudo-inputs).
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Scope gates reading `s`.
    pub fn fanouts(&self, s: SignalId) -> &[SignalId] {
        &self.fanouts[s.index()]
    }

    /// Scope registers whose next-state input is `s`.
    pub fn reg_fanouts(&self, s: SignalId) -> &[SignalId] {
        &self.reg_fanouts[s.index()]
    }

    /// Whether the signal belongs to the scope.
    pub fn contains(&self, s: SignalId) -> bool {
        self.roles[s.index()] != Role::Outside
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{Abstraction, GateOp};

    fn design() -> (Netlist, [SignalId; 4]) {
        let mut n = Netlist::new("d");
        let i = n.add_input("i");
        let a = n.add_register("a", Some(false));
        let b = n.add_register("b", Some(false));
        let g = n.add_gate("g", GateOp::And, &[a, i]);
        n.set_register_next(a, g).unwrap();
        n.set_register_next(b, a).unwrap();
        n.validate().unwrap();
        (n, [i, a, b, g])
    }

    #[test]
    fn whole_design_roles() {
        let (n, [i, a, b, g]) = design();
        let sc = Scope::whole_design(&n).unwrap();
        assert_eq!(sc.role(i), Role::Input);
        assert_eq!(sc.role(a), Role::Register);
        assert_eq!(sc.role(b), Role::Register);
        assert_eq!(sc.role(g), Role::Gate);
        assert_eq!(sc.fanouts(a), &[g]);
        assert_eq!(sc.reg_fanouts(a), &[b]);
        assert_eq!(sc.reg_fanouts(g), &[a]);
    }

    #[test]
    fn abstract_scope_turns_pseudo_inputs_into_decisions() {
        let (n, [i, a, b, g]) = design();
        let view = Abstraction::from_registers([b]).view(&n, []).unwrap();
        let sc = Scope::abstract_model(&n, &view).unwrap();
        assert_eq!(sc.role(a), Role::Input); // pseudo-input
        assert_eq!(sc.role(b), Role::Register);
        assert_eq!(sc.role(g), Role::Outside); // not in b's cone
        assert_eq!(sc.role(i), Role::Outside);
        assert_eq!(sc.inputs(), &[a]);
    }
}
