//! Property tests: three-valued simulation is a sound abstraction of
//! concrete simulation, and the bit-parallel kernel agrees with the scalar
//! reference on every lane.

use proptest::prelude::*;
use rfn_netlist::{Cube, GateOp, Netlist, SignalId};
use rfn_sim::{PackedSim, PackedTv, Simulator, Tv};

/// Random layered sequential netlist (same shape as the netlist crate's).
fn arb_netlist(n_inputs: usize, n_regs: usize, n_gates: usize) -> impl Strategy<Value = Netlist> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
        GateOp::Xnor,
    ]);
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>()), n_gates);
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    (gates, nexts).prop_map(move |(gates, nexts)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fanins: Vec<SignalId> = if matches!(op, GateOp::Not) {
                vec![fa]
            } else {
                vec![fa, fb]
            };
            pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            n.set_register_next(regs[k], pool[nx as usize % pool.len()])
                .unwrap();
        }
        n
    })
}

const NI: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// X-monotonicity: masking any subset of inputs with X never produces a
    /// *wrong* binary value — wherever the 3-valued run is binary, it matches
    /// the concrete run, at every signal and across multiple cycles.
    #[test]
    fn three_valued_is_sound_abstraction(
        n in arb_netlist(NI, 3, 14),
        input_bits in prop::collection::vec(0u8..2, NI * 4),
        mask_bits in prop::collection::vec(any::<bool>(), NI * 4),
    ) {
        let inputs = n.inputs().to_vec();
        let mut concrete = Simulator::new(&n).unwrap();
        let mut abstracted = Simulator::new(&n).unwrap();
        concrete.reset();
        abstracted.reset();
        for cycle in 0..4 {
            let mut full = Cube::new();
            let mut masked = Cube::new();
            for (k, &i) in inputs.iter().enumerate() {
                let bit = input_bits[cycle * NI + k] == 1;
                full.insert(i, bit).unwrap();
                if !mask_bits[cycle * NI + k] {
                    masked.insert(i, bit).unwrap();
                }
            }
            concrete.step(&full);
            abstracted.step(&masked);
            for s in n.signals() {
                let av = abstracted.value(s);
                if av.is_known() {
                    prop_assert_eq!(
                        av, concrete.value(s),
                        "cycle {} signal {}", cycle, n.label(s)
                    );
                }
            }
        }
    }

    /// Fully-driven 3-valued simulation never produces X on gates or
    /// registers with known resets.
    #[test]
    fn fully_driven_simulation_is_binary(
        n in arb_netlist(NI, 3, 14),
        input_bits in prop::collection::vec(0u8..2, NI * 3),
    ) {
        let inputs = n.inputs().to_vec();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        for cycle in 0..3 {
            let cube: Cube = inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, input_bits[cycle * NI + k] == 1))
                .collect();
            sim.step(&cube);
            for &r in n.registers() {
                prop_assert!(sim.value(r).is_known());
            }
        }
    }

    /// Replaying a trace recorded from concrete simulation always succeeds.
    #[test]
    fn recorded_traces_replay(
        n in arb_netlist(NI, 3, 14),
        input_bits in prop::collection::vec(0u8..2, NI * 4),
    ) {
        use rfn_netlist::{Trace, TraceStep};
        let inputs = n.inputs().to_vec();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        let mut trace = Trace::new();
        for cycle in 0..4 {
            let state: Cube = n
                .registers()
                .iter()
                .filter_map(|&r| sim.value(r).to_bool().map(|v| (r, v)))
                .collect();
            let cube: Cube = inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, input_bits[cycle * NI + k] == 1))
                .collect();
            let is_last = cycle == 3;
            trace.push(TraceStep {
                state,
                inputs: if is_last { Cube::new() } else { cube.clone() },
            });
            if !is_last {
                sim.step(&cube);
            }
        }
        let mut replayer = Simulator::new(&n).unwrap();
        prop_assert!(replayer.replay(&trace));
    }
}

/// One packed input word per (cycle, input): lane k is `X` if bit k of
/// `xmask` is set, else the binary value bit k of `val`.
fn packed_word(xmask: u64, val: u64) -> PackedTv {
    PackedTv {
        can0: xmask | !val,
        can1: xmask | val,
    }
}

/// The same word's lane-k value for the scalar reference run.
fn lane_tv(xmask: u64, val: u64, lane: usize) -> Tv {
    if xmask >> lane & 1 == 1 {
        Tv::X
    } else {
        Tv::from(val >> lane & 1 == 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The packed kernel agrees with 64 independent scalar reference runs on
    /// every signal, every lane and every cycle, for arbitrary 0/1/X input
    /// patterns — the level order, the dirty-level skip and the two-plane
    /// gate algebra are all exercised at once.
    #[test]
    fn packed_matches_scalar_on_all_lanes(
        n in arb_netlist(NI, 3, 14),
        words in prop::collection::vec((any::<u64>(), any::<u64>()), NI * 4),
    ) {
        let inputs = n.inputs().to_vec();
        let mut packed = PackedSim::new(&n).unwrap();
        packed.reset();
        let mut scalars: Vec<Simulator> = (0..64)
            .map(|_| {
                let mut s = Simulator::new(&n).unwrap();
                s.reset();
                s
            })
            .collect();
        for cycle in 0..4 {
            for (k, &i) in inputs.iter().enumerate() {
                let (xmask, val) = words[cycle * NI + k];
                packed.set(i, packed_word(xmask, val));
                for (lane, s) in scalars.iter_mut().enumerate() {
                    s.set(i, lane_tv(xmask, val, lane));
                }
            }
            packed.step_comb();
            for s in scalars.iter_mut() {
                s.step_comb();
            }
            for sig in n.signals() {
                for (lane, s) in scalars.iter().enumerate() {
                    prop_assert_eq!(
                        packed.lane(sig, lane), s.value(sig),
                        "cycle {} lane {} signal {}", cycle, lane, n.label(sig)
                    );
                }
            }
            packed.latch();
            for s in scalars.iter_mut() {
                s.latch();
            }
        }
    }

    /// Broadcast trace replay: driving both engines with the same concrete
    /// input cubes step by step keeps every signal identical (lane 0 of the
    /// packed kernel is the scalar value).
    #[test]
    fn packed_broadcast_replay_matches_scalar(
        n in arb_netlist(NI, 3, 14),
        input_bits in prop::collection::vec(0u8..2, NI * 4),
    ) {
        let inputs = n.inputs().to_vec();
        let mut packed = PackedSim::new(&n).unwrap();
        let mut scalar = Simulator::new(&n).unwrap();
        packed.reset();
        scalar.reset();
        for cycle in 0..4 {
            let cube: Cube = inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, input_bits[cycle * NI + k] == 1))
                .collect();
            packed.step(&cube);
            scalar.step(&cube);
            for sig in n.signals() {
                prop_assert_eq!(packed.lane(sig, 0), scalar.value(sig));
                // A broadcast value is the same in every lane.
                prop_assert_eq!(packed.lane(sig, 63), scalar.value(sig));
            }
        }
    }
}
