//! The three-valued logic type.

use std::fmt;

use rfn_netlist::GateOp;

/// A three-valued logic value: `0`, `1` or unknown `X`.
///
/// `X` behaves as "could be either": an operation returns a binary value only
/// when every completion of the unknowns agrees (Kleene's strong logic).
///
/// # Example
///
/// ```
/// use rfn_sim::Tv;
///
/// assert_eq!(Tv::Zero.and(Tv::X), Tv::Zero); // controlling value wins
/// assert_eq!(Tv::One.and(Tv::X), Tv::X);
/// assert_eq!(Tv::X.not(), Tv::X);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Tv {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Tv {
    /// Three-valued negation.
    ///
    /// Deliberately an inherent method, not `std::ops::Not`: gate evaluation
    /// calls it alongside `and`/`or`/`xor` by function pointer.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tv {
        match self {
            Tv::Zero => Tv::One,
            Tv::One => Tv::Zero,
            Tv::X => Tv::X,
        }
    }

    /// Three-valued conjunction.
    #[inline]
    pub fn and(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::Zero, _) | (_, Tv::Zero) => Tv::Zero,
            (Tv::One, Tv::One) => Tv::One,
            _ => Tv::X,
        }
    }

    /// Three-valued disjunction.
    #[inline]
    pub fn or(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::One, _) | (_, Tv::One) => Tv::One,
            (Tv::Zero, Tv::Zero) => Tv::Zero,
            _ => Tv::X,
        }
    }

    /// Three-valued exclusive or.
    #[inline]
    pub fn xor(self, other: Tv) -> Tv {
        match (self, other) {
            (Tv::X, _) | (_, Tv::X) => Tv::X,
            (a, b) if a == b => Tv::Zero,
            _ => Tv::One,
        }
    }

    /// Whether the value is binary (not `X`).
    #[inline]
    pub fn is_known(self) -> bool {
        self != Tv::X
    }

    /// Converts to `bool` if binary.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tv::Zero => Some(false),
            Tv::One => Some(true),
            Tv::X => None,
        }
    }

    /// Whether this value *conflicts* with a required binary value: the value
    /// is binary and differs. `X` never conflicts (paper, Section 2.4).
    #[inline]
    pub fn conflicts_with(self, required: bool) -> bool {
        matches!(self.to_bool(), Some(v) if v != required)
    }

    /// Evaluates a gate operator over three-valued fanins.
    ///
    /// # Panics
    ///
    /// Panics if `vals` violates the operator's arity.
    pub fn eval_gate(op: GateOp, vals: &[Tv]) -> Tv {
        match op {
            GateOp::Buf => vals[0],
            GateOp::Not => vals[0].not(),
            GateOp::And => vals.iter().fold(Tv::One, |a, &v| a.and(v)),
            GateOp::Nand => vals.iter().fold(Tv::One, |a, &v| a.and(v)).not(),
            GateOp::Or => vals.iter().fold(Tv::Zero, |a, &v| a.or(v)),
            GateOp::Nor => vals.iter().fold(Tv::Zero, |a, &v| a.or(v)).not(),
            GateOp::Xor => vals.iter().fold(Tv::Zero, |a, &v| a.xor(v)),
            GateOp::Xnor => vals.iter().fold(Tv::Zero, |a, &v| a.xor(v)).not(),
            GateOp::Mux => match vals[0] {
                Tv::Zero => vals[1],
                Tv::One => vals[2],
                // Unknown select: known only if both data inputs agree.
                Tv::X => {
                    if vals[1] == vals[2] {
                        vals[1]
                    } else {
                        Tv::X
                    }
                }
            },
        }
    }
}

impl From<bool> for Tv {
    fn from(b: bool) -> Tv {
        if b {
            Tv::One
        } else {
            Tv::Zero
        }
    }
}

impl From<Option<bool>> for Tv {
    fn from(b: Option<bool>) -> Tv {
        match b {
            Some(true) => Tv::One,
            Some(false) => Tv::Zero,
            None => Tv::X,
        }
    }
}

impl fmt::Display for Tv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tv::Zero => "0",
            Tv::One => "1",
            Tv::X => "x",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Tv; 3] = [Tv::Zero, Tv::One, Tv::X];

    /// X-completions of a value.
    fn completions(v: Tv) -> Vec<bool> {
        match v {
            Tv::Zero => vec![false],
            Tv::One => vec![true],
            Tv::X => vec![false, true],
        }
    }

    /// Kleene soundness: the 3-valued result is binary only if all
    /// completions agree, and then it agrees with them.
    #[test]
    fn binary_ops_are_sound_abstractions() {
        for a in ALL {
            for b in ALL {
                type OpRow = (&'static str, fn(Tv, Tv) -> Tv, fn(bool, bool) -> bool);
                let ops: [OpRow; 3] = [
                    ("and", Tv::and, |x, y| x && y),
                    ("or", Tv::or, |x, y| x || y),
                    ("xor", Tv::xor, |x, y| x ^ y),
                ];
                for (name, tvf, bf) in ops {
                    let r = tvf(a, b);
                    for ca in completions(a) {
                        for cb in completions(b) {
                            let concrete = bf(ca, cb);
                            if let Some(rb) = r.to_bool() {
                                assert_eq!(rb, concrete, "{name}({a},{b})");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(Tv::Zero.and(Tv::X), Tv::Zero);
        assert_eq!(Tv::X.and(Tv::Zero), Tv::Zero);
        assert_eq!(Tv::One.or(Tv::X), Tv::One);
        assert_eq!(Tv::X.or(Tv::One), Tv::One);
        assert_eq!(Tv::One.and(Tv::X), Tv::X);
        assert_eq!(Tv::Zero.or(Tv::X), Tv::X);
        assert_eq!(Tv::X.xor(Tv::One), Tv::X);
    }

    #[test]
    fn mux_with_unknown_select() {
        // Agreeing data inputs resolve even with X select.
        assert_eq!(
            Tv::eval_gate(GateOp::Mux, &[Tv::X, Tv::One, Tv::One]),
            Tv::One
        );
        assert_eq!(
            Tv::eval_gate(GateOp::Mux, &[Tv::X, Tv::Zero, Tv::One]),
            Tv::X
        );
        assert_eq!(
            Tv::eval_gate(GateOp::Mux, &[Tv::Zero, Tv::One, Tv::Zero]),
            Tv::One
        );
        assert_eq!(
            Tv::eval_gate(GateOp::Mux, &[Tv::One, Tv::One, Tv::Zero]),
            Tv::Zero
        );
    }

    #[test]
    fn gate_eval_matches_boolean_on_binary_inputs() {
        use rfn_netlist::GateOp::*;
        for op in [Buf, Not, And, Nand, Or, Nor, Xor, Xnor] {
            let arity = if matches!(op, Buf | Not) { 1 } else { 3 };
            for bits in 0..1u32 << arity {
                let bvals: Vec<bool> = (0..arity).map(|i| bits & (1 << i) != 0).collect();
                let tvals: Vec<Tv> = bvals.iter().map(|&b| Tv::from(b)).collect();
                assert_eq!(
                    Tv::eval_gate(op, &tvals).to_bool(),
                    Some(op.eval(&bvals)),
                    "{op:?} {bvals:?}"
                );
            }
        }
    }

    #[test]
    fn conflict_semantics() {
        assert!(Tv::Zero.conflicts_with(true));
        assert!(Tv::One.conflicts_with(false));
        assert!(!Tv::X.conflicts_with(true));
        assert!(!Tv::X.conflicts_with(false));
        assert!(!Tv::One.conflicts_with(true));
    }

    #[test]
    fn conversions() {
        assert_eq!(Tv::from(true), Tv::One);
        assert_eq!(Tv::from(Some(false)), Tv::Zero);
        assert_eq!(Tv::from(None), Tv::X);
        assert_eq!(format!("{} {} {}", Tv::Zero, Tv::One, Tv::X), "0 1 x");
    }
}
