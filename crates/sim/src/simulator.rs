//! The cycle-based gate-level simulator and the shared levelization tables.

use rfn_netlist::{Cube, GateOp, NetKind, Netlist, NetlistError, SignalId, Trace};

use crate::Tv;

/// Precomputed levelized evaluation order over a netlist's gates.
///
/// A gate's *level* is one more than the highest level among its gate fanins;
/// gates fed only by inputs, registers and constants sit at level 0. The
/// gates are stored grouped by level in flat arrays (indices, operators and
/// flattened fanins side by side), so one simulation step is a linear scan
/// with no hashing or per-gate enum walks.
///
/// The per-signal `min_fanout_level` table supports event-driven evaluation:
/// when a source value changes, only the levels at or above the lowest level
/// it feeds can change, so everything below may be skipped.
#[derive(Clone, Debug)]
pub(crate) struct Levels {
    /// Gate signal indices grouped by ascending level (topological within).
    pub order: Vec<u32>,
    /// Fencepost offsets of each level within `order`
    /// (`starts.len() == num_levels + 1`).
    pub starts: Vec<u32>,
    /// Gate operators, parallel to `order`.
    pub ops: Vec<GateOp>,
    /// Flattened fanin signal indices of every gate in `order`.
    pub fanins: Vec<u32>,
    /// Fencepost offsets into `fanins`, parallel to `order` plus a sentinel.
    pub fanin_starts: Vec<u32>,
    /// Per signal: the gate's own level; `u32::MAX` for non-gates.
    pub gate_level: Vec<u32>,
    /// Per signal: lowest level among the gates this signal feeds;
    /// `u32::MAX` when it feeds no gate.
    pub min_fanout_level: Vec<u32>,
}

impl Levels {
    /// Builds the level tables for a validated netlist.
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let topo: Vec<SignalId> = netlist
            .topo_order()?
            .into_iter()
            .filter(|&s| netlist.is_gate(s))
            .collect();
        let n = netlist.num_signals();
        let mut gate_level = vec![u32::MAX; n];
        let mut num_levels = 0usize;
        for &g in &topo {
            let lvl = netlist
                .fanins(g)
                .iter()
                .map(|f| match gate_level[f.index()] {
                    u32::MAX => 0, // input / register / constant fanin
                    l => l + 1,
                })
                .max()
                .unwrap_or(0);
            gate_level[g.index()] = lvl;
            num_levels = num_levels.max(lvl as usize + 1);
        }
        // Stable counting sort of the (already topological) gate list by
        // level; same-level gates keep their topological relative order.
        let mut starts = vec![0u32; num_levels + 1];
        for &g in &topo {
            starts[gate_level[g.index()] as usize + 1] += 1;
        }
        for l in 0..num_levels {
            starts[l + 1] += starts[l];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; topo.len()];
        for &g in &topo {
            let l = gate_level[g.index()] as usize;
            order[cursor[l] as usize] = g.index() as u32;
            cursor[l] += 1;
        }
        let mut ops = Vec::with_capacity(order.len());
        let mut fanins = Vec::new();
        let mut fanin_starts = Vec::with_capacity(order.len() + 1);
        fanin_starts.push(0u32);
        let mut min_fanout_level = vec![u32::MAX; n];
        for &gi in &order {
            let g = SignalId::from_index(gi as usize);
            let NetKind::Gate { op, fanins: fs } = netlist.kind(g) else {
                continue; // unreachable: `order` holds gates only
            };
            ops.push(*op);
            let lg = gate_level[gi as usize];
            for f in fs {
                fanins.push(f.index() as u32);
                let m = &mut min_fanout_level[f.index()];
                *m = (*m).min(lg);
            }
            fanin_starts.push(fanins.len() as u32);
        }
        Ok(Levels {
            order,
            starts,
            ops,
            fanins,
            fanin_starts,
            gate_level,
            min_fanout_level,
        })
    }

    /// Number of combinational gates in the order.
    pub fn num_gates(&self) -> usize {
        self.order.len()
    }

    /// Number of logic levels.
    pub fn num_levels(&self) -> usize {
        self.starts.len() - 1
    }
}

/// A cycle-based three-valued simulator over a netlist.
///
/// The usual cycle protocol is: set register state ([`Simulator::reset`] or
/// [`Simulator::set_state`]), drive inputs ([`Simulator::set`] /
/// [`Simulator::apply_cube`]), propagate combinational logic
/// ([`Simulator::step_comb`]), then advance registers ([`Simulator::latch`]).
/// [`Simulator::step`] bundles drive + propagate + latch.
///
/// Driving only some inputs leaves the rest at `X`, which makes the same
/// engine usable for both concrete replay and the paper's three-valued
/// refinement analysis.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    order: Vec<SignalId>,
    values: Vec<Tv>,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator for a validated netlist.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the netlist fails validation (e.g. a
    /// combinational cycle or an unconnected register).
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let order = netlist.topo_order()?;
        let mut sim = Simulator {
            netlist,
            order,
            values: vec![Tv::X; netlist.num_signals()],
        };
        sim.load_constants();
        Ok(sim)
    }

    fn load_constants(&mut self) {
        for s in self.netlist.signals() {
            if let NetKind::Const(v) = self.netlist.kind(s) {
                self.values[s.index()] = Tv::from(*v);
            }
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Current value of a signal.
    pub fn value(&self, s: SignalId) -> Tv {
        self.values[s.index()]
    }

    /// Sets a signal value directly (inputs, pseudo-inputs or forced
    /// registers).
    pub fn set(&mut self, s: SignalId, v: Tv) {
        self.values[s.index()] = v;
    }

    /// Sets every signal mentioned by the cube to its binary value.
    pub fn apply_cube(&mut self, cube: &Cube) {
        for (s, v) in cube.iter() {
            self.values[s.index()] = Tv::from(v);
        }
    }

    /// Resets registers to their initial values (`X` for unknown resets),
    /// primary inputs to `X`, and re-evaluates nothing — call
    /// [`Simulator::step_comb`] afterwards if gate values are needed.
    pub fn reset(&mut self) {
        for s in self.netlist.signals() {
            match self.netlist.kind(s) {
                NetKind::Register { init, .. } => self.values[s.index()] = Tv::from(*init),
                NetKind::Input => self.values[s.index()] = Tv::X,
                NetKind::Gate { .. } => self.values[s.index()] = Tv::X,
                NetKind::Const(_) => {}
            }
        }
    }

    /// Propagates values through all combinational gates in topological
    /// order.
    pub fn step_comb(&mut self) {
        let mut fanin_vals: Vec<Tv> = Vec::with_capacity(4);
        for &g in &self.order {
            let NetKind::Gate { op, fanins } = self.netlist.kind(g) else {
                continue;
            };
            fanin_vals.clear();
            fanin_vals.extend(fanins.iter().map(|f| self.values[f.index()]));
            self.values[g.index()] = Tv::eval_gate(*op, &fanin_vals);
        }
    }

    /// Latches every register: its value becomes the current value of its
    /// next-state input. Call after [`Simulator::step_comb`].
    pub fn latch(&mut self) {
        // Two phases so registers feeding registers latch simultaneously.
        let next_vals: Vec<(SignalId, Tv)> = self
            .netlist
            .registers()
            .iter()
            .map(|&r| (r, self.values[self.netlist.register_next(r).index()]))
            .collect();
        for (r, v) in next_vals {
            self.values[r.index()] = v;
        }
    }

    /// One full cycle: drive `inputs` (all other primary inputs become `X`),
    /// propagate, latch.
    pub fn step(&mut self, inputs: &Cube) {
        for &i in self.netlist.inputs() {
            self.values[i.index()] = Tv::X;
        }
        self.apply_cube(inputs);
        self.step_comb();
        self.latch();
    }

    /// Sets the register state from a cube (registers not mentioned keep
    /// their current value).
    pub fn set_state(&mut self, state: &Cube) {
        self.apply_cube(state);
    }

    /// Replays a trace from the design's initial state, checking at each
    /// cycle that no simulated binary value conflicts with the trace.
    ///
    /// Returns `true` if the whole trace is consistent with the design (every
    /// state cube is compatible with the simulated values and the input
    /// cubes drive the design through it). This is the validation used on
    /// falsification witnesses.
    pub fn replay(&mut self, trace: &Trace) -> bool {
        if trace.is_empty() {
            return true;
        }
        self.reset();
        for (i, step) in trace.steps().iter().enumerate() {
            // Check the state cube against current register values.
            for (s, v) in step.state.iter() {
                if self.values[s.index()].conflicts_with(v) {
                    return false;
                }
                // Trace values refine unknowns.
                self.values[s.index()] = Tv::from(v);
            }
            if i + 1 < trace.num_cycles() {
                self.step(&step.inputs);
            } else {
                // Final state: evaluate combinational logic for output checks.
                for &inp in self.netlist.inputs() {
                    self.values[inp.index()] = Tv::X;
                }
                self.apply_cube(&step.inputs);
                self.step_comb();
            }
        }
        true
    }

    /// Runs `cycles` cycles from the current state with all inputs unknown,
    /// returning the value of `watch` after each cycle.
    pub fn free_run(&mut self, cycles: usize, watch: SignalId) -> Vec<Tv> {
        let mut out = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            self.step(&Cube::new());
            // step() latches before we sample the watched signal, so compute
            // combinational values of the new state for the sample.
            self.step_comb();
            out.push(self.values[watch.index()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{GateOp, TraceStep};

    /// A 2-bit counter with carry output.
    fn counter() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut n = Netlist::new("c");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b0, b1]);
        let carry = n.add_gate("carry", GateOp::And, &[b0, b1]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        n.validate().unwrap();
        (n, b0, b1, carry)
    }

    #[test]
    fn counter_counts() {
        let (n, b0, b1, _) = counter();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push((sim.value(b1), sim.value(b0)));
            sim.step(&Cube::new());
        }
        use Tv::{One, Zero};
        assert_eq!(
            seen,
            vec![
                (Zero, Zero),
                (Zero, One),
                (One, Zero),
                (One, One),
                (Zero, Zero)
            ]
        );
    }

    #[test]
    fn unknown_inputs_propagate_x() {
        let mut n = Netlist::new("x");
        let i = n.add_input("i");
        let g = n.add_gate("g", GateOp::Not, &[i]);
        let r = n.add_register("r", Some(true));
        n.set_register_next(r, g).unwrap();
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        sim.step(&Cube::new());
        assert_eq!(sim.value(r), Tv::X);
        // Driving the input resolves it.
        sim.reset();
        sim.step(&[(i, true)].into_iter().collect());
        assert_eq!(sim.value(r), Tv::Zero);
    }

    #[test]
    fn controlling_values_mask_x() {
        let mut n = Netlist::new("m");
        let i = n.add_input("i");
        let zero = n.add_const("zero", false);
        let g = n.add_gate("g", GateOp::And, &[i, zero]);
        let r = n.add_register("r", None);
        n.set_register_next(r, g).unwrap();
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        assert_eq!(sim.value(r), Tv::X); // unknown reset
        sim.step(&Cube::new());
        assert_eq!(sim.value(r), Tv::Zero); // and with constant 0
    }

    #[test]
    fn replay_accepts_real_trace_and_rejects_fake() {
        let (n, b0, b1, _) = counter();
        let mut sim = Simulator::new(&n).unwrap();
        // Real: 00 -> 01 -> 10
        let mut t = Trace::new();
        for (v1, v0) in [(false, false), (false, true), (true, false)] {
            t.push(TraceStep {
                state: [(b0, v0), (b1, v1)].into_iter().collect(),
                inputs: Cube::new(),
            });
        }
        assert!(sim.replay(&t));
        // Fake: 00 -> 11 is not a counter transition.
        let mut bad = Trace::new();
        bad.push(TraceStep {
            state: [(b0, false), (b1, false)].into_iter().collect(),
            inputs: Cube::new(),
        });
        bad.push(TraceStep {
            state: [(b0, true), (b1, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        assert!(!sim.replay(&bad));
    }

    #[test]
    fn partial_trace_cubes_are_tolerated() {
        let (n, b0, _, _) = counter();
        let mut sim = Simulator::new(&n).unwrap();
        // Only constrain b0; b1 is left unknown by the trace.
        let mut t = Trace::new();
        for v0 in [false, true, false] {
            t.push(TraceStep {
                state: [(b0, v0)].into_iter().collect(),
                inputs: Cube::new(),
            });
        }
        assert!(sim.replay(&t));
    }

    #[test]
    fn set_state_overrides_registers() {
        let (n, b0, b1, carry) = counter();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        sim.set_state(&[(b0, true), (b1, true)].into_iter().collect());
        sim.step_comb();
        assert_eq!(sim.value(carry), Tv::One);
    }

    #[test]
    fn latch_is_simultaneous() {
        // Shift register: r2 <- r1 <- r0; all latch from pre-step values.
        let mut n = Netlist::new("s");
        let i = n.add_input("i");
        let r0 = n.add_register("r0", Some(true));
        let r1 = n.add_register("r1", Some(false));
        let r2 = n.add_register("r2", Some(false));
        n.set_register_next(r0, i).unwrap();
        n.set_register_next(r1, r0).unwrap();
        n.set_register_next(r2, r1).unwrap();
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        sim.step(&[(i, false)].into_iter().collect());
        assert_eq!(sim.value(r1), Tv::One); // got r0's old value
        assert_eq!(sim.value(r2), Tv::Zero); // got r1's old value, not r0's
    }
}

#[cfg(test)]
mod free_run_tests {
    use super::*;
    use rfn_netlist::GateOp;

    #[test]
    fn free_run_reports_watch_values() {
        // Deterministic toggler: no inputs, so a free run is fully binary.
        let mut n = Netlist::new("t");
        let t = n.add_register("t", Some(false));
        let nt = n.add_gate("nt", GateOp::Not, &[t]);
        n.set_register_next(t, nt).unwrap();
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        let vals = sim.free_run(4, t);
        assert_eq!(vals, vec![Tv::One, Tv::Zero, Tv::One, Tv::Zero]);
    }

    #[test]
    fn free_run_goes_x_with_undriven_inputs() {
        let mut n = Netlist::new("t");
        let i = n.add_input("i");
        let r = n.add_register("r", Some(false));
        n.set_register_next(r, i).unwrap();
        n.validate().unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.reset();
        let vals = sim.free_run(2, r);
        assert_eq!(vals, vec![Tv::X, Tv::X]);
        assert_eq!(sim.netlist().name(), "t");
    }
}
