//! Trace conflict analysis: phase one of RFN's crucial-register
//! identification (Section 2.4 of the paper).

use std::collections::HashMap;

use rfn_netlist::{Netlist, NetlistError, SignalId, Trace};
use rfn_trace::TraceCtx;

use crate::{PackedSim, Tv};

/// Result of [`simulate_trace_conflicts`].
#[derive(Clone, Debug, Default)]
pub struct TraceConflicts {
    /// `(cycle, register)` pairs where the simulated register value was
    /// binary and disagreed with the value the trace demanded.
    pub conflicts: Vec<(usize, SignalId)>,
    /// How many times each register *appears* (is assigned a value) in the
    /// trace. Used as the fallback ranking when no conflicts are found.
    pub appearance_counts: HashMap<SignalId, usize>,
}

impl TraceConflicts {
    /// Registers with at least one conflict, ordered by first conflict cycle
    /// (ties broken by total conflict count, most conflicts first).
    pub fn conflicting_registers(&self) -> Vec<SignalId> {
        let mut first: HashMap<SignalId, usize> = HashMap::new();
        let mut count: HashMap<SignalId, usize> = HashMap::new();
        for &(cycle, reg) in &self.conflicts {
            first
                .entry(reg)
                .and_modify(|c| *c = (*c).min(cycle))
                .or_insert(cycle);
            *count.entry(reg).or_insert(0) += 1;
        }
        let mut regs: Vec<SignalId> = first.keys().copied().collect();
        regs.sort_by_key(|r| (first[r], std::cmp::Reverse(count[r]), *r));
        regs
    }

    /// Registers ranked by appearance frequency (most frequent first), the
    /// paper's fallback when three-valued simulation finds no conflict.
    pub fn most_frequent_registers(&self) -> Vec<SignalId> {
        let mut regs: Vec<(SignalId, usize)> = self
            .appearance_counts
            .iter()
            .map(|(&r, &c)| (r, c))
            .collect();
        regs.sort_by_key(|&(r, c)| (std::cmp::Reverse(c), r));
        regs.into_iter().map(|(r, _)| r).collect()
    }
}

/// Replays an abstract error trace on the original design with three-valued
/// simulation and reports the registers whose simulated value conflicts with
/// the trace.
///
/// Following the paper: the design starts in the trace's beginning state
/// (registers and inputs the trace does not assign are `X`), each step drives
/// the primary inputs from the trace's input cube, and after each step every
/// register assigned by the trace is compared against its simulated value.
/// `X` does not conflict with anything. On a conflict the *trace's* value is
/// used for the subsequent simulation steps, so later cycles are analyzed
/// under the trace's assumptions.
///
/// Registers assigned by the trace's *input* cubes (the abstract model's
/// pseudo-inputs) participate in exactly the same compare-then-force
/// protocol; these are the prime crucial-register candidates.
///
/// # Errors
///
/// Returns the underlying validation error if the netlist is malformed.
pub fn simulate_trace_conflicts(
    netlist: &Netlist,
    trace: &Trace,
) -> Result<TraceConflicts, NetlistError> {
    simulate_trace_conflicts_traced(netlist, trace, &TraceCtx::disabled())
}

/// Like [`simulate_trace_conflicts`], emitting one `sim.conflicts` point
/// event (trace cycles, conflicts found, distinct registers involved) into
/// the given trace context.
///
/// # Errors
///
/// Returns the underlying validation error if the netlist is malformed.
pub fn simulate_trace_conflicts_traced(
    netlist: &Netlist,
    trace: &Trace,
    ctx: &TraceCtx,
) -> Result<TraceConflicts, NetlistError> {
    let (report, counters) = simulate_conflicts_inner(netlist, trace)?;
    if ctx.is_enabled() {
        ctx.point(
            "sim.conflicts",
            vec![
                ("cycles".to_owned(), trace.num_cycles().into()),
                ("conflicts".to_owned(), report.conflicts.len().into()),
                (
                    "registers".to_owned(),
                    report.conflicting_registers().len().into(),
                ),
                ("gate_evals".to_owned(), counters.gate_evals.into()),
                ("gates_skipped".to_owned(), counters.gates_skipped.into()),
            ],
        );
    }
    Ok(report)
}

/// Runs the compare-then-force protocol on the packed kernel (values are
/// broadcast, lane 0 is read back) and returns the conflict report together
/// with the kernel's work counters.
fn simulate_conflicts_inner(
    netlist: &Netlist,
    trace: &Trace,
) -> Result<(TraceConflicts, crate::PackedSimCounters), NetlistError> {
    let mut sim = PackedSim::new(netlist)?;
    let mut report = TraceConflicts::default();
    if trace.is_empty() {
        return Ok((report, sim.counters()));
    }
    // Count register appearances across all cubes of the trace.
    for step in trace.steps() {
        for (s, _) in step.state.iter().chain(step.inputs.iter()) {
            if netlist.is_register(s) {
                *report.appearance_counts.entry(s).or_insert(0) += 1;
            }
        }
    }

    // Begin from the trace's starting state; everything else unknown.
    for s in netlist.signals() {
        if !matches!(netlist.kind(s), rfn_netlist::NetKind::Const(_)) {
            sim.set_all(s, Tv::X);
        }
    }
    sim.set_state(&trace.steps()[0].state);

    for (cycle, step) in trace.steps().iter().enumerate() {
        if cycle > 0 {
            // Compare simulated register values against this cycle's state
            // cube, then force the trace's values.
            for (s, v) in step.state.iter() {
                if netlist.is_register(s) {
                    if sim.lane(s, 0).conflicts_with(v) {
                        report.conflicts.push((cycle, s));
                    }
                    sim.set_all(s, Tv::from(v));
                }
            }
        }
        if cycle + 1 == trace.num_cycles() {
            break;
        }
        // Drive inputs; compare-then-force pseudo-input registers.
        for &i in netlist.inputs() {
            sim.set_all(i, Tv::X);
        }
        for (s, v) in step.inputs.iter() {
            if netlist.is_register(s) {
                if sim.lane(s, 0).conflicts_with(v) {
                    report.conflicts.push((cycle, s));
                }
                sim.set_all(s, Tv::from(v));
            } else {
                sim.set_all(s, Tv::from(v));
            }
        }
        sim.step_comb();
        sim.latch();
    }
    Ok((report, sim.counters()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{Cube, GateOp, TraceStep};

    /// Design where register `b` gates register `a`: a' = a | b, b' = i.
    /// An abstract trace over {a} that pretends b=1 drives a conflicts when b
    /// is actually forced low.
    fn gated() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut n = Netlist::new("g");
        let i = n.add_input("i");
        let a = n.add_register("a", Some(false));
        let b = n.add_register("b", Some(false));
        let upd = n.add_gate("upd", GateOp::Or, &[a, b]);
        n.set_register_next(a, upd).unwrap();
        n.set_register_next(b, i).unwrap();
        n.validate().unwrap();
        (n, i, a, b)
    }

    #[test]
    fn conflict_found_when_trace_contradicts_design() {
        let (n, _, a, b) = gated();
        // Abstract trace (over N = {a} with pseudo-input b):
        // cycle0: a=0, inputs say b=1  -> cycle1: a=1.
        // But in M, b resets to 0 and i is unconstrained... b=X at cycle 0?
        // b starts at X (trace doesn't assign b in the state), so forcing b=1
        // is consistent -> no conflict on this trace.
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(a, false)].into_iter().collect(),
            inputs: [(b, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(a, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let rep = simulate_trace_conflicts(&n, &t).unwrap();
        assert!(rep.conflicts.is_empty());

        // Now a trace that *also* constrains b=0 in the beginning state and
        // still claims b=1 as pseudo-input in the same cycle: conflict on b.
        let mut t2 = Trace::new();
        t2.push(TraceStep {
            state: [(a, false), (b, false)].into_iter().collect(),
            inputs: [(b, true)].into_iter().collect(),
        });
        t2.push(TraceStep {
            state: [(a, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let rep2 = simulate_trace_conflicts(&n, &t2).unwrap();
        assert_eq!(rep2.conflicts, vec![(0, b)]);
        assert_eq!(rep2.conflicting_registers(), vec![b]);
    }

    #[test]
    fn forced_values_propagate_after_conflict() {
        let (n, _, a, b) = gated();
        // Trace: b=0 at start, pseudo-input b=1 (conflict at cycle 0), then
        // claims a=1 at cycle 1. With b forced to 1, a' = a|b = 1: the state
        // cube at cycle 1 must NOT conflict because the trace value was used.
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(a, false), (b, false)].into_iter().collect(),
            inputs: [(b, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(a, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let rep = simulate_trace_conflicts(&n, &t).unwrap();
        // Only the b conflict, no a conflict.
        assert_eq!(rep.conflicts.len(), 1);
        assert_eq!(rep.conflicts[0].1, b);
    }

    #[test]
    fn state_conflicts_detected_mid_trace() {
        let (n, i, a, b) = gated();
        // Force i=1 so b becomes 1 at cycle 1, but trace claims b=0 then.
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(a, false), (b, false)].into_iter().collect(),
            inputs: [(i, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(a, false), (b, false)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let rep = simulate_trace_conflicts(&n, &t).unwrap();
        assert_eq!(rep.conflicts, vec![(1, b)]);
    }

    #[test]
    fn appearance_counts_rank_fallback() {
        let (n, _, a, b) = gated();
        let mut t = Trace::new();
        for _ in 0..3 {
            t.push(TraceStep {
                state: [(a, false)].into_iter().collect(),
                inputs: [(b, false)].into_iter().collect(),
            });
        }
        let rep = simulate_trace_conflicts(&n, &t).unwrap();
        assert!(rep.conflicts.is_empty());
        // b appears 3 times (inputs), a appears 3 times (state): both there.
        let freq = rep.most_frequent_registers();
        assert_eq!(freq.len(), 2);
        assert_eq!(rep.appearance_counts[&a], 3);
        assert_eq!(rep.appearance_counts[&b], 3);
    }

    #[test]
    fn empty_trace_is_no_conflicts() {
        let (n, ..) = gated();
        let rep = simulate_trace_conflicts(&n, &Trace::new()).unwrap();
        assert!(rep.conflicts.is_empty());
        assert!(rep.appearance_counts.is_empty());
    }
}
