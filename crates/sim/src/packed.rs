//! Bit-parallel three-valued simulation: 64 independent patterns per step.
//!
//! [`PackedSim`] evaluates the same Kleene semantics as the scalar
//! [`Simulator`](crate::Simulator), but over 64 lanes at once. Each signal
//! holds a [`PackedTv`]: two 64-bit planes where bit `i` of `can0`/`can1`
//! says whether lane `i` can be 0/1. Exactly one plane set is a binary
//! value; both set is `X`. Gate evaluation is then a handful of word-wide
//! boolean operations per gate for all 64 patterns together.
//!
//! Evaluation runs over the precomputed level order of the netlist (flat
//! arrays, no per-step hashing), with an event-driven *dirty-level* cutoff:
//! driving a signal records the lowest logic level it feeds, and
//! [`PackedSim::step_comb`] starts there, skipping every level below.
//!
//! # Example
//!
//! ```
//! use rfn_netlist::{GateOp, Netlist};
//! use rfn_sim::{PackedSim, PackedTv, Tv};
//!
//! # fn main() -> Result<(), rfn_netlist::NetlistError> {
//! let mut n = Netlist::new("and2");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate("g", GateOp::And, &[a, b]);
//! n.validate()?;
//!
//! let mut sim = PackedSim::new(&n)?;
//! sim.reset();
//! sim.set(a, PackedTv::from_bits(0b01)); // lane 0 = 1, lane 1 = 0
//! sim.set(b, PackedTv::splat(Tv::One));
//! sim.step_comb();
//! assert_eq!(sim.lane(g, 0), Tv::One);
//! assert_eq!(sim.lane(g, 1), Tv::Zero);
//! # Ok(())
//! # }
//! ```

use rfn_netlist::{Cube, GateOp, NetKind, Netlist, NetlistError, SignalId};

use crate::simulator::Levels;
use crate::Tv;

/// 64 three-valued lanes packed into two bit-planes.
///
/// Bit `i` of `can0` (`can1`) says lane `i` may be logic 0 (1). Exactly one
/// plane set encodes a binary lane; both set encodes `X`. The simulator
/// never produces the empty encoding (both planes clear).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedTv {
    /// Lanes that may be logic 0.
    pub can0: u64,
    /// Lanes that may be logic 1.
    pub can1: u64,
}

impl PackedTv {
    /// All 64 lanes unknown.
    pub const X: PackedTv = PackedTv { can0: !0, can1: !0 };
    /// All 64 lanes logic 0.
    pub const ZERO: PackedTv = PackedTv { can0: !0, can1: 0 };
    /// All 64 lanes logic 1.
    pub const ONE: PackedTv = PackedTv { can0: 0, can1: !0 };

    /// Broadcasts one scalar value to all 64 lanes.
    #[inline]
    pub fn splat(v: Tv) -> PackedTv {
        match v {
            Tv::Zero => PackedTv::ZERO,
            Tv::One => PackedTv::ONE,
            Tv::X => PackedTv::X,
        }
    }

    /// Binary lanes from a word: a set bit is a 1 lane, a clear bit a 0 lane.
    #[inline]
    pub fn from_bits(bits: u64) -> PackedTv {
        PackedTv {
            can0: !bits,
            can1: bits,
        }
    }

    /// The value of one lane (0–63).
    #[inline]
    pub fn lane(self, lane: usize) -> Tv {
        let b = 1u64 << lane;
        match (self.can0 & b != 0, self.can1 & b != 0) {
            (true, false) => Tv::Zero,
            (false, true) => Tv::One,
            _ => Tv::X,
        }
    }

    /// Mask of lanes whose value is definitely the given binary value.
    #[inline]
    pub fn mask_of(self, v: bool) -> u64 {
        if v {
            self.can1 & !self.can0
        } else {
            self.can0 & !self.can1
        }
    }

    /// Mask of lanes holding a binary (non-`X`) value.
    #[inline]
    pub fn known_mask(self) -> u64 {
        self.can0 ^ self.can1
    }

    /// Lanewise three-valued negation: the planes swap. Named to mirror
    /// [`Tv::not`](crate::Tv::not) and the other gate-algebra methods.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> PackedTv {
        PackedTv {
            can0: self.can1,
            can1: self.can0,
        }
    }

    /// Lanewise three-valued conjunction.
    #[inline]
    pub fn and(self, o: PackedTv) -> PackedTv {
        PackedTv {
            can0: self.can0 | o.can0,
            can1: self.can1 & o.can1,
        }
    }

    /// Lanewise three-valued disjunction.
    #[inline]
    pub fn or(self, o: PackedTv) -> PackedTv {
        PackedTv {
            can0: self.can0 & o.can0,
            can1: self.can1 | o.can1,
        }
    }

    /// Lanewise three-valued exclusive or.
    #[inline]
    pub fn xor(self, o: PackedTv) -> PackedTv {
        PackedTv {
            can0: (self.can0 & o.can0) | (self.can1 & o.can1),
            can1: (self.can0 & o.can1) | (self.can1 & o.can0),
        }
    }

    /// Evaluates a gate operator lanewise over packed fanins, matching
    /// [`Tv::eval_gate`] on every lane (including the Mux agreeing-data rule
    /// under an unknown select).
    ///
    /// # Panics
    ///
    /// Panics if `vals` violates the operator's arity.
    pub fn eval_gate(op: GateOp, vals: &[PackedTv]) -> PackedTv {
        match op {
            GateOp::Buf => vals[0],
            GateOp::Not => vals[0].not(),
            GateOp::And => vals.iter().fold(PackedTv::ONE, |a, &v| a.and(v)),
            GateOp::Nand => vals.iter().fold(PackedTv::ONE, |a, &v| a.and(v)).not(),
            GateOp::Or => vals.iter().fold(PackedTv::ZERO, |a, &v| a.or(v)),
            GateOp::Nor => vals.iter().fold(PackedTv::ZERO, |a, &v| a.or(v)).not(),
            GateOp::Xor => vals.iter().fold(PackedTv::ZERO, |a, &v| a.xor(v)),
            GateOp::Xnor => vals.iter().fold(PackedTv::ZERO, |a, &v| a.xor(v)).not(),
            GateOp::Mux => {
                let (s, d0, d1) = (vals[0], vals[1], vals[2]);
                // A lane can be v if the select can pick a data input that
                // can be v — exactly Kleene's "agreeing data" rule.
                PackedTv {
                    can0: (s.can0 & d0.can0) | (s.can1 & d1.can0),
                    can1: (s.can0 & d0.can1) | (s.can1 & d1.can1),
                }
            }
        }
    }
}

/// Work counters accumulated by a [`PackedSim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackedSimCounters {
    /// Gate evaluations performed; each evaluates all 64 lanes at once.
    pub gate_evals: u64,
    /// Gate evaluations skipped by the dirty-level cutoff.
    pub gates_skipped: u64,
}

/// The bit-parallel levelized simulator: 64 patterns per step.
///
/// The cycle protocol mirrors the scalar [`Simulator`](crate::Simulator):
/// set state ([`PackedSim::reset`]), drive inputs ([`PackedSim::set`] /
/// [`PackedSim::apply_cube`]), propagate ([`PackedSim::step_comb`]), latch
/// ([`PackedSim::latch`]); [`PackedSim::step`] bundles the last three.
/// Broadcasting scalar values with [`PackedTv::splat`] makes every lane
/// compute the scalar semantics, so packed simulation with lane 0 read back
/// is a drop-in replacement for the scalar engine.
#[derive(Clone, Debug)]
pub struct PackedSim<'n> {
    netlist: &'n Netlist,
    levels: Levels,
    can0: Vec<u64>,
    can1: Vec<u64>,
    /// Lowest logic level whose gates may be stale; `u32::MAX` = all clean.
    dirty_from: u32,
    counters: PackedSimCounters,
}

impl<'n> PackedSim<'n> {
    /// Creates a packed simulator for a validated netlist.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the netlist fails validation (e.g. a
    /// combinational cycle or an unconnected register).
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        let levels = Levels::new(netlist)?;
        let n = netlist.num_signals();
        let mut sim = PackedSim {
            netlist,
            levels,
            can0: vec![!0; n],
            can1: vec![!0; n],
            dirty_from: 0,
            counters: PackedSimCounters::default(),
        };
        for s in netlist.signals() {
            if let NetKind::Const(v) = netlist.kind(s) {
                let w = PackedTv::splat(Tv::from(*v));
                sim.can0[s.index()] = w.can0;
                sim.can1[s.index()] = w.can1;
            }
        }
        Ok(sim)
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of combinational gates evaluated per full step.
    pub fn num_gates(&self) -> usize {
        self.levels.num_gates()
    }

    /// Number of logic levels in the evaluation order.
    pub fn num_levels(&self) -> usize {
        self.levels.num_levels()
    }

    /// Accumulated work counters.
    pub fn counters(&self) -> PackedSimCounters {
        self.counters
    }

    /// Current packed value of a signal.
    pub fn value(&self, s: SignalId) -> PackedTv {
        PackedTv {
            can0: self.can0[s.index()],
            can1: self.can1[s.index()],
        }
    }

    /// Current value of one lane of a signal.
    pub fn lane(&self, s: SignalId, lane: usize) -> Tv {
        self.value(s).lane(lane)
    }

    /// Sets a signal's packed value directly (inputs, pseudo-inputs or
    /// forced registers), marking the affected levels dirty only when the
    /// value actually changes.
    pub fn set(&mut self, s: SignalId, v: PackedTv) {
        let i = s.index();
        if self.can0[i] == v.can0 && self.can1[i] == v.can1 {
            return;
        }
        self.can0[i] = v.can0;
        self.can1[i] = v.can1;
        let d = self.levels.gate_level[i].min(self.levels.min_fanout_level[i]);
        self.dirty_from = self.dirty_from.min(d);
    }

    /// Broadcasts one scalar value to all 64 lanes of a signal.
    pub fn set_all(&mut self, s: SignalId, v: Tv) {
        self.set(s, PackedTv::splat(v));
    }

    /// Broadcasts every literal of the cube to all lanes of its signal.
    pub fn apply_cube(&mut self, cube: &Cube) {
        for (s, v) in cube.iter() {
            self.set(s, PackedTv::splat(Tv::from(v)));
        }
    }

    /// Resets registers to their initial values (`X` for unknown resets) and
    /// primary inputs and gates to `X`, on every lane. Call
    /// [`PackedSim::step_comb`] afterwards if gate values are needed.
    pub fn reset(&mut self) {
        for s in self.netlist.signals() {
            let v = match self.netlist.kind(s) {
                NetKind::Register { init, .. } => PackedTv::splat(Tv::from(*init)),
                NetKind::Input | NetKind::Gate { .. } => PackedTv::X,
                NetKind::Const(_) => continue,
            };
            self.can0[s.index()] = v.can0;
            self.can1[s.index()] = v.can1;
        }
        self.dirty_from = 0;
    }

    /// Propagates values through the combinational gates in level order,
    /// starting at the lowest dirty level and skipping everything below.
    pub fn step_comb(&mut self) {
        let total = self.levels.order.len();
        let start_level = std::mem::replace(&mut self.dirty_from, u32::MAX);
        if start_level == u32::MAX {
            self.counters.gates_skipped += total as u64;
            return;
        }
        let first = self.levels.starts[start_level as usize] as usize;
        self.counters.gates_skipped += first as u64;
        self.counters.gate_evals += (total - first) as u64;
        let mut vals: Vec<PackedTv> = Vec::with_capacity(4);
        for k in first..total {
            let gi = self.levels.order[k] as usize;
            let lo = self.levels.fanin_starts[k] as usize;
            let hi = self.levels.fanin_starts[k + 1] as usize;
            vals.clear();
            for &f in &self.levels.fanins[lo..hi] {
                vals.push(PackedTv {
                    can0: self.can0[f as usize],
                    can1: self.can1[f as usize],
                });
            }
            let v = PackedTv::eval_gate(self.levels.ops[k], &vals);
            self.can0[gi] = v.can0;
            self.can1[gi] = v.can1;
        }
    }

    /// Latches every register: its value becomes the current value of its
    /// next-state input, simultaneously across registers. Call after
    /// [`PackedSim::step_comb`].
    pub fn latch(&mut self) {
        // Two phases so registers feeding registers latch simultaneously.
        let next: Vec<(SignalId, PackedTv)> = self
            .netlist
            .registers()
            .iter()
            .map(|&r| (r, self.value(self.netlist.register_next(r))))
            .collect();
        for (r, v) in next {
            self.set(r, v);
        }
    }

    /// One full cycle: broadcast `inputs` (all other primary inputs become
    /// `X` on every lane), propagate, latch.
    pub fn step(&mut self, inputs: &Cube) {
        for &i in self.netlist.inputs() {
            self.set_all(i, Tv::X);
        }
        self.apply_cube(inputs);
        self.step_comb();
        self.latch();
    }

    /// Broadcasts the register state from a cube (registers not mentioned
    /// keep their current value).
    pub fn set_state(&mut self, state: &Cube) {
        self.apply_cube(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Tv; 3] = [Tv::Zero, Tv::One, Tv::X];

    /// Every binary op matches the scalar `Tv` table on every lane pattern.
    #[test]
    fn lanewise_ops_match_scalar() {
        for a in ALL {
            for b in ALL {
                let (pa, pb) = (PackedTv::splat(a), PackedTv::splat(b));
                assert_eq!(pa.and(pb).lane(17), a.and(b), "and({a},{b})");
                assert_eq!(pa.or(pb).lane(17), a.or(b), "or({a},{b})");
                assert_eq!(pa.xor(pb).lane(17), a.xor(b), "xor({a},{b})");
                assert_eq!(pa.not().lane(17), a.not(), "not({a})");
            }
        }
    }

    /// Exhaustive broadcast check of every gate op against `Tv::eval_gate`,
    /// including the Mux unknown-select cases.
    #[test]
    fn eval_gate_matches_scalar_broadcast() {
        use rfn_netlist::GateOp::*;
        for op in [And, Nand, Or, Nor, Xor, Xnor, Mux] {
            for a in ALL {
                for b in ALL {
                    for c in ALL {
                        let scalar = Tv::eval_gate(op, &[a, b, c]);
                        let packed = PackedTv::eval_gate(
                            op,
                            &[PackedTv::splat(a), PackedTv::splat(b), PackedTv::splat(c)],
                        );
                        for lane in [0, 31, 63] {
                            assert_eq!(packed.lane(lane), scalar, "{op:?}({a},{b},{c})");
                        }
                    }
                }
            }
        }
        for op in [Buf, Not] {
            for a in ALL {
                let scalar = Tv::eval_gate(op, &[a]);
                let packed = PackedTv::eval_gate(op, &[PackedTv::splat(a)]);
                assert_eq!(packed.lane(5), scalar, "{op:?}({a})");
            }
        }
    }

    #[test]
    fn masks_and_bits_roundtrip() {
        let v = PackedTv::from_bits(0b1010);
        assert_eq!(v.mask_of(true), 0b1010);
        assert_eq!(v.mask_of(false), !0b1010u64);
        assert_eq!(v.known_mask(), !0);
        assert_eq!(v.lane(1), Tv::One);
        assert_eq!(v.lane(0), Tv::Zero);
        assert_eq!(PackedTv::X.known_mask(), 0);
        assert_eq!(PackedTv::X.mask_of(true), 0);
    }

    /// The dirty-level skip: a second `step_comb` with unchanged inputs does
    /// no gate work, and re-driving the same value keeps the skip.
    #[test]
    fn dirty_level_skip_counts_work() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let g0 = n.add_gate("g0", GateOp::Not, &[a]);
        let g1 = n.add_gate("g1", GateOp::Not, &[g0]);
        let _g2 = n.add_gate("g2", GateOp::Not, &[g1]);
        n.validate().unwrap();
        let mut sim = PackedSim::new(&n).unwrap();
        sim.reset();
        sim.set_all(a, Tv::One);
        sim.step_comb();
        assert_eq!(sim.counters().gate_evals, 3);
        sim.step_comb(); // clean: everything skipped
        assert_eq!(sim.counters().gate_evals, 3);
        assert_eq!(sim.counters().gates_skipped, 3);
        sim.set_all(a, Tv::One); // unchanged value: still clean
        sim.step_comb();
        assert_eq!(sim.counters().gate_evals, 3);
        sim.set_all(a, Tv::Zero); // change: full re-evaluation from level 0
        sim.step_comb();
        assert_eq!(sim.counters().gate_evals, 6);
    }

    /// Dirtying a mid-cone signal only re-evaluates levels at or above it.
    #[test]
    fn dirty_level_skip_starts_mid_cone() {
        let mut n = Netlist::new("two_cones");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g0 = n.add_gate("g0", GateOp::Not, &[a]); // level 0
        let g1 = n.add_gate("g1", GateOp::And, &[g0, b]); // level 1
        let _g2 = n.add_gate("g2", GateOp::Not, &[g1]); // level 2
        n.validate().unwrap();
        let mut sim = PackedSim::new(&n).unwrap();
        sim.reset();
        sim.set_all(a, Tv::One);
        sim.set_all(b, Tv::One);
        sim.step_comb();
        assert_eq!(sim.counters().gate_evals, 3);
        // `b` feeds level 1 only: level 0 is skipped.
        sim.set_all(b, Tv::Zero);
        sim.step_comb();
        assert_eq!(sim.counters().gate_evals, 5);
        assert_eq!(sim.counters().gates_skipped, 1);
        assert_eq!(sim.lane(g1, 0), Tv::Zero);
    }

    /// Packed broadcast replays the scalar counter bit-exactly.
    #[test]
    fn broadcast_matches_scalar_counter() {
        let mut n = Netlist::new("c");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b0, b1]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        n.validate().unwrap();
        let mut scalar = crate::Simulator::new(&n).unwrap();
        let mut packed = PackedSim::new(&n).unwrap();
        scalar.reset();
        packed.reset();
        for _ in 0..6 {
            for s in n.signals() {
                for lane in [0, 63] {
                    assert_eq!(packed.lane(s, lane), scalar.value(s));
                }
            }
            scalar.step(&Cube::new());
            packed.step(&Cube::new());
        }
    }
}
