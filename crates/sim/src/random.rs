//! The random-simulation concretization engine.
//!
//! The cheapest engine in the concretization staging order: before paying
//! sequential-ATPG cost on an abstract error trace, replay the trace's
//! per-cycle cubes as *constraints* on the packed simulator and fill every
//! unconstrained input with 64-wide deterministic random vectors. Any lane
//! that lands in the target cube at the final cycle is a concrete
//! counterexample, recovered for a fraction of the ATPG cost; the per-cycle
//! *survivor counts* of missing batches report where random patterns fall
//! off the guidance corridor, which the ATPG uses to bias its decision
//! ordering toward the hardest time frames.

use rfn_govern::Budget;
use rfn_netlist::{Cube, Netlist, NetlistError, SignalId, Trace, TraceStep};
use rfn_trace::TraceCtx;

use crate::packed::{PackedSim, PackedTv};
use crate::{Simulator, Tv};

/// A small deterministic xorshift64* pseudo-random generator.
///
/// Quality is ample for simulation vectors, and determinism is the point:
/// the same seed yields the same patterns on every run and at every
/// portfolio thread count, so verdicts and traces are reproducible.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator. A zero seed (the xorshift fixed point) is
    /// remapped to a fixed non-zero constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Options for [`random_concretize`].
#[derive(Clone, Debug)]
pub struct RandomSimOptions {
    /// Number of 64-pattern batches to simulate per attempt (0 disables the
    /// engine entirely).
    pub batches: usize,
    /// Seed for the deterministic pattern generator.
    pub seed: u64,
    /// Shared resource budget, polled at every packed batch boundary: a
    /// cancelled or expired budget ends the attempt early with a miss.
    pub budget: Budget,
    /// Trace context the `sim.random` span is emitted into.
    pub trace: TraceCtx,
}

impl Default for RandomSimOptions {
    fn default() -> Self {
        RandomSimOptions {
            batches: 64,
            seed: 0x5EED_0001,
            budget: Budget::unlimited(),
            trace: TraceCtx::disabled(),
        }
    }
}

impl RandomSimOptions {
    /// Sets the batch count.
    #[must_use]
    pub fn with_batches(mut self, batches: usize) -> Self {
        self.batches = batches;
        self
    }

    /// Sets the pattern-generator seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a shared resource budget (replacing any previous one).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a structured-event context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }
}

/// Statistics of one [`random_concretize`] attempt.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RandomSimStats {
    /// Batches actually simulated (stops early on a hit).
    pub batches: u64,
    /// Patterns simulated (64 per batch).
    pub patterns: u64,
    /// Lanes that satisfied the target cube at the final cycle.
    pub hits: u64,
    /// Per trace cycle: lanes still consistent with the guidance cube at
    /// that cycle, summed over all batches. A steep drop marks the time
    /// frame where random patterns fall off the corridor — the hard frame.
    pub survivors: Vec<u64>,
    /// Packed gate evaluations spent (each covers 64 lanes).
    pub gate_evals: u64,
}

/// Tries to concretize an abstract error trace by guided random simulation.
///
/// `guidance` holds one cube per trace cycle (the abstract step's state and
/// input cubes merged). Primary-input literals are driven exactly;
/// register literals with an unknown reset value are forced at cycle 0 (any
/// concrete value is a legal reset); everything else unconstrained is filled
/// with fresh random words each batch. A lane whose final-cycle values
/// satisfy every literal of `target` is a concrete counterexample: the lane
/// is replayed on the scalar [`Simulator`] to rebuild (and independently
/// validate) the full [`Trace`].
///
/// Lanes are *not* required to stay inside the guidance corridor — any
/// pattern that reaches the target is a genuine counterexample. The
/// guidance only biases the search; per-cycle corridor survival is reported
/// in [`RandomSimStats::survivors`].
///
/// Emits one `sim.random` span (fields: `batches`, `patterns`, `hits`,
/// `gate_evals`, `outcome`) into `options.trace`.
///
/// # Errors
///
/// Returns the underlying validation error if the netlist is malformed.
pub fn random_concretize(
    netlist: &Netlist,
    target: &Cube,
    guidance: &[Cube],
    options: &RandomSimOptions,
) -> Result<(Option<Trace>, RandomSimStats), NetlistError> {
    let mut span = options.trace.span("sim.random");
    let (result, stats) = random_concretize_inner(netlist, target, guidance, options)?;
    if options.trace.is_enabled() {
        span.record("batches", stats.batches);
        span.record("patterns", stats.patterns);
        span.record("hits", stats.hits);
        span.record("gate_evals", stats.gate_evals);
        span.record("outcome", if result.is_some() { "hit" } else { "miss" });
    }
    Ok((result, stats))
}

fn random_concretize_inner(
    netlist: &Netlist,
    target: &Cube,
    guidance: &[Cube],
    options: &RandomSimOptions,
) -> Result<(Option<Trace>, RandomSimStats), NetlistError> {
    let mut stats = RandomSimStats::default();
    let depth = guidance.len();
    if depth == 0 || options.batches == 0 || target.is_empty() {
        return Ok((None, stats));
    }
    stats.survivors = vec![0u64; depth];
    let mut sim = PackedSim::new(netlist)?;
    let mut rng = XorShift64::new(options.seed);

    // Registers whose reset value is a free choice and unconstrained by the
    // guidance: randomized each batch alongside the free inputs.
    let free_init: Vec<SignalId> = netlist
        .registers()
        .iter()
        .copied()
        .filter(|&r| netlist.register_init(r).is_none() && guidance[0].get(r).is_none())
        .collect();

    for _ in 0..options.batches {
        // Batch boundaries are the packed engine's natural governance
        // checkpoint: an exhausted budget turns the attempt into a miss
        // (the concretization ladder then falls through to its next stage
        // or the loop reports the exhaustion).
        if options.budget.check().is_err() {
            break;
        }
        stats.batches += 1;
        stats.patterns += 64;
        sim.reset();
        // Guidance-pinned unknown resets take the abstract trace's word;
        // free unknown resets take a fresh random word (recorded for the
        // scalar replay of a hitting lane).
        for (r, v) in guidance[0].iter() {
            if netlist.is_register(r) && netlist.register_init(r).is_none() {
                sim.set(r, PackedTv::splat(Tv::from(v)));
            }
        }
        let mut init_words: Vec<(SignalId, u64)> = Vec::with_capacity(free_init.len());
        for &r in &free_init {
            let w = rng.next_u64();
            sim.set(r, PackedTv::from_bits(w));
            init_words.push((r, w));
        }
        let mut alive = !0u64;
        let mut input_words: Vec<Vec<u64>> = Vec::with_capacity(depth);
        for (t, cube) in guidance.iter().enumerate() {
            // Corridor survival: lanes whose register values are consistent
            // with this cycle's guidance literals.
            for (s, v) in cube.iter() {
                if netlist.is_register(s) {
                    alive &= sim.value(s).mask_of(v) | !sim.value(s).known_mask();
                }
            }
            stats.survivors[t] += u64::from(alive.count_ones());
            // Drive every primary input: pinned by guidance or random.
            let mut words = Vec::new();
            for &pi in netlist.inputs() {
                match cube.get(pi) {
                    Some(v) => sim.set(pi, PackedTv::splat(Tv::from(v))),
                    None => {
                        let w = rng.next_u64();
                        sim.set(pi, PackedTv::from_bits(w));
                        words.push(w);
                    }
                }
            }
            input_words.push(words);
            sim.step_comb();
            if t + 1 < depth {
                sim.latch();
            }
        }
        let mut hit = !0u64;
        for (s, v) in target.iter() {
            hit &= sim.value(s).mask_of(v);
        }
        if hit != 0 {
            stats.hits += u64::from(hit.count_ones());
            let lane = hit.trailing_zeros() as usize;
            let trace = rebuild_trace(netlist, target, guidance, &init_words, &input_words, lane)?;
            stats.gate_evals = sim.counters().gate_evals;
            if trace.is_some() {
                return Ok((trace, stats));
            }
            // A packed/scalar disagreement would be a kernel bug; stay
            // sound and treat the batch as a miss.
            debug_assert!(false, "packed hit failed scalar replay");
        }
    }
    stats.gate_evals = sim.counters().gate_evals;
    Ok((None, stats))
}

/// Replays one hitting lane on the scalar simulator, rebuilding the full
/// concrete trace (register state plus all input values per cycle). The
/// scalar replay doubles as an independent validation of the packed hit:
/// returns `None` if the target does not hold at the final cycle.
fn rebuild_trace(
    netlist: &Netlist,
    target: &Cube,
    guidance: &[Cube],
    init_words: &[(SignalId, u64)],
    input_words: &[Vec<u64>],
    lane: usize,
) -> Result<Option<Trace>, NetlistError> {
    let bit = |w: u64| (w >> lane) & 1 == 1;
    let depth = guidance.len();
    let mut sim = Simulator::new(netlist)?;
    sim.reset();
    for (r, v) in guidance[0].iter() {
        if netlist.is_register(r) && netlist.register_init(r).is_none() {
            sim.set(r, Tv::from(v));
        }
    }
    for &(r, w) in init_words {
        sim.set(r, Tv::from(bit(w)));
    }
    let mut trace = Trace::new();
    for (t, cube) in guidance.iter().enumerate() {
        let state: Cube = netlist
            .registers()
            .iter()
            .filter_map(|&r| sim.value(r).to_bool().map(|v| (r, v)))
            .collect();
        let mut free = input_words[t].iter();
        let inputs: Cube = netlist
            .inputs()
            .iter()
            .map(|&pi| match cube.get(pi) {
                Some(v) => (pi, v),
                None => (pi, bit(*free.next().expect("one word per free input"))),
            })
            .collect();
        trace.push(TraceStep {
            state,
            inputs: inputs.clone(),
        });
        if t + 1 < depth {
            sim.step(&inputs);
        } else {
            sim.apply_cube(&inputs);
            sim.step_comb();
        }
    }
    let ok = target
        .iter()
        .all(|(s, v)| sim.value(s).to_bool() == Some(v));
    Ok(ok.then_some(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::GateOp;

    /// The watchdog design from the concretization tests: `w` latches once
    /// input `go` is high while `arm` (set from input `a`) is high.
    fn watchdog() -> (Netlist, [SignalId; 4]) {
        let mut n = Netlist::new("d");
        let go = n.add_input("go");
        let a = n.add_input("a");
        let arm = n.add_register("arm", Some(false));
        n.set_register_next(arm, a).unwrap();
        let fire = n.add_gate("fire", GateOp::And, &[go, arm]);
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, fire]);
        n.set_register_next(w, wor).unwrap();
        n.validate().unwrap();
        (n, [go, a, arm, w])
    }

    #[test]
    fn pinned_corridor_hits_immediately() {
        let (n, [go, _, arm, w]) = watchdog();
        // Guidance pins the whole corridor: arm=1 and go=1 at cycle 1.
        let guidance: Vec<Cube> = vec![
            [(w, false)].into_iter().collect(),
            [(w, false), (go, true), (arm, true)].into_iter().collect(),
            [(w, true)].into_iter().collect(),
        ];
        let target: Cube = [(w, true)].into_iter().collect();
        let opts = RandomSimOptions::default();
        let (trace, stats) = random_concretize(&n, &target, &guidance, &opts).unwrap();
        let trace = trace.expect("pinned corridor must concretize");
        assert_eq!(trace.num_cycles(), 3);
        assert_eq!(stats.batches, 1, "first batch should hit");
        assert!(stats.hits > 0);
        // The rebuilt trace replays on the scalar engine.
        let mut sim = Simulator::new(&n).unwrap();
        assert!(sim.replay(&trace));
        assert_eq!(sim.value(w), Tv::One);
    }

    #[test]
    fn unconstrained_inputs_get_explored() {
        let (n, [_, _, _, w]) = watchdog();
        // No input pins at all: the engine must find go=1/a=1 on its own.
        let guidance: Vec<Cube> = vec![Cube::new(), Cube::new(), Cube::new()];
        let target: Cube = [(w, true)].into_iter().collect();
        let opts = RandomSimOptions::default();
        let (trace, stats) = random_concretize(&n, &target, &guidance, &opts).unwrap();
        assert!(trace.is_some(), "64-wide random should hit w=1 in depth 3");
        assert!(stats.hits > 0);
    }

    #[test]
    fn impossible_target_misses_with_full_stats() {
        let (n, [go, _, arm, w]) = watchdog();
        // go pinned low: `fire` can never pulse, so w stays 0.
        let guidance: Vec<Cube> = vec![
            [(go, false)].into_iter().collect(),
            [(go, false)].into_iter().collect(),
        ];
        let _ = arm;
        let target: Cube = [(w, true)].into_iter().collect();
        let opts = RandomSimOptions {
            batches: 4,
            ..RandomSimOptions::default()
        };
        let (trace, stats) = random_concretize(&n, &target, &guidance, &opts).unwrap();
        assert!(trace.is_none());
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.patterns, 4 * 64);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.survivors.len(), 2);
        // No register guidance: every lane survives every cycle.
        assert_eq!(stats.survivors[0], 4 * 64);
    }

    #[test]
    fn survivor_counts_drop_at_conflicting_cycle() {
        let (n, [_, _, arm, w]) = watchdog();
        // Guidance claims arm=1 at cycle 1, but `a` is pinned low, so no
        // lane can keep arm high: survivors collapse at cycle 1.
        let a = n.find("a").unwrap();
        let guidance: Vec<Cube> = vec![
            [(a, false)].into_iter().collect(),
            [(arm, true), (a, false)].into_iter().collect(),
            [(w, true)].into_iter().collect(),
        ];
        let target: Cube = [(w, true)].into_iter().collect();
        let opts = RandomSimOptions {
            batches: 2,
            ..RandomSimOptions::default()
        };
        let (trace, stats) = random_concretize(&n, &target, &guidance, &opts).unwrap();
        assert!(trace.is_none());
        assert_eq!(stats.survivors[0], 2 * 64);
        assert_eq!(stats.survivors[1], 0, "arm=1 is unreachable under a=0");
    }

    #[test]
    fn unknown_resets_follow_guidance_or_randomize() {
        // r has no reset value; guidance pins it high at cycle 0 and the
        // target requires it at cycle 0 (depth 1).
        let mut n = Netlist::new("x");
        let r = n.add_register("r", None);
        n.set_register_next(r, r).unwrap();
        n.validate().unwrap();
        let target: Cube = [(r, true)].into_iter().collect();
        let guidance: Vec<Cube> = vec![[(r, true)].into_iter().collect()];
        let opts = RandomSimOptions::default();
        let (trace, _) = random_concretize(&n, &target, &guidance, &opts).unwrap();
        let trace = trace.expect("pinned unknown reset must hit");
        assert_eq!(trace.steps()[0].state.get(r), Some(true));
        // Unpinned: random reset words still find r=1 quickly.
        let (trace, _) = random_concretize(&n, &target, &[Cube::new()], &opts).unwrap();
        assert!(trace.is_some());
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let (n, [_, _, _, w]) = watchdog();
        let guidance: Vec<Cube> = vec![Cube::new(), Cube::new(), Cube::new()];
        let target: Cube = [(w, true)].into_iter().collect();
        let opts = RandomSimOptions {
            seed: 42,
            ..RandomSimOptions::default()
        };
        let (t1, s1) = random_concretize(&n, &target, &guidance, &opts).unwrap();
        let (t2, s2) = random_concretize(&n, &target, &guidance, &opts).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            t1.map(|t| format!("{t:?}")),
            t2.map(|t| format!("{t:?}")),
            "same seed must produce the identical trace"
        );
        let (t3, _) = random_concretize(
            &n,
            &target,
            &guidance,
            &RandomSimOptions {
                seed: 43,
                ..RandomSimOptions::default()
            },
        )
        .unwrap();
        let _ = t3; // different seed may differ; only determinism is asserted
    }

    #[test]
    fn empty_guidance_or_zero_batches_is_a_cheap_miss() {
        let (n, [_, _, _, w]) = watchdog();
        let target: Cube = [(w, true)].into_iter().collect();
        let opts = RandomSimOptions::default();
        let (t, s) = random_concretize(&n, &target, &[], &opts).unwrap();
        assert!(t.is_none());
        assert_eq!(s.patterns, 0);
        let zero = RandomSimOptions {
            batches: 0,
            ..RandomSimOptions::default()
        };
        let guidance: Vec<Cube> = vec![Cube::new()];
        let (t, s) = random_concretize(&n, &target, &guidance, &zero).unwrap();
        assert!(t.is_none());
        assert_eq!(s.patterns, 0);
    }
}
