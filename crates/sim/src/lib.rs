//! Two- and three-valued gate-level simulation for the RFN verification tool.
//!
//! Three-valued (0/1/X) simulation is one of the paper's three engine
//! families: RFN uses it in Step 4 to find *crucial registers* — it replays
//! the abstract model's error trace on the original design with unknowns for
//! everything the trace does not assign, and collects the registers whose
//! simulated value *conflicts* with the value the trace demands
//! ([`simulate_trace_conflicts`]).
//!
//! The same machinery doubles as a concrete (2-valued) simulator used to
//! validate ATPG witnesses and falsification traces ([`Simulator::replay`]).
//!
//! Two engines implement the semantics:
//!
//! * [`Simulator`] — the scalar reference: one [`Tv`] per signal, evaluated
//!   in topological order. Simple and obviously correct.
//! * [`PackedSim`] — the bit-parallel kernel: 64 independent patterns per
//!   step in two bit-planes per signal, evaluated over a precomputed level
//!   order with an event-driven dirty-level skip. The conflict analysis and
//!   the concretization engines run on this one.
//!
//! On top of the packed kernel, [`random_concretize`] implements the
//! random-simulation concretization engine: it replays an abstract error
//! trace's cubes as constraints, fills unconstrained inputs with
//! deterministic (xorshift-seeded) random vectors, and recovers a concrete
//! error trace from any lane that lands in the target cube — the cheap
//! first stage before sequential ATPG.
//!
//! # Example
//!
//! ```
//! use rfn_netlist::{Netlist, GateOp};
//! use rfn_sim::{Simulator, Tv};
//!
//! # fn main() -> Result<(), rfn_netlist::NetlistError> {
//! let mut n = Netlist::new("toggle");
//! let t = n.add_register("t", Some(false));
//! let nt = n.add_gate("nt", GateOp::Not, &[t]);
//! n.set_register_next(t, nt)?;
//! n.validate()?;
//!
//! let mut sim = Simulator::new(&n)?;
//! sim.reset();
//! assert_eq!(sim.value(t), Tv::Zero);
//! sim.step_comb();
//! sim.latch();
//! assert_eq!(sim.value(t), Tv::One);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conflicts;
mod packed;
mod random;
mod simulator;
mod tv;

pub use conflicts::{simulate_trace_conflicts, simulate_trace_conflicts_traced, TraceConflicts};
pub use packed::{PackedSim, PackedSimCounters, PackedTv};
pub use random::{random_concretize, RandomSimOptions, RandomSimStats, XorShift64};
pub use simulator::Simulator;
pub use tv::Tv;
