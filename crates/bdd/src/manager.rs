//! The BDD manager: node store, unique table, ITE core and quantification.
//!
//! # Memory subsystem
//!
//! Hash-consing goes through a single open-addressing [`UniqueTable`]
//! (see [`crate::unique`]); per-variable node iteration — which reordering
//! needs — is served by intrusive doubly-linked lists threaded through the
//! node store (`var_head`/`link_prev`/`link_next`). Operation memos live in
//! fixed-size direct-mapped lossy caches (see [`crate::cache`]).
//!
//! # Automatic garbage collection
//!
//! Callers may [`protect`](BddManager::protect) long-lived roots and enable
//! [`set_auto_gc`](BddManager::set_auto_gc). Allocation then flags a pending
//! collection once the live-node count passes an adaptive threshold, and the
//! *next top-level operation* collects before it starts, using the protected
//! set plus that operation's own operands as roots. Collection never runs
//! inside a recursion, so intermediate results of an in-flight operation are
//! never reclaimed — but any unprotected handle that is neither an operand
//! of the current call may be invalidated, exactly as with an explicit
//! [`gc`](BddManager::gc).

use std::collections::HashMap;
use std::fmt;

use rfn_govern::{Budget, Exhaustion};

use crate::cache::{Cache2, Cache3};
use crate::stats::BddStats;
use crate::unique::{Probe, UniqueTable};

/// Identifier of a BDD variable.
///
/// Variables are created with [`BddManager::new_var`] /
/// [`BddManager::new_var_group`]; the identifier is stable for the lifetime
/// of the manager even when dynamic reordering changes the variable's level.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index of the variable (dense, creation order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable id from a raw index. Callers must ensure the index
    /// denotes a variable of the manager it is used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Handle to a BDD node.
///
/// A `Bdd` is an index into its manager's node store. Handles are `Copy` and
/// compare by identity, which equals semantic equality thanks to
/// hash-consing: two handles from the same manager denote the same boolean
/// function if and only if they are equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => f.write_str("⊥"),
            1 => f.write_str("⊤"),
            n => write!(f, "n{n}"),
        }
    }
}

/// Error raised by BDD operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The manager's live-node limit (or a governing budget's node ceiling)
    /// was exceeded.
    ///
    /// This is how the plain symbolic model checker "fails" on designs beyond
    /// its capacity, mirroring the memory limits of the paper's experiments.
    NodeLimit,
    /// The governing budget's [`CancelToken`](rfn_govern::CancelToken) was
    /// triggered; the in-flight operation unwound cooperatively.
    Cancelled,
    /// The governing budget's wall-clock deadline passed mid-operation.
    TimeLimit,
    /// The governing budget's memory ceiling was exceeded by the manager's
    /// approximate footprint (see [`BddManager::approx_bytes`]).
    MemoryLimit,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit => f.write_str("BDD node limit exceeded"),
            BddError::Cancelled => f.write_str("BDD operation cancelled"),
            BddError::TimeLimit => f.write_str("BDD time budget exceeded"),
            BddError::MemoryLimit => f.write_str("BDD memory budget exceeded"),
        }
    }
}

impl std::error::Error for BddError {}

/// Result type of fallible BDD operations.
pub type BddResult = Result<Bdd, BddError>;

pub(crate) const TERMINAL_VAR: u32 = u32::MAX;
const FALSE: u32 = 0;
const TRUE: u32 = 1;

/// Null link in the per-variable node lists.
const NIL: u32 = u32::MAX;

/// Default live-node threshold arming the first automatic collection.
const AUTO_GC_DEFAULT_THRESHOLD: usize = 1 << 16;

/// Default maximum slots per operation cache (entries, not bytes).
const DEFAULT_CACHE_SLOTS: usize = 1 << 20;

/// Smallest permitted non-zero cache capacity.
const MIN_CACHE_SLOTS: usize = 16;

/// Care-cache operator tag of [`BddManager::constrain`].
const CARE_OP_CONSTRAIN: u32 = 0;

/// Care-cache operator tag of [`BddManager::gc_restrict`].
const CARE_OP_RESTRICT: u32 = 1;

/// Allocations between two deadline/memory polls of the governing budget
/// (cancellation is polled on every allocation; it is one relaxed atomic
/// load). 64 allocations take microseconds, so a deadline overshoot is
/// bounded far below the 500 ms the RFN acceptance contract allows.
const BUDGET_POLL_INTERVAL: u32 = 64;

#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

/// The BDD manager: owns every node and provides all operations.
///
/// Operations that may allocate nodes return [`BddResult`] and fail with
/// [`BddError::NodeLimit`] once the live-node count passes the configured
/// limit (default: unlimited). See the [crate docs](crate) for an overview
/// and an example.
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    free: Vec<u32>,
    /// Hash-consing table over all variables.
    unique: UniqueTable,
    /// Intrusive per-variable node lists: `var_head[v]` starts the chain of
    /// live nodes labeled `v`, linked by `link_prev`/`link_next` (NIL-ended).
    var_head: Vec<u32>,
    link_prev: Vec<u32>,
    link_next: Vec<u32>,
    /// Live-node count per variable (the sifting candidate metric).
    var_count: Vec<usize>,
    pub(crate) var2level: Vec<u32>,
    pub(crate) level2var: Vec<u32>,
    /// Group id per variable; members of a group occupy adjacent levels and
    /// are sifted as a block.
    pub(crate) group: Vec<u32>,
    next_group: u32,
    ite_cache: Cache3,
    exists_cache: Cache2,
    and_exists_cache: Cache3,
    /// Shared memo of the care-set operators; the third key slot carries the
    /// operator tag ([`CARE_OP_CONSTRAIN`] / [`CARE_OP_RESTRICT`]).
    care_cache: Cache3,
    /// Reusable memo for `permute`/`restrict`, cleared per call (avoids a
    /// fresh allocation on every traversal).
    scratch_cache: HashMap<u32, u32>,
    node_limit: usize,
    /// Governing budget: ceilings, deadline and cancellation polled on the
    /// allocation path (see [`BddManager::set_budget`]).
    budget: Option<Budget>,
    /// Allocations since the last deadline/memory poll.
    budget_poll: u32,
    pub(crate) reorder_in_progress: bool,
    /// Protected root set: node index → protection count.
    protected: HashMap<u32, u32>,
    auto_gc_enabled: bool,
    /// Set by `mk` when the live count passes `gc_threshold`; consumed at
    /// the next top-level operation entry.
    gc_pending: bool,
    /// Current (adaptive) live-node threshold arming a collection.
    gc_threshold: usize,
    /// Configured lower bound for `gc_threshold`.
    gc_threshold_floor: usize,
    pub(crate) stats: BddStats,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BddManager({} vars, {} live nodes)",
            self.num_vars(),
            self.num_nodes()
        )
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates a manager with no variables and no node limit.
    pub fn new() -> Self {
        BddManager {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            free: Vec::new(),
            unique: UniqueTable::new(),
            var_head: Vec::new(),
            link_prev: vec![NIL; 2],
            link_next: vec![NIL; 2],
            var_count: Vec::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            group: Vec::new(),
            next_group: 0,
            ite_cache: Cache3::new(DEFAULT_CACHE_SLOTS),
            exists_cache: Cache2::new(DEFAULT_CACHE_SLOTS),
            and_exists_cache: Cache3::new(DEFAULT_CACHE_SLOTS),
            care_cache: Cache3::new(DEFAULT_CACHE_SLOTS),
            scratch_cache: HashMap::new(),
            node_limit: usize::MAX,
            budget: None,
            budget_poll: 0,
            reorder_in_progress: false,
            protected: HashMap::new(),
            auto_gc_enabled: false,
            gc_pending: false,
            gc_threshold: AUTO_GC_DEFAULT_THRESHOLD,
            gc_threshold_floor: AUTO_GC_DEFAULT_THRESHOLD,
            stats: BddStats::default(),
        }
    }

    /// Sets the live-node limit. Operations that would allocate past the
    /// limit fail with [`BddError::NodeLimit`].
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Installs a governing [`Budget`]. The allocation path then polls the
    /// budget's cancellation token on every unique-table insert and its
    /// wall-clock deadline and memory ceiling every few dozen inserts;
    /// the budget's node ceiling tightens the live-node limit. Exhaustion
    /// surfaces as [`BddError::Cancelled`], [`BddError::TimeLimit`],
    /// [`BddError::MemoryLimit`] or [`BddError::NodeLimit`] from whatever
    /// operation was in flight, leaving the manager fully consistent (the
    /// partially built operation result is simply unreferenced garbage).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = Some(budget);
    }

    /// Removes the governing budget installed by [`BddManager::set_budget`].
    pub fn clear_budget(&mut self) {
        self.budget = None;
    }

    /// The governing budget, if one is installed.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// Approximate resident bytes of the node store, unique table and
    /// operation caches. This is the footprint checked against a governing
    /// budget's memory ceiling; it is exact for the dominant arrays and
    /// ignores small fixed overheads.
    pub fn approx_bytes(&self) -> usize {
        // Node store: 12-byte nodes plus two 4-byte intrusive links each.
        let nodes = self.nodes.capacity() * (std::mem::size_of::<Node>() + 8);
        // Unique table: one u32 slot per entry (open addressing).
        let unique = self.unique.slot_count() * 4;
        // Operation caches: 16-byte 3-key entries, 12-byte 2-key entries.
        let caches = (self.ite_cache.slot_count()
            + self.and_exists_cache.slot_count()
            + self.care_cache.slot_count())
            * 16
            + self.exists_cache.slot_count() * 12;
        nodes + unique + caches
    }

    /// Number of distinct protected roots (see [`BddManager::protect`]).
    pub fn num_protected(&self) -> usize {
        self.protected.len()
    }

    /// Sets the maximum slot count of each operation cache (ITE, exists,
    /// and-exists). `0` disables memoization entirely — every operation is
    /// recomputed, which is only useful for testing; small non-zero values
    /// are rounded up to at least a small power of two. Resizing clears the
    /// caches, which is always sound (entries are memos).
    pub fn set_cache_capacity(&mut self, slots: usize) {
        let slots = if slots == 0 {
            0
        } else {
            slots.max(MIN_CACHE_SLOTS).next_power_of_two()
        };
        self.ite_cache.set_max_slots(slots);
        self.exists_cache.set_max_slots(slots);
        self.and_exists_cache.set_max_slots(slots);
        self.care_cache.set_max_slots(slots);
    }

    /// Snapshot of the kernel performance counters.
    pub fn stats(&self) -> BddStats {
        self.stats
    }

    /// Resets all performance counters (including the peak) to zero.
    pub fn reset_stats(&mut self) {
        self.stats = BddStats::default();
    }

    /// The constant-false BDD.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd(FALSE)
    }

    /// The constant-true BDD.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd(TRUE)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    /// Number of live (allocated, non-freed) internal nodes, excluding the
    /// two terminals.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 2 - self.free.len()
    }

    /// Creates a fresh variable at the bottom of the current order, in its
    /// own singleton sifting group.
    pub fn new_var(&mut self) -> VarId {
        let vars = self.new_var_group(1);
        vars[0]
    }

    /// Creates `n` fresh variables at adjacent levels, registered as one
    /// sifting group (they stay adjacent under dynamic reordering).
    ///
    /// The model checker uses groups of two for each register's
    /// current/next-state variable pair so that renaming stays cheap and the
    /// interleaved order survives sifting.
    pub fn new_var_group(&mut self, n: usize) -> Vec<VarId> {
        let gid = self.next_group;
        self.next_group += 1;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let var = self.var2level.len() as u32;
            let level = var; // appended at the bottom
            self.var2level.push(level);
            self.level2var.push(var);
            self.group.push(gid);
            self.var_head.push(NIL);
            self.var_count.push(0);
            out.push(VarId(var));
        }
        out
    }

    /// The current level (root distance) of a variable.
    pub fn level_of(&self, v: VarId) -> usize {
        self.var2level[v.index()] as usize
    }

    /// The variable at a level.
    pub fn var_at_level(&self, level: usize) -> VarId {
        VarId(self.level2var[level])
    }

    #[inline]
    pub(crate) fn level(&self, n: u32) -> u32 {
        let var = self.nodes[n as usize].var;
        if var == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[var as usize]
        }
    }

    #[inline]
    fn lo(&self, n: u32) -> u32 {
        self.nodes[n as usize].lo
    }

    #[inline]
    fn hi(&self, n: u32) -> u32 {
        self.nodes[n as usize].hi
    }

    /// Links a live node into its variable's list.
    fn link_node(&mut self, idx: u32, var: u32) {
        let head = self.var_head[var as usize];
        self.link_prev[idx as usize] = NIL;
        self.link_next[idx as usize] = head;
        if head != NIL {
            self.link_prev[head as usize] = idx;
        }
        self.var_head[var as usize] = idx;
        self.var_count[var as usize] += 1;
    }

    /// Unlinks a node from its variable's list (`var` must be the node's
    /// current label).
    fn unlink_node(&mut self, idx: u32, var: u32) {
        let p = self.link_prev[idx as usize];
        let n = self.link_next[idx as usize];
        if p != NIL {
            self.link_next[p as usize] = n;
        } else {
            self.var_head[var as usize] = n;
        }
        if n != NIL {
            self.link_prev[n as usize] = p;
        }
        self.var_count[var as usize] -= 1;
    }

    /// Finds or creates the node `(var, lo, hi)`.
    pub(crate) fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        debug_assert!(
            self.level(lo) > self.var2level[var as usize]
                && self.level(hi) > self.var2level[var as usize],
            "mk: children must be below the node's level"
        );
        self.stats.unique_probes += 1;
        let slot =
            match self
                .unique
                .probe(var, lo, hi, &self.nodes, &mut self.stats.unique_collisions)
            {
                Probe::Found(n) => return Ok(n),
                Probe::Vacant(slot) => slot,
            };
        if !self.reorder_in_progress {
            let limit = match &self.budget {
                Some(b) => self.node_limit.min(b.node_ceiling()),
                None => self.node_limit,
            };
            if self.num_nodes() >= limit {
                return Err(BddError::NodeLimit);
            }
            if let Some(b) = &self.budget {
                if b.is_cancelled() {
                    return Err(BddError::Cancelled);
                }
                self.budget_poll = self.budget_poll.wrapping_add(1);
                if self.budget_poll.is_multiple_of(BUDGET_POLL_INTERVAL) {
                    if let Err(e) = b.check().and_then(|()| b.check_memory(self.approx_bytes())) {
                        return Err(match e {
                            Exhaustion::Cancelled => BddError::Cancelled,
                            Exhaustion::MemoryLimit => BddError::MemoryLimit,
                            _ => BddError::TimeLimit,
                        });
                    }
                }
            }
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node { var, lo, hi };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node { var, lo, hi });
            self.link_prev.push(NIL);
            self.link_next.push(NIL);
            idx
        };
        self.unique.insert(slot, idx);
        self.link_node(idx, var);
        let live = self.num_nodes();
        if live > self.stats.peak_nodes {
            self.stats.peak_nodes = live;
        }
        if self.auto_gc_enabled && live >= self.gc_threshold {
            self.gc_pending = true;
        }
        Ok(idx)
    }

    /// The BDD of a single positive literal.
    pub fn var(&mut self, v: VarId) -> Bdd {
        // One node at most — exempt from budget governance (see `var_cube`),
        // so a cancelled budget cannot turn this infallible helper into a
        // panic; the next governed operation still aborts promptly.
        let budget = self.budget.take();
        let n = self
            .mk(v.0, FALSE, TRUE)
            .expect("single literal never exceeds the node limit meaningfully");
        self.budget = budget;
        Bdd(n)
    }

    /// The BDD of a single negative literal.
    pub fn nvar(&mut self, v: VarId) -> Bdd {
        // See `var`: one node, exempt from the budget.
        let budget = self.budget.take();
        let n = self
            .mk(v.0, TRUE, FALSE)
            .expect("single literal never exceeds the node limit meaningfully");
        self.budget = budget;
        Bdd(n)
    }

    /// The literal `v` with the given polarity.
    pub fn literal(&mut self, v: VarId, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// If-then-else: `f ? g : h`. The core operation everything else derives
    /// from.
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::NodeLimit`] if the result would exceed the
    /// manager's node limit.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> BddResult {
        self.maybe_auto_gc(&[f.0, g.0, h.0]);
        self.ite_rec(f.0, g.0, h.0).map(Bdd)
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddError> {
        // Terminal and trivial cases.
        if f == TRUE {
            return Ok(g);
        }
        if f == FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == TRUE && h == FALSE {
            return Ok(f);
        }
        if let Some(r) = self.ite_cache.get(f, g, h) {
            self.stats.ite_hits += 1;
            return Ok(r);
        }
        self.stats.ite_misses += 1;
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let v = self.level2var[top as usize];
        let (f0, f1) = self.cofactor(f, top);
        let (g0, g1) = self.cofactor(g, top);
        let (h0, h1) = self.cofactor(h, top);
        let lo = self.ite_rec(f0, g0, h0)?;
        let hi = self.ite_rec(f1, g1, h1)?;
        let r = self.mk(v, lo, hi)?;
        self.ite_cache.put(f, g, h, r);
        Ok(r)
    }

    #[inline]
    fn cofactor(&self, n: u32, level: u32) -> (u32, u32) {
        if self.level(n) == level {
            (self.lo(n), self.hi(n))
        } else {
            (n, n)
        }
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> BddResult {
        self.ite(f, self.zero(), self.one())
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, g, self.zero())
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, self.one(), g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> BddResult {
        // One auto-GC decision for the whole derived operation, so `f` stays
        // alive across the internal negation.
        self.maybe_auto_gc(&[f.0, g.0]);
        let ng = self.ite_rec(g.0, FALSE, TRUE)?;
        self.ite_rec(f.0, ng, g.0).map(Bdd)
    }

    /// Equivalence (exclusive nor).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.maybe_auto_gc(&[f.0, g.0]);
        let ng = self.ite_rec(g.0, FALSE, TRUE)?;
        self.ite_rec(f.0, g.0, ng).map(Bdd)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, g, self.one())
    }

    /// Conjunction of many operands (n-ary and).
    pub fn and_many(&mut self, fs: impl IntoIterator<Item = Bdd>) -> BddResult {
        let fs: Vec<Bdd> = fs.into_iter().collect();
        // Operands not yet consumed must survive any auto-GC triggered by an
        // earlier step of the fold.
        for &f in &fs {
            self.protect(f);
        }
        let mut result = Ok(self.one());
        for &f in &fs {
            let acc = match result {
                Ok(acc) => acc,
                Err(_) => break,
            };
            result = self.and(acc, f);
            if result == Ok(self.zero()) {
                break;
            }
        }
        for &f in &fs {
            self.unprotect(f);
        }
        result
    }

    /// Disjunction of many operands (n-ary or).
    pub fn or_many(&mut self, fs: impl IntoIterator<Item = Bdd>) -> BddResult {
        let fs: Vec<Bdd> = fs.into_iter().collect();
        for &f in &fs {
            self.protect(f);
        }
        let mut result = Ok(self.zero());
        for &f in &fs {
            let acc = match result {
                Ok(acc) => acc,
                Err(_) => break,
            };
            result = self.or(acc, f);
            if result == Ok(self.one()) {
                break;
            }
        }
        for &f in &fs {
            self.unprotect(f);
        }
        result
    }

    /// Builds the positive cube `v₁ ∧ v₂ ∧ …` used to denote a set of
    /// variables for quantification.
    pub fn var_cube(&mut self, vars: impl IntoIterator<Item = VarId>) -> Bdd {
        let mut vs: Vec<VarId> = vars.into_iter().collect();
        // Build bottom-up (deepest level first) so each mk is O(1).
        vs.sort_by_key(|v| std::cmp::Reverse(self.var2level[v.index()]));
        // Cube construction allocates at most one node per variable — too
        // small to be a useful cancellation point, and callers treat it as
        // infallible. Suspend budget governance for its duration; the next
        // governed operation still aborts promptly.
        let budget = self.budget.take();
        let mut acc = TRUE;
        for v in vs {
            acc = self
                .mk(v.0, FALSE, acc)
                .expect("cube construction allocates at most one node per var");
        }
        self.budget = budget;
        Bdd(acc)
    }

    /// Builds the cube (conjunction of literals) for an assignment.
    pub fn cube(&mut self, lits: impl IntoIterator<Item = (VarId, bool)>) -> Bdd {
        let mut ls: Vec<(VarId, bool)> = lits.into_iter().collect();
        ls.sort_by_key(|(v, _)| std::cmp::Reverse(self.var2level[v.index()]));
        // See `var_cube`: one node per literal, exempt from the budget.
        let budget = self.budget.take();
        let mut acc = TRUE;
        for (v, pos) in ls {
            acc = if pos {
                self.mk(v.0, FALSE, acc)
            } else {
                self.mk(v.0, acc, FALSE)
            }
            .expect("cube construction allocates at most one node per literal");
        }
        self.budget = budget;
        Bdd(acc)
    }

    /// Existential quantification `∃ vars . f`, where `vars` is a positive
    /// cube from [`BddManager::var_cube`].
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::NodeLimit`] like every allocating operation.
    pub fn exists(&mut self, f: Bdd, vars: Bdd) -> BddResult {
        self.maybe_auto_gc(&[f.0, vars.0]);
        self.exists_rec(f.0, vars.0).map(Bdd)
    }

    /// Existential quantification of a single variable.
    pub fn exists_one(&mut self, f: Bdd, v: VarId) -> BddResult {
        let cube = self.var_cube([v]);
        self.exists(f, cube)
    }

    /// Universal quantification `∀ vars . f`.
    pub fn forall(&mut self, f: Bdd, vars: Bdd) -> BddResult {
        self.maybe_auto_gc(&[f.0, vars.0]);
        let nf = self.ite_rec(f.0, FALSE, TRUE)?;
        let e = self.exists_rec(nf, vars.0)?;
        self.ite_rec(e, FALSE, TRUE).map(Bdd)
    }

    fn exists_rec(&mut self, f: u32, mut cube: u32) -> Result<u32, BddError> {
        // Skip cube variables above f's top level: they don't occur in f.
        while cube != TRUE && self.level(cube) < self.level(f) {
            cube = self.hi(cube);
        }
        if f <= TRUE || cube == TRUE {
            return Ok(f);
        }
        if let Some(r) = self.exists_cache.get(f, cube) {
            self.stats.exists_hits += 1;
            return Ok(r);
        }
        self.stats.exists_misses += 1;
        let flevel = self.level(f);
        let r = if self.level(cube) == flevel {
            let lo = self.exists_rec(self.lo(f), self.hi(cube))?;
            if lo == TRUE {
                TRUE
            } else {
                let hi = self.exists_rec(self.hi(f), self.hi(cube))?;
                self.ite_rec(lo, TRUE, hi)? // or(lo, hi)
            }
        } else {
            let v = self.level2var[flevel as usize];
            let lo = self.exists_rec(self.lo(f), cube)?;
            let hi = self.exists_rec(self.hi(f), cube)?;
            self.mk(v, lo, hi)?
        };
        self.exists_cache.put(f, cube, r);
        Ok(r)
    }

    /// The relational product `∃ vars . f ∧ g`, fused so the conjunction is
    /// never fully built. This is the workhorse of image computation.
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::NodeLimit`] like every allocating operation.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: Bdd) -> BddResult {
        self.maybe_auto_gc(&[f.0, g.0, vars.0]);
        self.and_exists_rec(f.0, g.0, vars.0).map(Bdd)
    }

    fn and_exists_rec(&mut self, f: u32, g: u32, mut cube: u32) -> Result<u32, BddError> {
        if f == FALSE || g == FALSE {
            return Ok(FALSE);
        }
        if f == TRUE && g == TRUE {
            return Ok(TRUE);
        }
        let top = self.level(f).min(self.level(g));
        while cube != TRUE && self.level(cube) < top {
            cube = self.hi(cube);
        }
        if cube == TRUE {
            return self.ite_rec(f, g, FALSE); // plain and
        }
        // Normalize operand order for better cache hits (and is commutative).
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.and_exists_cache.get(f, g, cube) {
            self.stats.and_exists_hits += 1;
            return Ok(r);
        }
        self.stats.and_exists_misses += 1;
        let (f0, f1) = self.cofactor(f, top);
        let (g0, g1) = self.cofactor(g, top);
        let r = if self.level(cube) == top {
            let lo = self.and_exists_rec(f0, g0, self.hi(cube))?;
            if lo == TRUE {
                TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, self.hi(cube))?;
                self.ite_rec(lo, TRUE, hi)?
            }
        } else {
            let v = self.level2var[top as usize];
            let lo = self.and_exists_rec(f0, g0, cube)?;
            let hi = self.and_exists_rec(f1, g1, cube)?;
            self.mk(v, lo, hi)?
        };
        self.and_exists_cache.put(f, g, cube, r);
        Ok(r)
    }

    /// Renames variables according to `map` (pairs `from → to`). Variables
    /// not mentioned are left alone. The mapping must be injective on the
    /// support of `f`, but need not preserve the variable order.
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::NodeLimit`] like every allocating operation.
    pub fn permute(&mut self, f: Bdd, map: &[(VarId, VarId)]) -> BddResult {
        self.maybe_auto_gc(&[f.0]);
        let mut table = vec![u32::MAX; self.num_vars()];
        for (from, to) in map {
            table[from.index()] = to.0;
        }
        let mut cache = std::mem::take(&mut self.scratch_cache);
        cache.clear();
        let r = self.permute_rec(f.0, &table, &mut cache);
        self.scratch_cache = cache;
        r.map(Bdd)
    }

    fn permute_rec(
        &mut self,
        f: u32,
        table: &[u32],
        cache: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddError> {
        if f <= TRUE {
            return Ok(f);
        }
        if let Some(&r) = cache.get(&f) {
            return Ok(r);
        }
        let node = self.nodes[f as usize];
        let lo = self.permute_rec(node.lo, table, cache)?;
        let hi = self.permute_rec(node.hi, table, cache)?;
        let newvar = if table[node.var as usize] != u32::MAX {
            table[node.var as usize]
        } else {
            node.var
        };
        // The new variable may sit below parts of lo/hi, so rebuild with ite
        // instead of mk when the order is violated.
        let vlevel = self.var2level[newvar as usize];
        let r = if self.level(lo) > vlevel && self.level(hi) > vlevel {
            self.mk(newvar, lo, hi)?
        } else {
            let vb = self.mk(newvar, FALSE, TRUE)?;
            self.ite_rec(vb, hi, lo)?
        };
        cache.insert(f, r);
        Ok(r)
    }

    /// Restricts `f` by the assignment `lits` (cofactoring each listed
    /// variable to the given constant).
    pub fn restrict(&mut self, f: Bdd, lits: &[(VarId, bool)]) -> BddResult {
        self.maybe_auto_gc(&[f.0]);
        let mut table = vec![u8::MAX; self.num_vars()];
        for (v, b) in lits {
            table[v.index()] = u8::from(*b);
        }
        let mut cache = std::mem::take(&mut self.scratch_cache);
        cache.clear();
        let r = self.restrict_rec(f.0, &table, &mut cache);
        self.scratch_cache = cache;
        r.map(Bdd)
    }

    fn restrict_rec(
        &mut self,
        f: u32,
        table: &[u8],
        cache: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddError> {
        if f <= TRUE {
            return Ok(f);
        }
        if let Some(&r) = cache.get(&f) {
            return Ok(r);
        }
        let node = self.nodes[f as usize];
        let r = match table[node.var as usize] {
            0 => self.restrict_rec(node.lo, table, cache)?,
            1 => self.restrict_rec(node.hi, table, cache)?,
            _ => {
                let lo = self.restrict_rec(node.lo, table, cache)?;
                let hi = self.restrict_rec(node.hi, table, cache)?;
                self.mk(node.var, lo, hi)?
            }
        };
        cache.insert(f, r);
        Ok(r)
    }

    /// Coudert–Madre generalized cofactor `f ⇓ c`: a function that agrees
    /// with `f` everywhere `c` holds, chosen so that BDD paths leaving `c`
    /// are redirected to their nearest sibling inside it. The defining law
    /// is `f ∧ c == constrain(f, c) ∧ c`; outside the care set the result is
    /// arbitrary (and its support may even grow beyond `f`'s — use
    /// [`BddManager::gc_restrict`] when support containment matters).
    /// `constrain(f, 0)` is defined as `0`.
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::NodeLimit`] like every allocating operation.
    pub fn constrain(&mut self, f: Bdd, c: Bdd) -> BddResult {
        self.maybe_auto_gc(&[f.0, c.0]);
        self.constrain_rec(f.0, c.0).map(Bdd)
    }

    fn constrain_rec(&mut self, f: u32, c: u32) -> Result<u32, BddError> {
        if c == FALSE {
            return Ok(FALSE);
        }
        if c == TRUE || f <= TRUE {
            return Ok(f);
        }
        if f == c {
            return Ok(TRUE);
        }
        if let Some(r) = self.care_cache.get(f, c, CARE_OP_CONSTRAIN) {
            self.stats.constrain_hits += 1;
            return Ok(r);
        }
        self.stats.constrain_misses += 1;
        let top = self.level(f).min(self.level(c));
        let (f0, f1) = self.cofactor(f, top);
        let (c0, c1) = self.cofactor(c, top);
        let r = if c0 == FALSE {
            // The care set forces the variable to 1: descend both sides.
            self.constrain_rec(f1, c1)?
        } else if c1 == FALSE {
            self.constrain_rec(f0, c0)?
        } else {
            let v = self.level2var[top as usize];
            let lo = self.constrain_rec(f0, c0)?;
            let hi = self.constrain_rec(f1, c1)?;
            self.mk(v, lo, hi)?
        };
        self.care_cache.put(f, c, CARE_OP_CONSTRAIN, r);
        Ok(r)
    }

    /// Coudert–Madre sibling-substitution restrict: like
    /// [`BddManager::constrain`] it satisfies `f ∧ c == gc_restrict(f, c) ∧
    /// c`, but care-set variables that do not occur in `f` are quantified
    /// out of `c` first, so the result's support is always a subset of
    /// `f`'s. This is the don't-care minimization operator the reachability
    /// loop uses to shrink frontiers against the reached set.
    /// `gc_restrict(f, 0)` is defined as `0`.
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::NodeLimit`] like every allocating operation.
    pub fn gc_restrict(&mut self, f: Bdd, c: Bdd) -> BddResult {
        self.maybe_auto_gc(&[f.0, c.0]);
        self.gc_restrict_rec(f.0, c.0).map(Bdd)
    }

    fn gc_restrict_rec(&mut self, f: u32, c: u32) -> Result<u32, BddError> {
        if c == FALSE {
            return Ok(FALSE);
        }
        if c == TRUE || f <= TRUE {
            return Ok(f);
        }
        if f == c {
            return Ok(TRUE);
        }
        if let Some(r) = self.care_cache.get(f, c, CARE_OP_RESTRICT) {
            self.stats.restrict_hits += 1;
            return Ok(r);
        }
        self.stats.restrict_misses += 1;
        let flevel = self.level(f);
        let clevel = self.level(c);
        let r = if clevel < flevel {
            // The care set's top variable does not occur in f: existentially
            // quantify it out of c instead of letting it into the result.
            let c0 = self.lo(c);
            let c1 = self.hi(c);
            let c2 = self.ite_rec(c0, TRUE, c1)?; // or(c0, c1)
            self.gc_restrict_rec(f, c2)?
        } else {
            let (f0, f1) = (self.lo(f), self.hi(f));
            let (c0, c1) = self.cofactor(c, flevel);
            if c0 == FALSE {
                self.gc_restrict_rec(f1, c1)?
            } else if c1 == FALSE {
                self.gc_restrict_rec(f0, c0)?
            } else {
                let v = self.level2var[flevel as usize];
                let lo = self.gc_restrict_rec(f0, c0)?;
                let hi = self.gc_restrict_rec(f1, c1)?;
                self.mk(v, lo, hi)?
            }
        };
        self.care_cache.put(f, c, CARE_OP_RESTRICT, r);
        Ok(r)
    }

    /// Marks `f` as a garbage-collection root. Protection is counted: a node
    /// protected twice needs two [`unprotect`](BddManager::unprotect) calls.
    /// Protected nodes (and everything below them) survive both explicit
    /// [`gc`](BddManager::gc) and automatic collection.
    pub fn protect(&mut self, f: Bdd) {
        *self.protected.entry(f.0).or_insert(0) += 1;
    }

    /// Removes one protection count from `f` (no-op if unprotected).
    pub fn unprotect(&mut self, f: Bdd) {
        if let Some(c) = self.protected.get_mut(&f.0) {
            *c -= 1;
            if *c == 0 {
                self.protected.remove(&f.0);
            }
        }
    }

    /// Enables or disables automatic garbage collection.
    ///
    /// While enabled, any handle that is neither protected nor an operand of
    /// the current top-level operation may be invalidated whenever an
    /// operation runs — callers opt in per phase and must protect what they
    /// hold across operations.
    pub fn set_auto_gc(&mut self, enabled: bool) {
        self.auto_gc_enabled = enabled;
        if !enabled {
            self.gc_pending = false;
        }
    }

    /// Sets the live-node count that arms the first automatic collection.
    /// The effective threshold adapts upward when collections reclaim less
    /// than a quarter of the store, and re-anchors at twice the live size
    /// after a productive collection (never below this floor).
    pub fn set_auto_gc_threshold(&mut self, nodes: usize) {
        self.gc_threshold_floor = nodes.max(1);
        self.gc_threshold = self.gc_threshold_floor;
    }

    /// Runs a pending automatic collection at a top-level operation entry.
    /// `operands` are the live inputs of that operation; together with the
    /// protected set they form the root set. Never called from recursion, so
    /// in-flight intermediate results cannot be reclaimed.
    fn maybe_auto_gc(&mut self, operands: &[u32]) {
        if !self.auto_gc_enabled || !self.gc_pending || self.reorder_in_progress {
            return;
        }
        self.gc_pending = false;
        let live_before = self.num_nodes();
        let roots: Vec<Bdd> = operands.iter().map(|&n| Bdd(n)).collect();
        let freed = self.gc(&roots); // gc() adds the protected set itself
        self.stats.auto_gc_runs += 1;
        if freed * 4 < live_before {
            // Mostly-live store: re-marking this often does not pay off.
            self.gc_threshold = self.gc_threshold.saturating_mul(2);
        } else {
            self.gc_threshold = (self.num_nodes() * 2).max(self.gc_threshold_floor);
        }
    }

    /// Garbage-collects every node not reachable from `roots` or the
    /// protected set. Returns the number of freed nodes. All operation
    /// caches are cleared; handles to collected nodes become invalid.
    pub fn gc(&mut self, roots: &[Bdd]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[FALSE as usize] = true;
        marked[TRUE as usize] = true;
        let mut stack: Vec<u32> = roots
            .iter()
            .map(|b| b.0)
            .chain(self.protected.keys().copied())
            .collect();
        while let Some(n) = stack.pop() {
            if marked[n as usize] {
                continue;
            }
            marked[n as usize] = true;
            let node = self.nodes[n as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        // Nodes already freed must stay freed (and not be double-freed).
        let mut already_free = vec![false; self.nodes.len()];
        for &f in &self.free {
            already_free[f as usize] = true;
        }
        let mut freed = 0;
        for idx in 2..self.nodes.len() as u32 {
            if marked[idx as usize] || already_free[idx as usize] {
                continue;
            }
            let var = self.nodes[idx as usize].var;
            self.unlink_node(idx, var);
            self.free.push(idx);
            freed += 1;
        }
        if freed > 0 {
            // One rebuild pass beats shifting clusters once per dead entry.
            let end = self.nodes.len() as u32;
            self.unique.rebuild(
                (2..end).filter(|&i| marked[i as usize] && !already_free[i as usize]),
                &self.nodes,
            );
        }
        self.clear_caches();
        self.stats.gc_runs += 1;
        self.stats.gc_nodes_freed += freed as u64;
        freed
    }

    /// Clears all memoization caches (needed after garbage collection; cheap
    /// otherwise).
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
        self.exists_cache.clear();
        self.and_exists_cache.clear();
        self.care_cache.clear();
    }

    /// Number of internal nodes reachable from `f` (the usual BDD size
    /// metric).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n <= TRUE || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.nodes[n as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        count
    }

    /// The set of variables occurring in `f`, in ascending id order.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= TRUE || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            vars.insert(VarId(node.var));
            stack.push(node.lo);
            stack.push(node.hi);
        }
        vars.into_iter().collect()
    }

    /// The variable and cofactors of an internal node (`None` for the
    /// terminals). Together with [`BddManager::make_node`] this supports
    /// structural transfer of BDDs between managers — in particular to and
    /// from the concurrent [`SharedBddManager`](crate::SharedBddManager)
    /// used by parallel image computation.
    pub fn node_info(&self, f: Bdd) -> Option<(VarId, Bdd, Bdd)> {
        let n = self.nodes[f.0 as usize];
        (n.var != TERMINAL_VAR).then_some((VarId(n.var), Bdd(n.lo), Bdd(n.hi)))
    }

    /// Finds or creates the internal node `v ? hi : lo` from existing
    /// handles (hash-consed: returns the canonical node, or `lo` when
    /// `lo == hi`). `lo` and `hi` must already be ordered strictly below
    /// `v`'s level — guaranteed when copying a BDD bottom-up from a manager
    /// with the same variable order. Unlike the boolean operations this
    /// never triggers the automatic collector, so a multi-call import cannot
    /// have its earlier nodes reclaimed mid-copy.
    pub fn make_node(&mut self, v: VarId, lo: Bdd, hi: Bdd) -> BddResult {
        self.mk(v.0, lo.0, hi.0).map(Bdd)
    }

    /// Low child accessor used by the analysis module.
    pub(crate) fn node(&self, n: u32) -> Node {
        self.nodes[n as usize]
    }

    // ----- reorder support (see crate::reorder) ---------------------------

    /// Total unique-table entries: the sifting size metric, O(1).
    pub(crate) fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Live nodes currently labeled `var`, O(1).
    pub(crate) fn var_len(&self, var: u32) -> usize {
        self.var_count[var as usize]
    }

    /// The nodes labeled `x` with at least one child labeled `y` — exactly
    /// the nodes an adjacent-level swap of `x` above `y` must rewrite.
    pub(crate) fn var_nodes_depending_on(&self, x: u32, y: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = self.var_head[x as usize];
        while cur != NIL {
            let n = self.nodes[cur as usize];
            if self.nodes[n.lo as usize].var == y || self.nodes[n.hi as usize].var == y {
                out.push(cur);
            }
            cur = self.link_next[cur as usize];
        }
        out
    }

    /// Removes a node's unique-table entry (the node stays allocated).
    pub(crate) fn unique_remove_node(&mut self, idx: u32) {
        let n = self.nodes[idx as usize];
        let removed = self.unique.remove(n.var, n.lo, n.hi, &self.nodes);
        debug_assert!(removed, "node missing from the unique table");
    }

    /// Relabels a node in place (reordering) and re-registers it under the
    /// new key. The old key must already be removed via
    /// [`Self::unique_remove_node`].
    pub(crate) fn relabel_node(&mut self, idx: u32, var: u32, lo: u32, hi: u32) {
        let old_var = self.nodes[idx as usize].var;
        self.unlink_node(idx, old_var);
        self.nodes[idx as usize] = Node { var, lo, hi };
        self.link_node(idx, var);
        self.stats.unique_probes += 1;
        match self
            .unique
            .probe(var, lo, hi, &self.nodes, &mut self.stats.unique_collisions)
        {
            Probe::Vacant(slot) => self.unique.insert(slot, idx),
            Probe::Found(_) => unreachable!("swap collided in the unique table"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup3() -> (BddManager, Bdd, Bdd, Bdd) {
        let mut m = BddManager::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let (fa, fb, fc) = (m.var(a), m.var(b), m.var(c));
        (m, fa, fb, fc)
    }

    #[test]
    fn hash_consing_gives_identity() {
        let (mut m, a, b, _) = setup3();
        let ab1 = m.and(a, b).unwrap();
        let ab2 = m.and(b, a).unwrap();
        assert_eq!(ab1, ab2);
        let or1 = m.or(a, b).unwrap();
        let nor = m.not(or1).unwrap();
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let and_n = m.and(na, nb).unwrap();
        assert_eq!(nor, and_n); // De Morgan, structurally
    }

    #[test]
    fn terminal_laws() {
        let (mut m, a, _, _) = setup3();
        let one = m.one();
        let zero = m.zero();
        assert_eq!(m.and(a, one).unwrap(), a);
        assert_eq!(m.and(a, zero).unwrap(), zero);
        assert_eq!(m.or(a, zero).unwrap(), a);
        assert_eq!(m.or(a, one).unwrap(), one);
        let na = m.not(a).unwrap();
        assert_eq!(m.and(a, na).unwrap(), zero);
        assert_eq!(m.or(a, na).unwrap(), one);
        let nna = m.not(na).unwrap();
        assert_eq!(nna, a);
    }

    #[test]
    fn xor_and_xnor() {
        let (mut m, a, b, _) = setup3();
        let x = m.xor(a, b).unwrap();
        let xn = m.xnor(a, b).unwrap();
        let nx = m.not(x).unwrap();
        assert_eq!(xn, nx);
        let self_xor = m.xor(a, a).unwrap();
        assert_eq!(self_xor, m.zero());
    }

    #[test]
    fn exists_removes_variable() {
        let (mut m, a, b, _) = setup3();
        let ab = m.and(a, b).unwrap();
        let vb = VarId(1);
        let e = m.exists_one(ab, vb).unwrap();
        assert_eq!(e, a);
        // ∃a,b. a∧b = true
        let cube = m.var_cube([VarId(0), VarId(1)]);
        let e2 = m.exists(ab, cube).unwrap();
        assert_eq!(e2, m.one());
    }

    #[test]
    fn forall_is_dual() {
        let (mut m, a, b, _) = setup3();
        let ab = m.or(a, b).unwrap();
        let cube_b = m.var_cube([VarId(1)]);
        let f = m.forall(ab, cube_b).unwrap();
        // ∀b. a∨b = a
        assert_eq!(f, a);
        let cube_ab = m.var_cube([VarId(0), VarId(1)]);
        let g = m.forall(ab, cube_ab).unwrap();
        assert_eq!(g, m.zero());
    }

    #[test]
    fn and_exists_matches_two_step() {
        let (mut m, a, b, c) = setup3();
        let f = m.or(a, b).unwrap();
        let g = m.or(b, c).unwrap();
        let cube = m.var_cube([VarId(1)]);
        let fused = m.and_exists(f, g, cube).unwrap();
        let conj = m.and(f, g).unwrap();
        let two_step = m.exists(conj, cube).unwrap();
        assert_eq!(fused, two_step);
    }

    #[test]
    fn permute_renames() {
        let (mut m, a, b, c) = setup3();
        let f = m.and(a, b).unwrap();
        // rename b -> c
        let g = m.permute(f, &[(VarId(1), VarId(2))]).unwrap();
        let expected = m.and(a, c).unwrap();
        assert_eq!(g, expected);
    }

    #[test]
    fn permute_swap_violating_order() {
        let (mut m, a, _, c) = setup3();
        // f depends on a (level 0) and c (level 2); swap them.
        let nc = m.not(c).unwrap();
        let f = m.and(a, nc).unwrap();
        let g = m
            .permute(f, &[(VarId(0), VarId(2)), (VarId(2), VarId(0))])
            .unwrap();
        let na = m.not(a).unwrap();
        let expected = m.and(c, na).unwrap();
        assert_eq!(g, expected);
    }

    #[test]
    fn restrict_cofactors() {
        let (mut m, a, b, _) = setup3();
        let f = m.xor(a, b).unwrap();
        let r1 = m.restrict(f, &[(VarId(0), true)]).unwrap();
        let nb = m.not(b).unwrap();
        assert_eq!(r1, nb);
        let r0 = m.restrict(f, &[(VarId(0), false)]).unwrap();
        assert_eq!(r0, b);
    }

    #[test]
    fn cube_builds_conjunction() {
        let (mut m, a, b, _) = setup3();
        let cube = m.cube([(VarId(0), true), (VarId(1), false)]);
        let nb = m.not(b).unwrap();
        let expected = m.and(a, nb).unwrap();
        assert_eq!(cube, expected);
    }

    #[test]
    fn constrain_agrees_on_the_care_set() {
        let (mut m, a, b, c) = setup3();
        let f = m.xor(a, b).unwrap();
        let care = m.and(b, c).unwrap();
        let g = m.constrain(f, care).unwrap();
        // f ∧ care == g ∧ care.
        let lhs = m.and(f, care).unwrap();
        let rhs = m.and(g, care).unwrap();
        assert_eq!(lhs, rhs);
        // Identity on the full care set, zero on the empty one.
        assert_eq!(m.constrain(f, m.one()).unwrap(), f);
        assert_eq!(m.constrain(f, m.zero()).unwrap(), m.zero());
        // Constraining f by itself collapses to true.
        assert_eq!(m.constrain(f, f).unwrap(), m.one());
    }

    #[test]
    fn gc_restrict_keeps_support_within_f() {
        let (mut m, a, b, c) = setup3();
        let f = m.or(a, b).unwrap();
        // The care set mentions c, which f does not.
        let nc = m.not(c).unwrap();
        let care = m.and(b, nc).unwrap();
        let g = m.gc_restrict(f, care).unwrap();
        let lhs = m.and(f, care).unwrap();
        let rhs = m.and(g, care).unwrap();
        assert_eq!(lhs, rhs);
        let fsup = m.support(f);
        for v in m.support(g) {
            assert!(fsup.contains(&v), "support gained {v}");
        }
        assert_eq!(m.gc_restrict(f, m.one()).unwrap(), f);
    }

    #[test]
    fn care_ops_populate_their_cache_counters() {
        let (mut m, a, b, c) = setup3();
        let ab = m.and(a, b).unwrap();
        let f = m.xor(ab, c).unwrap();
        let care = m.or(a, b).unwrap();
        let before = m.stats();
        let g1 = m.constrain(f, care).unwrap();
        let mid = m.stats();
        assert!(mid.constrain_misses > before.constrain_misses);
        let g2 = m.constrain(f, care).unwrap();
        assert_eq!(g1, g2);
        let after = m.stats();
        assert!(after.constrain_hits > mid.constrain_hits);
        let r1 = m.gc_restrict(f, care).unwrap();
        let r2 = m.gc_restrict(f, care).unwrap();
        assert_eq!(r1, r2);
        assert!(m.stats().restrict_hits > 0);
        assert!(m.stats().restrict_misses > 0);
    }

    #[test]
    fn node_limit_trips() {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..16).map(|_| m.new_var()).collect();
        m.set_node_limit(8);
        // Parity of 16 vars needs ~31 nodes: must exceed the limit.
        let mut acc = m.zero();
        let mut failed = false;
        for v in vars {
            let lit = m.var(v);
            match m.xor(acc, lit) {
                Ok(r) => acc = r,
                Err(BddError::NodeLimit) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("expected NodeLimit, got {e}"),
            }
        }
        assert!(failed);
    }

    #[test]
    fn gc_frees_garbage_and_keeps_roots() {
        let (mut m, a, b, c) = setup3();
        let keep = m.and(a, b).unwrap();
        let junk = m.xor(b, c).unwrap();
        let _ = junk;
        let before = m.num_nodes();
        let freed = m.gc(&[keep]);
        assert!(freed > 0);
        assert_eq!(m.num_nodes(), before - freed);
        // keep still works after gc
        let again = m.and(a, b).unwrap();
        assert_eq!(again, keep);
    }

    #[test]
    fn size_and_support() {
        let (mut m, a, b, c) = setup3();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        assert_eq!(m.support(f), vec![VarId(0), VarId(1), VarId(2)]);
        assert!(m.size(f) >= 3);
        assert_eq!(m.size(m.one()), 0);
    }

    #[test]
    fn var_cube_orders_any_input() {
        let mut m = BddManager::new();
        let vs: Vec<_> = (0..5).map(|_| m.new_var()).collect();
        let c1 = m.var_cube([vs[3], vs[0], vs[4]]);
        let c2 = m.var_cube([vs[4], vs[3], vs[0]]);
        assert_eq!(c1, c2);
    }

    #[test]
    fn stats_count_probes_and_cache_traffic() {
        let (mut m, a, b, _) = setup3();
        let base = m.stats();
        assert!(base.unique_probes > 0, "literal creation probes the table");
        let x = m.xor(a, b).unwrap();
        let s1 = m.stats();
        assert!(s1.ite_misses > base.ite_misses);
        // Repeating the identical operation is answered from the cache.
        let x2 = m.xor(a, b).unwrap();
        assert_eq!(x, x2);
        let s2 = m.stats();
        assert!(s2.ite_hits > s1.ite_hits);
        assert_eq!(s2.ite_misses, s1.ite_misses);
        assert!(s2.peak_nodes >= m.num_nodes());
        m.reset_stats();
        assert_eq!(m.stats(), BddStats::default());
    }

    #[test]
    fn disabled_cache_still_computes_correctly() {
        let mut m = BddManager::new();
        m.set_cache_capacity(0);
        let a = m.new_var();
        let b = m.new_var();
        let (fa, fb) = (m.var(a), m.var(b));
        let x1 = m.xor(fa, fb).unwrap();
        let x2 = m.xor(fa, fb).unwrap();
        assert_eq!(x1, x2);
        let s = m.stats();
        assert_eq!(s.ite_hits, 0, "disabled cache can never hit");
        assert!(s.ite_misses > 0);
    }
}

#[cfg(test)]
mod gc_reuse_tests {
    use super::*;

    #[test]
    fn freed_slots_are_reused() {
        let mut m = BddManager::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let (fa, fb, fc) = (m.var(a), m.var(b), m.var(c));
        let junk1 = m.and(fa, fb).unwrap();
        let junk2 = m.xor(fb, fc).unwrap();
        let _ = (junk1, junk2);
        let before_len = m.nodes.len();
        let freed = m.gc(&[fa, fb, fc]);
        assert!(freed >= 2);
        // New allocations fill the free list before growing the store.
        let again = m.and(fa, fc).unwrap();
        let _ = again;
        assert_eq!(m.nodes.len(), before_len, "store grew despite free slots");
    }

    #[test]
    fn gc_with_duplicate_roots_is_safe() {
        let mut m = BddManager::new();
        let a = m.new_var();
        let fa = m.var(a);
        let na = m.not(fa).unwrap();
        let freed_first = m.gc(&[fa, fa, na, na]);
        assert_eq!(freed_first, 0);
        // Double gc must not double-free.
        let freed_second = m.gc(&[fa]);
        assert_eq!(freed_second, 1); // na is garbage now
        let freed_third = m.gc(&[fa]);
        assert_eq!(freed_third, 0);
    }

    #[test]
    fn set_order_ignores_unknown_vars() {
        let mut m = BddManager::new();
        let a = m.new_var();
        let b = m.new_var();
        // An order listing a var the manager doesn't have is tolerated.
        m.set_order(&[VarId::from_index(99), b, a]);
        assert_eq!(m.current_order(), vec![b, a]);
    }
}

#[cfg(test)]
mod auto_gc_tests {
    use super::*;

    /// Evaluates `f` under an assignment indexed by variable id.
    fn eval(m: &BddManager, f: Bdd, asg: &[bool]) -> bool {
        let mut n = f.0;
        loop {
            if n == FALSE {
                return false;
            }
            if n == TRUE {
                return true;
            }
            let node = m.nodes[n as usize];
            n = if asg[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
    }

    #[test]
    fn protected_roots_survive_auto_gc() {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..8).map(|_| m.new_var()).collect();
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let keep = m.and(lits[0], lits[1]).unwrap();
        m.protect(keep);
        // The literals are held across operations too, so they are part of
        // the caller's live set and must be protected like any other root.
        for &l in &lits {
            m.protect(l);
        }
        m.set_auto_gc_threshold(16);
        m.set_auto_gc(true);
        // Churn out garbage until automatic collections must have run. Each
        // round's conjunction chain dies at the next round; only the final
        // `junk` value is an operand (and thus a root) of the next op.
        for round in 0..64 {
            let mut junk = m.zero();
            for (i, &l) in lits.iter().enumerate() {
                let shifted = lits[(i + round) % lits.len()];
                // `junk` is held across the `and` without being one of its
                // operands, so it needs transient protection.
                m.protect(junk);
                let t = m.and(l, shifted).unwrap();
                m.unprotect(junk);
                junk = m.or(junk, t).unwrap();
            }
            let _ = junk;
        }
        let s = m.stats();
        assert!(s.auto_gc_runs > 0, "auto-GC never triggered");
        assert!(s.gc_nodes_freed > 0, "auto-GC reclaimed nothing");
        // The protected root still denotes l0 ∧ l1.
        let mut asg = vec![false; 8];
        assert!(!eval(&m, keep, &asg));
        asg[0] = true;
        asg[1] = true;
        assert!(eval(&m, keep, &asg));
        asg[1] = false;
        assert!(!eval(&m, keep, &asg));
        // And hash-consing still finds it (handles stayed valid).
        let again = m.and(lits[0], lits[1]).unwrap();
        assert_eq!(again, keep);
    }

    #[test]
    fn dead_nodes_are_reclaimed_by_the_trigger() {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..10).map(|_| m.new_var()).collect();
        m.set_auto_gc_threshold(32);
        m.set_auto_gc(true);
        for _ in 0..200 {
            // Every iteration's parity chain becomes garbage immediately.
            let mut acc = m.zero();
            for &v in &vars {
                let l = m.var(v);
                acc = m.xor(acc, l).unwrap();
            }
            let _ = acc;
        }
        let s = m.stats();
        assert!(s.auto_gc_runs > 0);
        // The store stayed bounded instead of accumulating 200 chains.
        assert!(
            m.num_nodes() < 200 * 10,
            "auto-GC failed to bound the store: {} nodes",
            m.num_nodes()
        );
    }

    #[test]
    fn unprotect_makes_roots_collectible_again() {
        let mut m = BddManager::new();
        let a = m.new_var();
        let b = m.new_var();
        let (fa, fb) = (m.var(a), m.var(b));
        let f = m.and(fa, fb).unwrap();
        m.protect(f);
        m.protect(f); // counted twice
        assert_eq!(m.gc(&[fa, fb]), 0);
        m.unprotect(f);
        assert_eq!(m.gc(&[fa, fb]), 0, "still protected once");
        m.unprotect(f);
        assert_eq!(m.gc(&[fa, fb]), 1, "f is garbage after full unprotect");
    }

    #[test]
    fn operands_survive_auto_gc_in_derived_ops() {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..6).map(|_| m.new_var()).collect();
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        m.set_auto_gc_threshold(4); // collect as aggressively as possible
        m.set_auto_gc(true);
        // and_many / or_many internally protect pending operands; the result
        // must match the auto-GC-free computation. `all` is held across the
        // or_many call, so the caller protects it.
        let all = m.and_many(lits.iter().copied()).unwrap();
        m.protect(all);
        let any = m.or_many(lits.iter().copied()).unwrap();
        m.protect(any);
        let mut m2 = BddManager::new();
        let vars2: Vec<_> = (0..6).map(|_| m2.new_var()).collect();
        let lits2: Vec<Bdd> = vars2.iter().map(|&v| m2.var(v)).collect();
        let all2 = m2.and_many(lits2.iter().copied()).unwrap();
        let any2 = m2.or_many(lits2.iter().copied()).unwrap();
        assert_eq!(m.size(all), m2.size(all2));
        assert_eq!(m.size(any), m2.size(any2));
    }
}
