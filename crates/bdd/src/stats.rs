//! Kernel performance counters.

use std::fmt;

/// Performance counters maintained by a [`BddManager`](crate::BddManager).
///
/// Counters accumulate from manager creation (or the last
/// [`reset_stats`](crate::BddManager::reset_stats)) and are cheap enough to
/// keep always-on: every field is a plain integer bumped on an already-taken
/// branch. Higher layers snapshot them per phase (`ReachResult`,
/// `PlainReport`, `RfnStats`) and the bench bins print them per property.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Unique-table lookups (one per `mk` that reaches the table).
    pub unique_probes: u64,
    /// Extra slot inspections beyond the home slot during unique-table
    /// lookups (linear-probing displacement).
    pub unique_collisions: u64,
    /// ITE cache hits.
    pub ite_hits: u64,
    /// ITE cache misses.
    pub ite_misses: u64,
    /// Exists cache hits.
    pub exists_hits: u64,
    /// Exists cache misses.
    pub exists_misses: u64,
    /// And-exists (relational product) cache hits.
    pub and_exists_hits: u64,
    /// And-exists (relational product) cache misses.
    pub and_exists_misses: u64,
    /// Generalized-cofactor (`constrain`) cache hits.
    pub constrain_hits: u64,
    /// Generalized-cofactor (`constrain`) cache misses.
    pub constrain_misses: u64,
    /// Care-set restrict (`gc_restrict`) cache hits.
    pub restrict_hits: u64,
    /// Care-set restrict (`gc_restrict`) cache misses.
    pub restrict_misses: u64,
    /// Garbage collections run (manual and automatic).
    pub gc_runs: u64,
    /// Total nodes reclaimed across all collections.
    pub gc_nodes_freed: u64,
    /// Automatic collections triggered by the dead-node heuristic.
    pub auto_gc_runs: u64,
    /// High-water mark of live nodes.
    pub peak_nodes: usize,
    /// Unique-table shard lock acquisitions
    /// ([`SharedBddManager`](crate::SharedBddManager) only; the serial
    /// kernel takes no locks and leaves this 0).
    pub shard_locks: u64,
    /// Shard lock acquisitions that found the lock already held by another
    /// worker and had to wait (contention).
    pub shard_contended: u64,
    /// High-water mark of live nodes in the fullest unique-table shard.
    pub shard_peak_occupancy: usize,
    /// Sift passes run ([`sift`](crate::BddManager::sift) /
    /// [`sift_with_roots`](crate::BddManager::sift_with_roots) calls).
    pub sift_runs: u64,
    /// Total unique-table entries removed by profitable sift passes
    /// (summed `before - after` over passes that shrank the table).
    pub sift_nodes_shrunk: u64,
    /// Sift passes that failed to shrink the table (the adaptive
    /// backoff schedule keys off this).
    pub unprofitable_sifts: u64,
    /// Total wall-clock microseconds spent inside sift passes.
    pub sift_us: u64,
}

impl BddStats {
    /// Accumulates another snapshot into `self`: counters add up, the peak
    /// takes the maximum. Used when one verification run spans several
    /// managers (e.g. one per refinement iteration).
    pub fn merge(&mut self, other: &BddStats) {
        self.unique_probes += other.unique_probes;
        self.unique_collisions += other.unique_collisions;
        self.ite_hits += other.ite_hits;
        self.ite_misses += other.ite_misses;
        self.exists_hits += other.exists_hits;
        self.exists_misses += other.exists_misses;
        self.and_exists_hits += other.and_exists_hits;
        self.and_exists_misses += other.and_exists_misses;
        self.constrain_hits += other.constrain_hits;
        self.constrain_misses += other.constrain_misses;
        self.restrict_hits += other.restrict_hits;
        self.restrict_misses += other.restrict_misses;
        self.gc_runs += other.gc_runs;
        self.gc_nodes_freed += other.gc_nodes_freed;
        self.auto_gc_runs += other.auto_gc_runs;
        self.peak_nodes = self.peak_nodes.max(other.peak_nodes);
        self.shard_locks += other.shard_locks;
        self.shard_contended += other.shard_contended;
        self.shard_peak_occupancy = self.shard_peak_occupancy.max(other.shard_peak_occupancy);
        self.sift_runs += other.sift_runs;
        self.sift_nodes_shrunk += other.sift_nodes_shrunk;
        self.unprofitable_sifts += other.unprofitable_sifts;
        self.sift_us += other.sift_us;
    }

    /// Combined hit rate over all operation caches, in `[0, 1]`.
    /// Returns 0 when no lookups happened.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.ite_hits
            + self.exists_hits
            + self.and_exists_hits
            + self.constrain_hits
            + self.restrict_hits;
        let total = hits
            + self.ite_misses
            + self.exists_misses
            + self.and_exists_misses
            + self.constrain_misses
            + self.restrict_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Hit rate of the care-set operator cache (`constrain` +
    /// `gc_restrict`), in `[0, 1]`. Returns 0 when no lookups happened.
    pub fn restrict_hit_rate(&self) -> f64 {
        let hits = self.constrain_hits + self.restrict_hits;
        let total = hits + self.constrain_misses + self.restrict_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl fmt::Display for BddStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probes {} (coll {:.2}/probe), cache hit {:.1}% (ite {}/{}, ex {}/{}, andex {}/{}, care {}/{}), gc {} ({} auto, {} freed), peak {}",
            self.unique_probes,
            if self.unique_probes == 0 {
                0.0
            } else {
                self.unique_collisions as f64 / self.unique_probes as f64
            },
            100.0 * self.cache_hit_rate(),
            self.ite_hits,
            self.ite_misses,
            self.exists_hits,
            self.exists_misses,
            self.and_exists_hits,
            self.and_exists_misses,
            self.constrain_hits + self.restrict_hits,
            self.constrain_misses + self.restrict_misses,
            self.gc_runs,
            self.auto_gc_runs,
            self.gc_nodes_freed,
            self.peak_nodes,
        )?;
        // Shard counters exist only for the shared (parallel) kernel; keep
        // serial output byte-identical by appending them only when present.
        if self.shard_locks > 0 {
            write!(
                f,
                ", shard locks {} ({} contended), shard peak {}",
                self.shard_locks, self.shard_contended, self.shard_peak_occupancy,
            )?;
        }
        // Likewise sift counters: only reordering runs print them, so
        // reorder-free output stays byte-identical.
        if self.sift_runs > 0 {
            write!(
                f,
                ", sifts {} ({} unprofitable, {} shrunk, {:.1} ms)",
                self.sift_runs,
                self.unprofitable_sifts,
                self.sift_nodes_shrunk,
                self.sift_us as f64 / 1e3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_peak() {
        let mut a = BddStats {
            unique_probes: 10,
            ite_hits: 3,
            ite_misses: 7,
            peak_nodes: 100,
            ..BddStats::default()
        };
        let b = BddStats {
            unique_probes: 5,
            ite_hits: 1,
            gc_runs: 2,
            peak_nodes: 50,
            ..BddStats::default()
        };
        a.merge(&b);
        assert_eq!(a.unique_probes, 15);
        assert_eq!(a.ite_hits, 4);
        assert_eq!(a.gc_runs, 2);
        assert_eq!(a.peak_nodes, 100);
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        assert_eq!(BddStats::default().cache_hit_rate(), 0.0);
        let s = BddStats {
            ite_hits: 3,
            ite_misses: 1,
            ..BddStats::default()
        };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-9);
    }
}
