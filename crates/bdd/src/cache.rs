//! Fixed-size direct-mapped operation caches (CUDD-style).
//!
//! Unlike the unique table, operation caches are pure memos: an entry maps an
//! operation's operand tuple to its (canonical, deterministic) result, so
//! *losing* an entry can never change any result — recomputation returns the
//! same node. That makes a direct-mapped slot array that simply overwrites on
//! collision sound, and it bounds memory where the seed's `HashMap` caches
//! grew without limit.
//!
//! Caches start small and double (rehashing the survivors) each time the
//! number of insertions since the last resize exceeds twice the current slot
//! count, up to a configurable maximum. A maximum of 0 disables the cache
//! entirely, which the proptest suite uses to check lossy-cache results
//! against memo-free evaluation.

/// Sentinel marking a vacant slot. Node indices are bounded far below
/// `u32::MAX` (the store is a `Vec` of 12-byte nodes), so the sentinel can
/// never collide with a real first operand.
const VACANT: u32 = u32::MAX;

/// Initial slot count for an enabled cache (must be a power of two).
const INITIAL_SLOTS: usize = 1 << 10;

#[inline]
fn mix(a: u32, b: u32, c: u32) -> u64 {
    // Multiplicative mixing of the packed operands; the high bits of a
    // Fibonacci-style product are well distributed, so the index is taken
    // from the top (see `slot_index`).
    let k = (u64::from(a) | (u64::from(b) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    k ^ u64::from(c).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

#[inline]
fn slot_index(hash: u64, slots: usize) -> usize {
    // `slots` is a power of two; use the highest log2(slots) bits.
    (hash >> (64 - slots.trailing_zeros())) as usize
}

#[derive(Clone, Copy)]
struct Entry3 {
    a: u32,
    b: u32,
    c: u32,
    r: u32,
}

/// Direct-mapped cache for three-operand operations (ITE, and-exists).
pub(crate) struct Cache3 {
    slots: Vec<Entry3>,
    max_slots: usize,
    inserts: u64,
}

impl Cache3 {
    pub(crate) fn new(max_slots: usize) -> Self {
        Cache3 {
            slots: Vec::new(),
            max_slots,
            inserts: 0,
        }
    }

    pub(crate) fn clear(&mut self) {
        for e in &mut self.slots {
            e.a = VACANT;
        }
        self.inserts = 0;
    }

    /// Resets the cache with a new maximum capacity (0 disables it).
    pub(crate) fn set_max_slots(&mut self, max_slots: usize) {
        self.max_slots = max_slots;
        self.slots = Vec::new();
        self.inserts = 0;
    }

    /// Current allocated slot count (for memory accounting).
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub(crate) fn get(&self, a: u32, b: u32, c: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let e = &self.slots[slot_index(mix(a, b, c), self.slots.len())];
        (e.a == a && e.b == b && e.c == c).then_some(e.r)
    }

    #[inline]
    pub(crate) fn put(&mut self, a: u32, b: u32, c: u32, r: u32) {
        if self.max_slots == 0 {
            return;
        }
        if self.slots.is_empty() {
            let n = INITIAL_SLOTS.min(self.max_slots.next_power_of_two());
            self.slots = vec![
                Entry3 {
                    a: VACANT,
                    b: 0,
                    c: 0,
                    r: 0
                };
                n
            ];
        } else if self.inserts >= 2 * self.slots.len() as u64
            && self.slots.len() * 2 <= self.max_slots
        {
            self.grow();
        }
        let i = slot_index(mix(a, b, c), self.slots.len());
        self.slots[i] = Entry3 { a, b, c, r };
        self.inserts += 1;
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Entry3 {
                    a: VACANT,
                    b: 0,
                    c: 0,
                    r: 0
                };
                doubled
            ],
        );
        for e in old {
            if e.a != VACANT {
                let i = slot_index(mix(e.a, e.b, e.c), self.slots.len());
                self.slots[i] = e;
            }
        }
        self.inserts = 0;
    }
}

#[derive(Clone, Copy)]
struct Entry2 {
    a: u32,
    b: u32,
    r: u32,
}

/// Direct-mapped cache for two-operand operations (exists).
pub(crate) struct Cache2 {
    slots: Vec<Entry2>,
    max_slots: usize,
    inserts: u64,
}

impl Cache2 {
    pub(crate) fn new(max_slots: usize) -> Self {
        Cache2 {
            slots: Vec::new(),
            max_slots,
            inserts: 0,
        }
    }

    pub(crate) fn clear(&mut self) {
        for e in &mut self.slots {
            e.a = VACANT;
        }
        self.inserts = 0;
    }

    pub(crate) fn set_max_slots(&mut self, max_slots: usize) {
        self.max_slots = max_slots;
        self.slots = Vec::new();
        self.inserts = 0;
    }

    /// Current allocated slot count (for memory accounting).
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub(crate) fn get(&self, a: u32, b: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let e = &self.slots[slot_index(mix(a, b, 0), self.slots.len())];
        (e.a == a && e.b == b).then_some(e.r)
    }

    #[inline]
    pub(crate) fn put(&mut self, a: u32, b: u32, r: u32) {
        if self.max_slots == 0 {
            return;
        }
        if self.slots.is_empty() {
            let n = INITIAL_SLOTS.min(self.max_slots.next_power_of_two());
            self.slots = vec![
                Entry2 {
                    a: VACANT,
                    b: 0,
                    r: 0
                };
                n
            ];
        } else if self.inserts >= 2 * self.slots.len() as u64
            && self.slots.len() * 2 <= self.max_slots
        {
            self.grow();
        }
        let i = slot_index(mix(a, b, 0), self.slots.len());
        self.slots[i] = Entry2 { a, b, r };
        self.inserts += 1;
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Entry2 {
                    a: VACANT,
                    b: 0,
                    r: 0
                };
                doubled
            ],
        );
        for e in old {
            if e.a != VACANT {
                let i = slot_index(mix(e.a, e.b, 0), self.slots.len());
                self.slots[i] = e;
            }
        }
        self.inserts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache3_roundtrip_and_overwrite() {
        let mut c = Cache3::new(1 << 12);
        assert_eq!(c.get(1, 2, 3), None);
        c.put(1, 2, 3, 42);
        assert_eq!(c.get(1, 2, 3), Some(42));
        // Overwriting the same key replaces the entry.
        c.put(1, 2, 3, 43);
        assert_eq!(c.get(1, 2, 3), Some(43));
        c.clear();
        assert_eq!(c.get(1, 2, 3), None);
    }

    #[test]
    fn cache3_disabled_stores_nothing() {
        let mut c = Cache3::new(0);
        c.put(1, 2, 3, 42);
        assert_eq!(c.get(1, 2, 3), None);
    }

    #[test]
    fn cache3_grows_up_to_max_and_keeps_survivors() {
        let mut c = Cache3::new(1 << 12);
        for i in 0..(INITIAL_SLOTS as u32 * 8) {
            c.put(i, i, i, i);
        }
        assert!(c.slots.len() > INITIAL_SLOTS);
        assert!(c.slots.len() <= 1 << 12);
        // Direct-mapped: at least the most recent insert survives.
        let last = INITIAL_SLOTS as u32 * 8 - 1;
        assert_eq!(c.get(last, last, last), Some(last));
    }

    #[test]
    fn cache2_roundtrip() {
        let mut c = Cache2::new(1 << 10);
        assert_eq!(c.get(7, 9), None);
        c.put(7, 9, 11);
        assert_eq!(c.get(7, 9), Some(11));
    }
}
