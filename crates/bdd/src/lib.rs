//! A reduced ordered binary decision diagram (ROBDD) package for the RFN
//! verification tool.
//!
//! This crate plays the role CUDD played in the original DAC 2001 prototype:
//! it supplies every symbolic operation the model-checking and hybrid engines
//! need. It provides:
//!
//! * a hash-consed node store behind a single open-addressing unique table
//!   with multiplicative hashing ([`BddManager`], [`Bdd`]),
//! * the ITE core plus derived boolean connectives, memoized in fixed-size
//!   direct-mapped lossy caches (CUDD-style; see [`BddManager::set_cache_capacity`]),
//! * existential/universal quantification and the fused
//!   [`BddManager::and_exists`] relational product used by image computation,
//! * variable renaming by arbitrary permutation ([`BddManager::permute`]),
//! * cube analysis: [`BddManager::pick_cube`] (one satisfying assignment) and
//!   [`BddManager::shortest_cube`] — the paper's *fattest cube*, the
//!   satisfying cube with the fewest assignments,
//! * satisfying-assignment counting and evaluation,
//! * mark-and-sweep garbage collection with explicit roots, a protected
//!   root set ([`BddManager::protect`]) and an opt-in automatic collector
//!   ([`BddManager::set_auto_gc`]),
//! * kernel performance counters ([`BddStats`]),
//! * **dynamic variable reordering by group sifting**: in-place adjacent
//!   level swaps that preserve node identity, so every externally held
//!   [`Bdd`] handle stays valid across reordering. Current/next-state
//!   variable pairs are kept adjacent by registering them as a group,
//! * **adaptive reorder scheduling** ([`DvoPolicy`], [`DvoSchedule`]):
//!   growth-ratio, wall-clock and exponential-backoff policies decide when
//!   the model checker sifts, with per-pass profitability in [`BddStats`],
//! * a **persistent order/BDD store** ([`store`]): a versioned DDDMP-style
//!   text format that saves a converged variable order and named root BDDs
//!   (e.g. reached-set rings) so repeat runs warm-start, and
//! * a **shard-safe concurrent kernel** ([`SharedBddManager`]) whose
//!   operations take `&self`, so scoped worker threads can apply against one
//!   shared manager — the engine behind intra-property parallel image
//!   computation (see the [`shared`] module docs for the concurrency
//!   model).
//!
//! Handles are plain indices: a [`Bdd`] is only meaningful together with the
//! manager that created it, and survives both reordering (node identity is
//! preserved) and garbage collection (as long as it was reachable from the
//! roots passed to [`BddManager::gc`]).
//!
//! # Example
//!
//! ```
//! use rfn_bdd::BddManager;
//!
//! # fn main() -> Result<(), rfn_bdd::BddError> {
//! let mut m = BddManager::new();
//! let x = m.new_var();
//! let y = m.new_var();
//! let fx = m.var(x);
//! let fy = m.var(y);
//! let conj = m.and(fx, fy)?;
//! let quantified = m.exists_one(conj, y)?; // ∃y. x ∧ y  =  x
//! assert_eq!(quantified, fx);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cache;
mod manager;
mod reorder;
pub mod shared;
mod stats;
pub mod store;
mod unique;

pub use manager::{Bdd, BddError, BddManager, BddResult, VarId};
pub use reorder::{DvoPolicy, DvoSchedule, SIFT_MAX_GROUPS, SIFT_MIN_GROUP_SIZE};
pub use shared::SharedBddManager;
pub use stats::BddStats;
pub use store::{BddStore, StoreBuilder, StoreError, STORE_SCHEMA};
