//! Dynamic variable reordering by group sifting.
//!
//! Reordering happens *in place*: an adjacent-level swap rewrites the nodes
//! labeled with the upper variable and relabels them with the lower one,
//! preserving the boolean function denoted by every node index. External
//! [`Bdd`](crate::Bdd) handles therefore stay valid across reordering, and
//! operation caches remain sound (they are keyed on node identities whose
//! semantics do not change).
//!
//! Variables created together with
//! [`BddManager::new_var_group`](crate::BddManager::new_var_group) always
//! occupy adjacent levels and move as one block, which keeps current/next
//! state variable pairs interleaved — the property the model checker's
//! renaming step relies on.
//!
//! The size metric used while sifting is the total number of unique-table
//! entries, which includes nodes that became unreachable during the sift
//! itself. Call [`BddManager::gc`](crate::BddManager::gc) before
//! [`BddManager::sift`](crate::BddManager::sift) so the metric starts exact.

use std::time::{Duration, Instant};

use crate::manager::BddManager;
use crate::VarId;

/// Groups whose unique tables hold at most this many nodes are not sifted.
pub const SIFT_MIN_GROUP_SIZE: usize = 4;
/// At most this many groups are sifted per pass (largest first).
pub const SIFT_MAX_GROUPS: usize = 128;

/// Decides *when* dynamic variable reordering runs.
///
/// The model checker polls [`should_sift`](DvoSchedule::should_sift) with
/// the live node count at its natural checkpoints (after each image step)
/// and, when a sift was triggered, reports the outcome through
/// [`record_sift`](DvoSchedule::record_sift) so adaptive policies can
/// learn from profitability. Schedules are stateful; build a fresh one per
/// run from a [`DvoPolicy`].
pub trait DvoSchedule {
    /// Whether a sift pass should run now, given the current live node
    /// count of the manager.
    fn should_sift(&mut self, live_nodes: usize) -> bool;

    /// Records the outcome of a sift pass this schedule triggered:
    /// live node counts immediately before and after the pass.
    fn record_sift(&mut self, before: usize, after: usize);
}

/// A declarative, copyable description of a reorder schedule, carried in
/// option structs and on the CLI (`--dvo-schedule`); [`build`](DvoPolicy::build)
/// turns it into the stateful [`DvoSchedule`] the reach loop polls.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum DvoPolicy {
    /// Never reorder.
    Never,
    /// Sift when live nodes exceed a threshold; after each sift the
    /// threshold becomes twice the post-sift size (never smaller than it
    /// was). This reproduces the fixed trigger the reach loop used before
    /// schedules existed and is the default.
    #[default]
    Doubling,
    /// Sift when the table has grown past `ratio` × its size after the
    /// previous sift (the baseline starts at the trigger floor).
    GrowthRatio {
        /// Growth factor over the post-sift baseline that triggers the
        /// next sift (e.g. 2.0 = table doubled since last sift).
        ratio: f64,
    },
    /// Sift at most once per `interval_ms` milliseconds once the table
    /// exceeds the trigger floor.
    TimeSince {
        /// Minimum wall-clock gap between sift passes.
        interval_ms: u64,
    },
    /// [`GrowthRatio`](DvoPolicy::GrowthRatio) with exponential backoff:
    /// each unprofitable sift (table barely shrank) doubles the effective
    /// ratio, a profitable one resets it.
    Backoff {
        /// Base growth factor; the effective factor is `ratio × scale`
        /// where `scale` doubles on unprofitable sifts (capped at 16).
        ratio: f64,
    },
}

impl DvoPolicy {
    /// Builds the stateful schedule. `floor` is the live-node count below
    /// which no policy triggers (the reach loop passes its
    /// `reorder_threshold`).
    pub fn build(self, floor: usize) -> Box<dyn DvoSchedule + Send> {
        match self {
            DvoPolicy::Never => Box::new(NeverSchedule),
            DvoPolicy::Doubling => Box::new(DoublingSchedule { threshold: floor }),
            DvoPolicy::GrowthRatio { ratio } => Box::new(GrowthRatioSchedule {
                ratio,
                floor,
                baseline: floor.max(1),
            }),
            DvoPolicy::TimeSince { interval_ms } => Box::new(TimeSinceSchedule {
                interval: Duration::from_millis(interval_ms),
                floor,
                last: Instant::now(),
            }),
            DvoPolicy::Backoff { ratio } => Box::new(BackoffSchedule {
                ratio,
                floor,
                baseline: floor.max(1),
                scale: 1.0,
            }),
        }
    }

    /// Parses a CLI spelling: `never`, `doubling`, `growth[:RATIO]`,
    /// `time[:MILLIS]`, `backoff[:RATIO]`.
    pub fn parse(s: &str) -> Result<DvoPolicy, String> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let ratio = |default: f64| -> Result<f64, String> {
            match param {
                None => Ok(default),
                Some(p) => p
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r > 1.0)
                    .ok_or_else(|| format!("invalid ratio {p:?} (want a number > 1)")),
            }
        };
        match name {
            "never" => Ok(DvoPolicy::Never),
            "doubling" => Ok(DvoPolicy::Doubling),
            "growth" => Ok(DvoPolicy::GrowthRatio { ratio: ratio(2.0)? }),
            "backoff" => Ok(DvoPolicy::Backoff { ratio: ratio(2.0)? }),
            "time" => {
                let interval_ms = match param {
                    None => 1000,
                    Some(p) => p
                        .parse::<u64>()
                        .ok()
                        .filter(|ms| *ms > 0)
                        .ok_or_else(|| format!("invalid interval {p:?} (want millis > 0)"))?,
                };
                Ok(DvoPolicy::TimeSince { interval_ms })
            }
            _ => Err(format!(
                "unknown dvo schedule {name:?} (want never|doubling|growth[:R]|time[:MS]|backoff[:R])"
            )),
        }
    }

    /// The canonical CLI spelling, for traces and error messages.
    pub fn describe(&self) -> String {
        match self {
            DvoPolicy::Never => "never".into(),
            DvoPolicy::Doubling => "doubling".into(),
            DvoPolicy::GrowthRatio { ratio } => format!("growth:{ratio}"),
            DvoPolicy::TimeSince { interval_ms } => format!("time:{interval_ms}"),
            DvoPolicy::Backoff { ratio } => format!("backoff:{ratio}"),
        }
    }
}

struct NeverSchedule;

impl DvoSchedule for NeverSchedule {
    fn should_sift(&mut self, _live_nodes: usize) -> bool {
        false
    }
    fn record_sift(&mut self, _before: usize, _after: usize) {}
}

struct DoublingSchedule {
    threshold: usize,
}

impl DvoSchedule for DoublingSchedule {
    fn should_sift(&mut self, live_nodes: usize) -> bool {
        live_nodes > self.threshold
    }
    fn record_sift(&mut self, _before: usize, after: usize) {
        // Matches the pre-schedule reach loop exactly: the next trigger is
        // double the post-sift size, and the threshold never shrinks.
        self.threshold = (after * 2).max(self.threshold);
    }
}

struct GrowthRatioSchedule {
    ratio: f64,
    floor: usize,
    baseline: usize,
}

impl DvoSchedule for GrowthRatioSchedule {
    fn should_sift(&mut self, live_nodes: usize) -> bool {
        live_nodes > self.floor && live_nodes as f64 > self.baseline as f64 * self.ratio
    }
    fn record_sift(&mut self, _before: usize, after: usize) {
        self.baseline = after.max(1);
    }
}

struct TimeSinceSchedule {
    interval: Duration,
    floor: usize,
    last: Instant,
}

impl DvoSchedule for TimeSinceSchedule {
    fn should_sift(&mut self, live_nodes: usize) -> bool {
        live_nodes > self.floor && self.last.elapsed() >= self.interval
    }
    fn record_sift(&mut self, _before: usize, _after: usize) {
        self.last = Instant::now();
    }
}

/// A sift counts as unprofitable for backoff purposes when it failed to
/// shrink the table by more than 1/16 (~6%) — the pass cost real time and
/// bought nothing, so the next trigger moves further out.
struct BackoffSchedule {
    ratio: f64,
    floor: usize,
    baseline: usize,
    scale: f64,
}

impl DvoSchedule for BackoffSchedule {
    fn should_sift(&mut self, live_nodes: usize) -> bool {
        live_nodes > self.floor
            && live_nodes as f64 > self.baseline as f64 * self.ratio * self.scale
    }
    fn record_sift(&mut self, before: usize, after: usize) {
        let profitable = after < before.saturating_sub(before / 16);
        self.scale = if profitable {
            1.0
        } else {
            (self.scale * 2.0).min(16.0)
        };
        self.baseline = after.max(1);
    }
}

impl BddManager {
    /// Swaps the variables at levels `l` and `l + 1`, preserving the function
    /// of every node index.
    ///
    /// # Panics
    ///
    /// Panics if `l + 1` is not a valid level.
    pub(crate) fn swap_adjacent_levels(&mut self, l: usize) {
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        // Collect the x-labeled nodes that depend on y (via x's node list).
        // Everything else is untouched by the swap.
        let affected = self.var_nodes_depending_on(x, y);
        // Remove them from the unique table first so rebuilt (x, …) nodes can
        // never alias a node that is about to be relabeled.
        for &idx in &affected {
            self.unique_remove_node(idx);
        }
        for &idx in &affected {
            let n = self.nodes[idx as usize];
            let (lo0, lo1) = if self.nodes[n.lo as usize].var == y {
                (self.nodes[n.lo as usize].lo, self.nodes[n.lo as usize].hi)
            } else {
                (n.lo, n.lo)
            };
            let (hi0, hi1) = if self.nodes[n.hi as usize].var == y {
                (self.nodes[n.hi as usize].lo, self.nodes[n.hi as usize].hi)
            } else {
                (n.hi, n.hi)
            };
            let new_lo = self
                .mk(x, lo0, hi0)
                .expect("reorder bypasses the node limit");
            let new_hi = self
                .mk(x, lo1, hi1)
                .expect("reorder bypasses the node limit");
            debug_assert_ne!(new_lo, new_hi, "swap produced a redundant node");
            self.relabel_node(idx, y, new_lo, new_hi);
        }
        self.level2var[l] = y;
        self.level2var[l + 1] = x;
        self.var2level[x as usize] = (l + 1) as u32;
        self.var2level[y as usize] = l as u32;
    }

    /// Total unique-table entries: the size metric sifting minimizes. O(1).
    fn table_size(&self) -> usize {
        self.unique_len()
    }

    /// The maximal blocks of adjacent levels whose variables share a sifting
    /// group, as `(group_id, start_level, len)`, top to bottom.
    fn blocks(&self) -> Vec<(u32, usize, usize)> {
        let mut out: Vec<(u32, usize, usize)> = Vec::new();
        for l in 0..self.level2var.len() {
            let gid = self.group[self.level2var[l] as usize];
            match out.last_mut() {
                Some((g, _, len)) if *g == gid => *len += 1,
                _ => out.push((gid, l, 1)),
            }
        }
        out
    }

    /// Moves the block starting at level `s` (length `a`) below the block
    /// that follows it (length `b`).
    fn swap_blocks_down(&mut self, s: usize, a: usize, b: usize) {
        for i in (0..a).rev() {
            for l in s + i..s + i + b {
                self.swap_adjacent_levels(l);
            }
        }
    }

    /// Sifts variable groups to locally optimal positions, largest groups
    /// first (Rudell's sifting, on groups). Groups whose unique tables hold
    /// at most [`SIFT_MIN_GROUP_SIZE`] nodes are skipped — on models with
    /// thousands of near-empty input variables they cannot shrink anything,
    /// and visiting them would dominate the runtime.
    ///
    /// `max_growth` bounds the intermediate blow-up: a group's exploration is
    /// cut short once the table grows past `max_growth` times its size at the
    /// start of that group's sift (1.2 – 2.0 are typical values).
    ///
    /// Call [`BddManager::gc`](crate::BddManager::gc) first so dead nodes do
    /// not distort the size metric.
    pub fn sift(&mut self, max_growth: f64) {
        let was = self.reorder_in_progress;
        self.reorder_in_progress = true;
        let t0 = Instant::now();
        let before = self.table_size();
        for gid in self.sift_candidates() {
            if self.reorder_budget_expired() {
                break;
            }
            self.sift_group(gid, max_growth);
        }
        self.finish_sift_stats(before, t0);
        self.reorder_in_progress = was;
    }

    /// Whether the governing budget ran out. Sifting stops improving the
    /// order at the next consistent point (a parked group) — the order is
    /// valid at every such point, so giving up early costs quality, not
    /// correctness — and the next governed operation reports the exhaustion.
    fn reorder_budget_expired(&self) -> bool {
        self.budget().is_some_and(|b| b.check().is_err())
    }

    /// Like [`BddManager::sift`], but garbage-collects with the given roots
    /// before each group's sift so the size metric stays exact throughout.
    /// This is what the model checker calls between image computations.
    pub fn sift_with_roots(&mut self, roots: &[crate::Bdd], max_growth: f64) {
        let was = self.reorder_in_progress;
        self.reorder_in_progress = true;
        let t0 = Instant::now();
        // Collect up front so the profitability baseline counts live nodes
        // only — dead nodes the sift will reclaim anyway must not be
        // credited to it.
        self.gc(roots);
        let before = self.table_size();
        for gid in self.sift_candidates() {
            if self.reorder_budget_expired() {
                break;
            }
            // Collect garbage before each group so the size metric stays
            // exact; candidates are capped, so this stays affordable.
            self.gc(roots);
            self.sift_group(gid, max_growth);
        }
        self.gc(roots);
        self.finish_sift_stats(before, t0);
        self.reorder_in_progress = was;
    }

    /// Books one finished sift pass into [`BddStats`](crate::BddStats):
    /// profitability (table shrinkage vs. the pre-pass size) and elapsed
    /// wall time. Adaptive schedules read these through the stats snapshot.
    fn finish_sift_stats(&mut self, before: usize, t0: Instant) {
        let after = self.table_size();
        self.stats.sift_runs += 1;
        if after < before {
            self.stats.sift_nodes_shrunk += (before - after) as u64;
        } else {
            self.stats.unprofitable_sifts += 1;
        }
        self.stats.sift_us += t0.elapsed().as_micros() as u64;
    }

    /// Groups worth sifting, largest first. On small managers every group
    /// is considered; on managers with many variables (abstract models can
    /// have thousands of near-empty input variables) only groups holding
    /// more than [`SIFT_MIN_GROUP_SIZE`] nodes are visited, capped at
    /// [`SIFT_MAX_GROUPS`].
    fn sift_candidates(&self) -> Vec<u32> {
        let blocks = self.blocks();
        let threshold = if blocks.len() <= 64 {
            0
        } else {
            SIFT_MIN_GROUP_SIZE
        };
        let mut group_sizes: Vec<(u32, usize)> = Vec::new();
        for (gid, s, len) in blocks {
            let size: usize = (s..s + len).map(|l| self.var_len(self.level2var[l])).sum();
            if size > threshold {
                group_sizes.push((gid, size));
            }
        }
        group_sizes.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
        group_sizes.truncate(SIFT_MAX_GROUPS);
        group_sizes.into_iter().map(|(gid, _)| gid).collect()
    }

    /// Moves one group down/up through the order and parks it at the best
    /// position seen. The block layout is tracked incrementally: only the
    /// sifted group moves, so a snapshot of `(group, len)` pairs plus the
    /// group's index stays valid throughout — no per-move rescans.
    fn sift_group(&mut self, gid: u32, max_growth: f64) {
        let start_size = self.table_size().max(1);
        let limit = ((start_size as f64) * max_growth) as usize + 64;
        // Snapshot of the block order as (group, len); `pos` tracks the
        // sifted group; `start_of` computes a block's start level on demand.
        let mut order: Vec<(u32, usize)> = self
            .blocks()
            .into_iter()
            .map(|(g, _, len)| (g, len))
            .collect();
        let start_pos = order
            .iter()
            .position(|&(g, _)| g == gid)
            .expect("group exists");
        let nblocks = order.len();
        let mut pos = start_pos;
        // Start level of the sifted block, maintained incrementally.
        let mut cur_start: usize = order[..pos].iter().map(|&(_, len)| len).sum();
        let mut best = (start_size, start_pos);

        // Explore the shorter side first (plain Rudell heuristic).
        let down_first = start_pos >= nblocks / 2;
        'explore: for phase in 0..2 {
            let go_down = down_first == (phase == 0);
            loop {
                // Block swaps are the unit of work here; polling the budget
                // per swap keeps even a single huge group's sift from
                // overshooting a deadline. Parking below still runs, so the
                // group always lands on the best position seen so far.
                if self.reorder_budget_expired() {
                    break 'explore;
                }
                if go_down {
                    if pos + 1 >= nblocks {
                        break;
                    }
                    let (_, a) = order[pos];
                    let (_, b) = order[pos + 1];
                    self.swap_blocks_down(cur_start, a, b);
                    order.swap(pos, pos + 1);
                    pos += 1;
                    cur_start += b;
                    let sz = self.table_size();
                    if sz < best.0 {
                        best = (sz, pos);
                    }
                    if sz > limit {
                        break;
                    }
                } else {
                    if pos == 0 {
                        break;
                    }
                    let (_, b) = order[pos - 1];
                    let (_, a) = order[pos];
                    self.swap_blocks_down(cur_start - b, b, a);
                    order.swap(pos - 1, pos);
                    pos -= 1;
                    cur_start -= b;
                    let sz = self.table_size();
                    if sz <= best.0 {
                        best = (sz, pos);
                    }
                    if sz > limit {
                        break;
                    }
                }
            }
        }
        // Return to the best position seen.
        while pos < best.1 {
            let (_, a) = order[pos];
            let (_, b) = order[pos + 1];
            self.swap_blocks_down(cur_start, a, b);
            order.swap(pos, pos + 1);
            pos += 1;
            cur_start += b;
        }
        while pos > best.1 {
            let (_, b) = order[pos - 1];
            let (_, a) = order[pos];
            self.swap_blocks_down(cur_start - b, b, a);
            order.swap(pos - 1, pos);
            pos -= 1;
            cur_start -= b;
        }
    }

    /// The current variable order, top level first.
    pub fn current_order(&self) -> Vec<VarId> {
        self.level2var.iter().map(|&v| VarId(v)).collect()
    }

    /// Rearranges the variable order to match `order` (top level first) by
    /// adjacent swaps. Variables missing from `order` keep their relative
    /// order below the listed ones. Group adjacency is *not* enforced here;
    /// pass orders that keep groups contiguous (e.g. one produced by
    /// [`BddManager::current_order`] on a compatibly-grouped manager).
    pub fn set_order(&mut self, order: &[VarId]) {
        let was = self.reorder_in_progress;
        self.reorder_in_progress = true;
        let mut target = 0usize;
        for &v in order {
            if v.index() >= self.num_vars() {
                continue;
            }
            let mut cur = self.var2level[v.index()] as usize;
            while cur > target {
                self.swap_adjacent_levels(cur - 1);
                cur -= 1;
            }
            target += 1;
        }
        self.reorder_in_progress = was;
    }
}

#[cfg(test)]
mod tests {
    use crate::{Bdd, BddManager, VarId};

    /// Builds the classic order-sensitive function
    /// f = (x0 ∧ x1) ∨ (x2 ∧ x3) ∨ (x4 ∧ x5) under a deliberately bad
    /// interleaving x0 x2 x4 x1 x3 x5.
    fn order_sensitive() -> (BddManager, Bdd, Vec<VarId>) {
        let mut m = BddManager::new();
        let v: Vec<VarId> = (0..6).map(|_| m.new_var()).collect();
        // Creation order is the level order; pair (v[0],v[3]), (v[1],v[4]),
        // (v[2],v[5]) so partners are far apart.
        let mut f = m.zero();
        for i in 0..3 {
            let a = m.var(v[i]);
            let b = m.var(v[i + 3]);
            let ab = m.and(a, b).unwrap();
            f = m.or(f, ab).unwrap();
        }
        (m, f, v)
    }

    fn eval_all(m: &BddManager, f: Bdd, nvars: usize) -> Vec<bool> {
        (0..1u32 << nvars)
            .map(|bits| {
                let asg: Vec<bool> = (0..nvars).map(|i| bits & (1 << i) != 0).collect();
                m.eval(f, &asg)
            })
            .collect()
    }

    #[test]
    fn single_swap_preserves_semantics() {
        let (mut m, f, _) = order_sensitive();
        let before = eval_all(&m, f, 6);
        m.reorder_in_progress = true;
        m.swap_adjacent_levels(2);
        m.reorder_in_progress = false;
        assert_eq!(eval_all(&m, f, 6), before);
        m.reorder_in_progress = true;
        m.swap_adjacent_levels(0);
        m.swap_adjacent_levels(4);
        m.reorder_in_progress = false;
        assert_eq!(eval_all(&m, f, 6), before);
    }

    #[test]
    fn sifting_shrinks_order_sensitive_function() {
        let (mut m, f, _) = order_sensitive();
        let before_size = m.size(f);
        let before_sem = eval_all(&m, f, 6);
        m.sift_with_roots(&[f], 2.0);
        assert_eq!(eval_all(&m, f, 6), before_sem, "sift changed semantics");
        let after_size = m.size(f);
        assert!(
            after_size < before_size,
            "sift did not shrink: {before_size} -> {after_size}"
        );
        // Sifting is a local heuristic; a second pass converges to the
        // optimum (6 internal nodes) for this function.
        m.sift_with_roots(&[f], 2.0);
        assert_eq!(eval_all(&m, f, 6), before_sem);
        assert_eq!(m.size(f), 6);
    }

    #[test]
    fn set_order_reaches_requested_order() {
        let (mut m, f, v) = order_sensitive();
        let before_sem = eval_all(&m, f, 6);
        let want = vec![v[0], v[3], v[1], v[4], v[2], v[5]];
        m.set_order(&want);
        assert_eq!(m.current_order(), want);
        assert_eq!(eval_all(&m, f, 6), before_sem);
        assert_eq!(m.size(f), 6);
    }

    #[test]
    fn groups_stay_adjacent_under_sifting() {
        let mut m = BddManager::new();
        let g1 = m.new_var_group(2);
        let g2 = m.new_var_group(2);
        let g3 = m.new_var_group(2);
        let all = [g1.clone(), g2.clone(), g3.clone()];
        // Build something order-sensitive across the groups.
        let mut f = m.zero();
        for (a, b) in [(g1[0], g3[1]), (g2[0], g3[0]), (g1[1], g2[1])] {
            let ba = m.var(a);
            let bb = m.var(b);
            let ab = m.and(ba, bb).unwrap();
            f = m.or(f, ab).unwrap();
        }
        let before = eval_all(&m, f, 6);
        m.gc(&[f]);
        m.sift(2.0);
        assert_eq!(eval_all(&m, f, 6), before);
        // Each group's two variables must sit on adjacent levels.
        for g in &all {
            let l0 = m.level_of(g[0]);
            let l1 = m.level_of(g[1]);
            assert_eq!(l0.abs_diff(l1), 1, "group split apart by sifting");
        }
    }

    #[test]
    fn handles_survive_reordering() {
        let (mut m, f, v) = order_sensitive();
        let a = m.var(v[0]);
        let g = m.and(f, a).unwrap();
        let before_f = eval_all(&m, f, 6);
        let before_g = eval_all(&m, g, 6);
        m.gc(&[f, g]);
        m.sift(2.0);
        assert_eq!(eval_all(&m, f, 6), before_f);
        assert_eq!(eval_all(&m, g, 6), before_g);
        // Operations keep working after the sift.
        let h = m.or(f, g).unwrap();
        assert_eq!(h, f); // g ⊆ f, so f ∨ g = f
    }

    #[test]
    fn sift_on_empty_manager_is_a_noop() {
        let mut m = BddManager::new();
        m.sift(2.0);
        let _ = m.new_var();
        m.sift(2.0);
        assert_eq!(m.num_vars(), 1);
    }
}
