//! Cube extraction, counting and evaluation.

use std::collections::HashMap;

use crate::manager::TERMINAL_VAR;
use crate::{Bdd, BddManager, VarId};

impl BddManager {
    /// Evaluates `f` under a total assignment (indexed by variable id).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the highest variable id in
    /// `f`'s support.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut n = f.0;
        loop {
            let node = self.node(n);
            if node.var == TERMINAL_VAR {
                return n == 1;
            }
            n = if assignment[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
    }

    /// Returns one satisfying assignment of `f` as literals on the variables
    /// along a path to the true terminal, or `None` if `f` is unsatisfiable.
    ///
    /// Variables skipped by the path are unconstrained and omitted.
    pub fn pick_cube(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f == self.zero() {
            return None;
        }
        let mut lits = Vec::new();
        let mut n = f.0;
        while n > 1 {
            let node = self.node(n);
            // Prefer the branch that is not constant-false.
            if node.lo != 0 {
                lits.push((VarId::from_index(node.var as usize), false));
                n = node.lo;
            } else {
                lits.push((VarId::from_index(node.var as usize), true));
                n = node.hi;
            }
        }
        Some(lits)
    }

    /// Returns the *fattest cube* of `f`: the satisfying cube with the fewest
    /// assigned literals among all root-to-⊤ paths of the diagram (Section
    /// 2.2 of the paper uses this as the pre-image seed). Returns `None` if
    /// `f` is unsatisfiable.
    ///
    /// Minimality is over BDD paths (the same semantics as CUDD's
    /// `Cudd_ShortestPath`, which the original prototype used): a shorter
    /// *implicant* that does not correspond to a single path may exist.
    pub fn shortest_cube(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f == self.zero() {
            return None;
        }
        // DP over nodes: minimal number of literals on a path to TRUE.
        fn cost(m: &BddManager, n: u32, memo: &mut HashMap<u32, u32>) -> u32 {
            if n == 0 {
                return u32::MAX / 2;
            }
            if n == 1 {
                return 0;
            }
            if let Some(&c) = memo.get(&n) {
                return c;
            }
            let node = m.node(n);
            let c = cost(m, node.lo, memo)
                .saturating_add(1)
                .min(cost(m, node.hi, memo).saturating_add(1));
            memo.insert(n, c);
            c
        }
        let mut memo = HashMap::new();
        let mut lits = Vec::new();
        let mut n = f.0;
        while n > 1 {
            let node = self.node(n);
            let lo_c = cost(self, node.lo, &mut memo);
            let hi_c = cost(self, node.hi, &mut memo);
            if lo_c <= hi_c {
                lits.push((VarId::from_index(node.var as usize), false));
                n = node.lo;
            } else {
                lits.push((VarId::from_index(node.var as usize), true));
                n = node.hi;
            }
        }
        Some(lits)
    }

    /// Number of satisfying assignments of `f` over `num_vars` variables
    /// (as `f64`, since counts are astronomically large for real designs).
    pub fn sat_count(&self, f: Bdd, num_vars: usize) -> f64 {
        fn walk(m: &BddManager, n: u32, memo: &mut HashMap<u32, f64>) -> f64 {
            // Returns count over the variables strictly below n's level.
            if n == 0 {
                return 0.0;
            }
            if n == 1 {
                return 1.0;
            }
            if let Some(&c) = memo.get(&n) {
                return c;
            }
            let node = m.node(n);
            let my_level = m.var2level[node.var as usize] as f64;
            let weight = |m: &BddManager, child: u32, count: f64| {
                let child_level = if child <= 1 {
                    m.num_vars() as f64
                } else {
                    m.var2level[m.node(child).var as usize] as f64
                };
                count * 2f64.powf(child_level - my_level - 1.0)
            };
            let lo = walk(m, node.lo, memo);
            let hi = walk(m, node.hi, memo);
            let c = weight(m, node.lo, lo) + weight(m, node.hi, hi);
            memo.insert(n, c);
            c
        }
        assert!(
            num_vars >= self.num_vars(),
            "sat_count over fewer vars than the manager holds is ambiguous"
        );
        let mut memo = HashMap::new();
        let root_level = if f.0 <= 1 {
            self.num_vars() as f64
        } else {
            self.var2level[self.node(f.0).var as usize] as f64
        };
        let base = if f == self.one() {
            1.0
        } else {
            walk(self, f.0, &mut memo)
        };
        base * 2f64.powf(root_level) * 2f64.powi((num_vars - self.num_vars()) as i32)
    }

    /// Enumerates up to `limit` disjoint satisfying cubes of `f` (paths to
    /// the true terminal), each as a literal list.
    pub fn cubes(&self, f: Bdd, limit: usize) -> Vec<Vec<(VarId, bool)>> {
        let mut out = Vec::new();
        let mut path: Vec<(VarId, bool)> = Vec::new();
        self.cubes_rec(f.0, limit, &mut path, &mut out);
        out
    }

    fn cubes_rec(
        &self,
        n: u32,
        limit: usize,
        path: &mut Vec<(VarId, bool)>,
        out: &mut Vec<Vec<(VarId, bool)>>,
    ) {
        if out.len() >= limit || n == 0 {
            return;
        }
        if n == 1 {
            out.push(path.clone());
            return;
        }
        let node = self.node(n);
        let v = VarId::from_index(node.var as usize);
        path.push((v, false));
        self.cubes_rec(node.lo, limit, path, out);
        path.pop();
        if out.len() >= limit {
            return;
        }
        path.push((v, true));
        self.cubes_rec(node.hi, limit, path, out);
        path.pop();
    }

    /// Whether the cube (literal list) is contained in `f`
    /// (i.e. `cube → f`). Variables absent from the cube must be irrelevant
    /// along the tested paths.
    pub fn cube_implies(&mut self, lits: &[(VarId, bool)], f: Bdd) -> bool {
        // cube → f  ⇔  restrict(f, lits) == 1 is too strong (f may still
        // depend on other vars). Correct check: restrict and test for
        // tautology over the remaining vars: restrict(f,lits) must be 1.
        // But f restricted may legitimately depend on free vars; cube → f
        // requires f true for *all* completions, so restrict must be 1.
        match self.restrict(f, lits) {
            Ok(r) => r == self.one(),
            Err(_) => false,
        }
    }

    /// Whether the cube intersects `f` (some completion of the cube
    /// satisfies `f`).
    pub fn cube_intersects(&mut self, lits: &[(VarId, bool)], f: Bdd) -> bool {
        match self.restrict(f, lits) {
            Ok(r) => r != self.zero(),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(n: usize) -> (BddManager, Vec<VarId>) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..n).map(|_| m.new_var()).collect();
        (m, vars)
    }

    #[test]
    fn eval_follows_paths() {
        let (mut m, v) = mgr(3);
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.xor(a, b).unwrap();
        assert!(m.eval(f, &[true, false, false]));
        assert!(!m.eval(f, &[true, true, false]));
    }

    #[test]
    fn pick_cube_satisfies() {
        let (mut m, v) = mgr(4);
        let lits: Vec<Bdd> = v.iter().map(|&x| m.var(x)).collect();
        let f = m.and_many(lits).unwrap();
        let cube = m.pick_cube(f).unwrap();
        assert_eq!(cube.len(), 4);
        assert!(cube.iter().all(|&(_, val)| val));
        assert!(m.pick_cube(m.zero()).is_none());
    }

    #[test]
    fn shortest_cube_is_minimal() {
        let (mut m, v) = mgr(4);
        // f = (a ∧ b ∧ c ∧ d) ∨ d : shortest cube is just d=1.
        let lits: Vec<Bdd> = v.iter().map(|&x| m.var(x)).collect();
        let all = m.and_many(lits.clone()).unwrap();
        let f = m.or(all, lits[3]).unwrap();
        let cube = m.shortest_cube(f).unwrap();
        assert_eq!(cube, vec![(v[3], true)]);
    }

    #[test]
    fn shortest_cube_of_constants() {
        let (m, _) = mgr(2);
        assert_eq!(m.shortest_cube(m.one()), Some(vec![]));
        assert_eq!(m.shortest_cube(m.zero()), None);
    }

    #[test]
    fn sat_count_small_functions() {
        let (mut m, v) = mgr(3);
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b).unwrap();
        assert_eq!(m.sat_count(f, 3), 2.0); // a=1,b=1,c free
        let g = m.or(a, b).unwrap();
        assert_eq!(m.sat_count(g, 3), 6.0);
        assert_eq!(m.sat_count(m.one(), 3), 8.0);
        assert_eq!(m.sat_count(m.zero(), 3), 0.0);
    }

    #[test]
    fn sat_count_with_extra_vars() {
        let (mut m, v) = mgr(2);
        let a = m.var(v[0]);
        assert_eq!(m.sat_count(a, 5), 16.0);
    }

    #[test]
    fn cubes_enumerates_disjoint_paths() {
        let (mut m, v) = mgr(2);
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.xor(a, b).unwrap();
        let cubes = m.cubes(f, 10);
        assert_eq!(cubes.len(), 2);
        // Each cube must satisfy f.
        for cube in &cubes {
            let mut asg = vec![false; 2];
            for &(var, val) in cube {
                asg[var.index()] = val;
            }
            assert!(m.eval(f, &asg));
        }
        // Limit respected.
        assert_eq!(m.cubes(f, 1).len(), 1);
    }

    #[test]
    fn cube_implication_and_intersection() {
        let (mut m, v) = mgr(3);
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.or(a, b).unwrap();
        assert!(m.cube_implies(&[(v[0], true)], f));
        assert!(!m.cube_implies(&[(v[2], true)], f));
        assert!(m.cube_intersects(&[(v[0], false)], f)); // b can still be 1
        let ab = m.and(a, b).unwrap();
        assert!(!m.cube_intersects(&[(v[0], false)], ab));
    }
}

impl BddManager {
    /// Renders `f` as a Graphviz `dot` digraph: solid edges are `then`
    /// branches, dashed edges are `else` branches.
    ///
    /// ```
    /// use rfn_bdd::BddManager;
    ///
    /// # fn main() -> Result<(), rfn_bdd::BddError> {
    /// let mut m = BddManager::new();
    /// let x = m.new_var();
    /// let f = m.var(x);
    /// let dot = m.to_dot(f, |v| format!("x{}", v.index()));
    /// assert!(dot.contains("digraph bdd"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self, f: Bdd, mut label: impl FnMut(VarId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let _ = writeln!(out, "  n0 [shape=box,label=\"0\"];");
        let _ = writeln!(out, "  n1 [shape=box,label=\"1\"];");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let node = self.node(n);
            let name = label(VarId::from_index(node.var as usize));
            let _ = writeln!(out, "  n{n} [label=\"{name}\"];");
            let _ = writeln!(out, "  n{n} -> n{} [style=dashed];", node.lo);
            let _ = writeln!(out, "  n{n} -> n{};", node.hi);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_contains_all_reachable_nodes() {
        let mut m = BddManager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let f = m.xor(fa, fb).unwrap();
        let dot = m.to_dot(f, |v| format!("v{}", v.index()));
        assert!(dot.starts_with("digraph bdd"));
        // xor over 2 vars: 3 internal nodes + 2 terminals.
        assert_eq!(dot.matches("label=\"v0\"").count(), 1);
        assert_eq!(dot.matches("label=\"v1\"").count(), 2);
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn dot_of_terminal_is_minimal() {
        let m = BddManager::new();
        let dot = m.to_dot(m.one(), |_| unreachable!("no internal nodes"));
        assert!(dot.contains("n1 [shape=box"));
        assert!(!dot.contains("->"));
    }
}
