//! Persistent variable-order / BDD serialization (DDDMP-style text).
//!
//! A [`BddStore`] captures a converged variable order plus any number of
//! named root BDDs (typically the reached-set rings of a completed
//! fixpoint) in a hand-rolled, dependency-free text format, so a repeat
//! run of the same (design, property) can warm-start: load the order to
//! skip sifting churn, load the rings to resume reachability from the
//! saved frontier instead of from the initial states.
//!
//! The format follows the shape of CUDD's DDDMP text dumps — header
//! directives, a shared node list with `id var lo hi` rows, named roots —
//! but is versioned and validated like the checkpoint schema in
//! `rfn-core`: a schema gate, a design hash, and a property key all have
//! to match before anything is rebuilt, and every violation is a
//! structured [`StoreError`], never a silent cold start. Files are
//! written atomically (temp + rename), again mirroring the checkpoint
//! code.
//!
//! Variables are identified by *label*, not by [`VarId`]: the managers of
//! two runs allocate variables in whatever order their model construction
//! chose, so the caller maps labels (e.g. `cur:req0` / `next:req0` /
//! `in:grant`) to its own variables when rebuilding. Labels appear in the
//! file top level first — the saved order itself.
//!
//! ```text
//! .ver rfn-bdd-store-1
//! .design 00f3a2b4c5d6e7f8
//! .key fifo/psh_full
//! .nvars 4
//! .var 0 cur:full
//! .var 1 next:full
//! .var 2 cur:empty
//! .var 3 next:empty
//! .nnodes 2
//! .node 2 3 0 1
//! .node 3 1 2 1
//! .root 3 ring0
//! .end
//! ```
//!
//! Node ids 0 and 1 are the constant-false and constant-true terminals;
//! internal nodes are numbered consecutively from 2, children before
//! parents, and reference variables by their index in the `.var` list.

use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

use crate::manager::{Bdd, BddManager, VarId};

/// Version gate of the store text format. Bump on any incompatible
/// change; loaders reject other versions with
/// [`StoreError::SchemaMismatch`].
pub const STORE_SCHEMA: u32 = 1;

const VER_PREFIX: &str = ".ver rfn-bdd-store-";

/// Everything that can go wrong saving, loading or rebuilding a store.
///
/// Loaders distinguish a *missing* file (a legitimate cold start —
/// [`BddStore::load`] returns `Ok(None)`) from a *present but unusable*
/// one (always an `Err`): a corrupt or stale cache must be surfaced, not
/// silently recomputed over.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem error reading or writing the store file.
    Io(String),
    /// The file is not a well-formed store document.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The file was written by an incompatible format version.
    SchemaMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file belongs to a different design (structural hash differs).
    DesignMismatch {
        /// Hash found in the file.
        found: u64,
        /// Hash of the design being verified.
        expected: u64,
    },
    /// The file belongs to a different property key.
    KeyMismatch {
        /// Key found in the file.
        found: String,
        /// Key of the run being warm-started.
        expected: String,
    },
    /// A saved label has no counterpart in the rebuilding model, or a
    /// node row violates the ordering/acyclicity invariants.
    Rebuild(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "order store i/o: {e}"),
            StoreError::Parse { line, msg } => {
                write!(f, "order store parse error at line {line}: {msg}")
            }
            StoreError::SchemaMismatch { found, expected } => write!(
                f,
                "order store schema v{found} is not the supported v{expected}"
            ),
            StoreError::DesignMismatch { found, expected } => write!(
                f,
                "order store was saved for design {found:016x}, not {expected:016x}"
            ),
            StoreError::KeyMismatch { found, expected } => {
                write!(
                    f,
                    "order store was saved for key {found:?}, not {expected:?}"
                )
            }
            StoreError::Rebuild(msg) => write!(f, "order store rebuild: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An in-memory store document: a variable order (as labels, top level
/// first) and a shared node list with named roots. Produced either by a
/// [`StoreBuilder`] (to save) or by [`BddStore::parse`] (to warm-start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BddStore {
    /// Structural hash of the design the store was saved for.
    pub design_hash: u64,
    /// Property/target key the store was saved for.
    pub key: String,
    /// Variable labels, top level first — the saved order.
    pub order: Vec<String>,
    /// Internal nodes as `(var_index, lo, hi)`: `var_index` indexes
    /// [`order`](BddStore::order); `lo`/`hi` are node ids where 0/1 are
    /// the terminals and id `k >= 2` is `nodes[k - 2]`. Children always
    /// precede parents.
    nodes: Vec<(u32, u32, u32)>,
    /// Named roots as `(node_id, name)`.
    pub roots: Vec<(u32, String)>,
}

impl BddStore {
    /// An order-only store (no serialized BDDs).
    pub fn order_only(design_hash: u64, key: impl Into<String>, order: Vec<String>) -> Self {
        BddStore {
            design_hash,
            key: key.into(),
            order,
            nodes: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Number of serialized internal nodes (shared across all roots).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Rejects the store unless it was saved for this design and key.
    /// Schema is already checked at [`parse`](BddStore::parse) time.
    pub fn validate(&self, design_hash: u64, key: &str) -> Result<(), StoreError> {
        if self.design_hash != design_hash {
            return Err(StoreError::DesignMismatch {
                found: self.design_hash,
                expected: design_hash,
            });
        }
        if self.key != key {
            return Err(StoreError::KeyMismatch {
                found: self.key.clone(),
                expected: key.to_owned(),
            });
        }
        Ok(())
    }

    /// Rebuilds every root in `mgr`, given the caller's variable for each
    /// saved label: `vars[i]` is the variable labeled `order[i]`. The
    /// manager's current order must already place those variables in the
    /// saved order (call [`BddManager::set_order`] first) — each node row
    /// is checked against the manager's level map so a mismatched or
    /// corrupt file fails structurally instead of building garbage.
    ///
    /// Returns `(name, handle)` pairs in file order.
    pub fn rebuild(
        &self,
        mgr: &mut BddManager,
        vars: &[VarId],
    ) -> Result<Vec<(String, Bdd)>, StoreError> {
        if vars.len() != self.order.len() {
            return Err(StoreError::Rebuild(format!(
                "{} variables supplied for {} saved labels",
                vars.len(),
                self.order.len()
            )));
        }
        let mut built: Vec<Bdd> = Vec::with_capacity(self.nodes.len() + 2);
        built.push(mgr.zero());
        built.push(mgr.one());
        for (k, &(vi, lo, hi)) in self.nodes.iter().enumerate() {
            let id = k + 2;
            let v = *vars.get(vi as usize).ok_or_else(|| {
                StoreError::Rebuild(format!("node {id} references variable index {vi}"))
            })?;
            let get = |child: u32| -> Result<Bdd, StoreError> {
                built.get(child as usize).copied().ok_or_else(|| {
                    StoreError::Rebuild(format!(
                        "node {id} references child {child} before it was defined"
                    ))
                })
            };
            let (lo, hi) = (get(lo)?, get(hi)?);
            // A child must sit strictly below its parent in the manager's
            // current order, or the hash-consed node would be invalid.
            for child in [lo, hi] {
                if let Some((cv, _, _)) = mgr.node_info(child) {
                    if mgr.level_of(cv) <= mgr.level_of(v) {
                        return Err(StoreError::Rebuild(format!(
                            "node {id} is not ordered above its children; \
                             set the saved order on the manager before rebuilding"
                        )));
                    }
                }
            }
            let f = mgr
                .make_node(v, lo, hi)
                .map_err(|e| StoreError::Rebuild(format!("node {id}: {e}")))?;
            built.push(f);
        }
        self.roots
            .iter()
            .map(|&(id, ref name)| {
                let f = built.get(id as usize).copied().ok_or_else(|| {
                    StoreError::Rebuild(format!("root {name:?} references undefined node {id}"))
                })?;
                Ok((name.clone(), f))
            })
            .collect()
    }

    /// Renders the document in the versioned text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(VER_PREFIX);
        s.push_str(&STORE_SCHEMA.to_string());
        s.push('\n');
        s.push_str(&format!(".design {:016x}\n", self.design_hash));
        s.push_str(&format!(".key {}\n", self.key));
        s.push_str(&format!(".nvars {}\n", self.order.len()));
        for (i, label) in self.order.iter().enumerate() {
            s.push_str(&format!(".var {i} {label}\n"));
        }
        s.push_str(&format!(".nnodes {}\n", self.nodes.len()));
        for (k, &(v, lo, hi)) in self.nodes.iter().enumerate() {
            s.push_str(&format!(".node {} {v} {lo} {hi}\n", k + 2));
        }
        for &(id, ref name) in &self.roots {
            s.push_str(&format!(".root {id} {name}\n"));
        }
        s.push_str(".end\n");
        s
    }

    /// Parses a store document, enforcing the schema gate and the
    /// structural invariants of the node list (consecutive ids, children
    /// before parents, in-range variable indices).
    pub fn parse(text: &str) -> Result<Self, StoreError> {
        let fail = |line: usize, msg: String| StoreError::Parse { line, msg };
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));

        let (ln, first) = lines
            .next()
            .ok_or_else(|| fail(1, "empty file".to_owned()))?;
        let ver = first
            .strip_prefix(VER_PREFIX)
            .ok_or_else(|| fail(ln, format!("expected `{VER_PREFIX}<n>` header")))?;
        let schema: u32 = ver
            .parse()
            .map_err(|_| fail(ln, format!("bad schema number {ver:?}")))?;
        if schema != STORE_SCHEMA {
            return Err(StoreError::SchemaMismatch {
                found: schema,
                expected: STORE_SCHEMA,
            });
        }

        let mut design_hash: Option<u64> = None;
        let mut key: Option<String> = None;
        let mut order: Vec<String> = Vec::new();
        let mut nvars: Option<usize> = None;
        let mut nnodes: Option<usize> = None;
        let mut nodes: Vec<(u32, u32, u32)> = Vec::new();
        let mut roots: Vec<(u32, String)> = Vec::new();
        let mut ended = false;

        for (ln, line) in lines {
            if line.is_empty() {
                continue;
            }
            if ended {
                return Err(fail(ln, "content after .end".to_owned()));
            }
            let (dir, rest) = match line.split_once(' ') {
                Some((d, r)) => (d, r.trim()),
                None => (line, ""),
            };
            match dir {
                ".design" => {
                    let h = u64::from_str_radix(rest, 16)
                        .map_err(|_| fail(ln, format!("bad design hash {rest:?}")))?;
                    design_hash = Some(h);
                }
                ".key" => key = Some(rest.to_owned()),
                ".nvars" => {
                    nvars = Some(
                        rest.parse()
                            .map_err(|_| fail(ln, format!("bad variable count {rest:?}")))?,
                    );
                }
                ".var" => {
                    let (idx, label) = rest
                        .split_once(' ')
                        .ok_or_else(|| fail(ln, "expected `.var <index> <label>`".to_owned()))?;
                    let idx: usize = idx
                        .parse()
                        .map_err(|_| fail(ln, format!("bad variable index {idx:?}")))?;
                    if idx != order.len() {
                        return Err(fail(
                            ln,
                            format!(
                                "variable index {idx} out of sequence (expected {})",
                                order.len()
                            ),
                        ));
                    }
                    let label = label.trim();
                    if label.is_empty() {
                        return Err(fail(ln, "empty variable label".to_owned()));
                    }
                    order.push(label.to_owned());
                }
                ".nnodes" => {
                    nnodes = Some(
                        rest.parse()
                            .map_err(|_| fail(ln, format!("bad node count {rest:?}")))?,
                    );
                }
                ".node" => {
                    let mut it = rest.split_whitespace();
                    let mut num = |what: &str| -> Result<u32, StoreError> {
                        it.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| fail(ln, format!("bad or missing node {what}")))
                    };
                    let (id, v, lo, hi) = (num("id")?, num("var")?, num("lo")?, num("hi")?);
                    if it.next().is_some() {
                        return Err(fail(ln, "trailing tokens on .node line".to_owned()));
                    }
                    let expect = (nodes.len() + 2) as u32;
                    if id != expect {
                        return Err(fail(
                            ln,
                            format!("node id {id} out of sequence (expected {expect})"),
                        ));
                    }
                    if (v as usize) >= order.len() {
                        return Err(fail(ln, format!("node {id} references variable index {v}")));
                    }
                    if lo >= id || hi >= id {
                        return Err(fail(
                            ln,
                            format!("node {id} references a child that is not yet defined"),
                        ));
                    }
                    if lo == hi {
                        return Err(fail(ln, format!("node {id} is redundant (lo == hi)")));
                    }
                    nodes.push((v, lo, hi));
                }
                ".root" => {
                    let (id, name) = rest
                        .split_once(' ')
                        .ok_or_else(|| fail(ln, "expected `.root <id> <name>`".to_owned()))?;
                    let id: u32 = id
                        .parse()
                        .map_err(|_| fail(ln, format!("bad root node id {id:?}")))?;
                    if id as usize >= nodes.len() + 2 {
                        return Err(fail(ln, format!("root references undefined node {id}")));
                    }
                    let name = name.trim();
                    if name.is_empty() {
                        return Err(fail(ln, "empty root name".to_owned()));
                    }
                    roots.push((id, name.to_owned()));
                }
                ".end" => ended = true,
                _ => return Err(fail(ln, format!("unknown directive {dir:?}"))),
            }
        }
        if !ended {
            return Err(fail(text.lines().count(), "missing .end".to_owned()));
        }
        let design_hash =
            design_hash.ok_or_else(|| fail(0, "missing .design directive".to_owned()))?;
        let key = key.ok_or_else(|| fail(0, "missing .key directive".to_owned()))?;
        if nvars != Some(order.len()) {
            return Err(fail(
                0,
                format!(".nvars {nvars:?} disagrees with {} .var lines", order.len()),
            ));
        }
        if nnodes != Some(nodes.len()) {
            return Err(fail(
                0,
                format!(
                    ".nnodes {nnodes:?} disagrees with {} .node lines",
                    nodes.len()
                ),
            ));
        }
        Ok(BddStore {
            design_hash,
            key,
            order,
            nodes,
            roots,
        })
    }

    /// Writes the document atomically (temp file + rename), creating the
    /// directory if needed — a crash mid-write can never leave a torn
    /// file behind, only the previous version or none.
    pub fn write_atomic(&self, path: &Path) -> Result<(), StoreError> {
        let io = |e: std::io::Error| StoreError::Io(e.to_string());
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(io)?;
        }
        let tmp = path.with_extension("store.tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(io)?;
            f.write_all(self.to_text().as_bytes()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Loads a document from disk. A missing file is a legitimate cold
    /// start and returns `Ok(None)`; any other failure (unreadable,
    /// corrupt, wrong schema) is a structured error.
    pub fn load(path: &Path) -> Result<Option<Self>, StoreError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e.to_string())),
        };
        Self::parse(&text).map(Some)
    }
}

/// Serializes roots out of a live manager into a [`BddStore`].
///
/// The builder snapshots the manager's *current* order: `labels[i]` must
/// name the variable at level `i` (the caller derives labels from its
/// signal map). Roots added later share the node list, so a ring sequence
/// costs little more than its largest member.
pub struct StoreBuilder<'a> {
    mgr: &'a BddManager,
    store: BddStore,
    /// Manager node index -> file node id, shared across roots.
    memo: HashMap<u32, u32>,
}

impl<'a> StoreBuilder<'a> {
    /// Starts a store for `mgr`'s current order. `labels[i]` names the
    /// variable at level `i`; the length must equal the variable count.
    pub fn new(
        mgr: &'a BddManager,
        design_hash: u64,
        key: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<Self, StoreError> {
        if labels.len() != mgr.num_vars() {
            return Err(StoreError::Rebuild(format!(
                "{} labels supplied for {} variables",
                labels.len(),
                mgr.num_vars()
            )));
        }
        Ok(StoreBuilder {
            mgr,
            store: BddStore::order_only(design_hash, key, labels),
            memo: HashMap::new(),
        })
    }

    /// Serializes `f` (and everything it shares with earlier roots only
    /// once) under `name`.
    pub fn add_root(&mut self, name: impl Into<String>, f: Bdd) {
        let id = self.serialize(f);
        self.store.roots.push((id, name.into()));
    }

    /// Iterative post-order serialization: children get ids before their
    /// parents, which is exactly the invariant the parser checks.
    fn serialize(&mut self, f: Bdd) -> u32 {
        if f == self.mgr.zero() {
            return 0;
        }
        if f == self.mgr.one() {
            return 1;
        }
        let mut stack = vec![(f, false)];
        while let Some((n, expanded)) = stack.pop() {
            if self.memo.contains_key(&n.0) {
                continue;
            }
            let (v, lo, hi) = self.mgr.node_info(n).expect("terminals are memoized above");
            if expanded {
                let id = (self.store.nodes.len() + 2) as u32;
                let var_idx = self.mgr.level_of(v) as u32;
                let lo_id = self.file_id(lo);
                let hi_id = self.file_id(hi);
                self.store.nodes.push((var_idx, lo_id, hi_id));
                self.memo.insert(n.0, id);
            } else {
                stack.push((n, true));
                for child in [lo, hi] {
                    if self.mgr.node_info(child).is_some() && !self.memo.contains_key(&child.0) {
                        stack.push((child, false));
                    }
                }
            }
        }
        self.memo[&f.0]
    }

    fn file_id(&self, f: Bdd) -> u32 {
        if f == self.mgr.zero() {
            0
        } else if f == self.mgr.one() {
            1
        } else {
            self.memo[&f.0]
        }
    }

    /// Finishes the document.
    pub fn finish(self) -> BddStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BddManager;

    fn sample() -> (BddManager, Vec<VarId>, Bdd, Bdd) {
        let mut m = BddManager::new();
        let v: Vec<VarId> = (0..4).map(|_| m.new_var()).collect();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let d = m.var(v[3]);
        let ab = m.and(a, b).unwrap();
        let cd = m.and(c, d).unwrap();
        let f = m.or(ab, cd).unwrap();
        let g = m.xor(a, d).unwrap();
        (m, v, f, g)
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn roundtrip_preserves_roots_and_order() {
        let (m, _, f, g) = sample();
        let mut b = StoreBuilder::new(&m, 0xdead_beef, "k", labels(4)).unwrap();
        b.add_root("f", f);
        b.add_root("g", g);
        let store = b.finish();
        let text = store.to_text();
        let parsed = BddStore::parse(&text).unwrap();
        assert_eq!(parsed, store);

        // Rebuild into a fresh manager allocating the same order.
        let mut m2 = BddManager::new();
        let v2: Vec<VarId> = (0..4).map(|_| m2.new_var()).collect();
        let roots = parsed.rebuild(&mut m2, &v2).unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].0, "f");
        // Same functions: spot-check all 16 assignments.
        for bits in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(m2.eval(roots[0].1, &asg), m.eval(f, &asg));
            assert_eq!(m2.eval(roots[1].1, &asg), m.eval(g, &asg));
        }
    }

    #[test]
    fn shared_structure_is_serialized_once() {
        let (m, _, f, _) = sample();
        let mut b = StoreBuilder::new(&m, 1, "k", labels(4)).unwrap();
        b.add_root("f", f);
        let once = b.finish().num_nodes();
        let mut b = StoreBuilder::new(&m, 1, "k", labels(4)).unwrap();
        b.add_root("f", f);
        b.add_root("f2", f);
        assert_eq!(b.finish().num_nodes(), once, "second root added no nodes");
    }

    #[test]
    fn validate_rejects_wrong_design_and_key() {
        let store = BddStore::order_only(7, "p", labels(2));
        assert!(store.validate(7, "p").is_ok());
        assert!(matches!(
            store.validate(8, "p"),
            Err(StoreError::DesignMismatch {
                found: 7,
                expected: 8
            })
        ));
        assert!(matches!(
            store.validate(7, "q"),
            Err(StoreError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn parse_rejects_corruption() {
        let (m, _, f, _) = sample();
        let mut b = StoreBuilder::new(&m, 2, "k", labels(4)).unwrap();
        b.add_root("f", f);
        let good = b.finish().to_text();

        // Wrong schema version.
        let bad = good.replacen("store-1", "store-999", 1);
        assert!(matches!(
            BddStore::parse(&bad),
            Err(StoreError::SchemaMismatch { found: 999, .. })
        ));
        // Truncated file (no .end).
        let bad = good.replace(".end\n", "");
        assert!(matches!(
            BddStore::parse(&bad),
            Err(StoreError::Parse { .. })
        ));
        // Forward-referencing node.
        let bad = good.replacen(".node 2 ", ".node 7 ", 1);
        assert!(matches!(
            BddStore::parse(&bad),
            Err(StoreError::Parse { .. })
        ));
        // Garbage directive.
        let bad = format!("{good}.wat 1\n");
        assert!(matches!(
            BddStore::parse(&bad),
            Err(StoreError::Parse { .. })
        ));
    }

    #[test]
    fn rebuild_rejects_wrong_manager_order() {
        let (m, _, f, _) = sample();
        let mut b = StoreBuilder::new(&m, 3, "k", labels(4)).unwrap();
        b.add_root("f", f);
        let store = b.finish();
        let mut m2 = BddManager::new();
        let mut v2: Vec<VarId> = (0..4).map(|_| m2.new_var()).collect();
        // Supply the variables in reversed label positions: levels no
        // longer match the saved order, so rebuild must refuse.
        v2.reverse();
        assert!(matches!(
            store.rebuild(&mut m2, &v2),
            Err(StoreError::Rebuild(_))
        ));
    }

    #[test]
    fn atomic_write_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rfn-store-test-{}", std::process::id()));
        let path = dir.join("sub").join("case.store");
        let (m, _, f, _) = sample();
        let mut b = StoreBuilder::new(&m, 4, "k", labels(4)).unwrap();
        b.add_root("f", f);
        let store = b.finish();
        store.write_atomic(&path).unwrap();
        let loaded = BddStore::load(&path).unwrap().expect("file exists");
        assert_eq!(loaded, store);
        assert!(BddStore::load(&dir.join("missing.store"))
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
