//! A shard-safe BDD kernel for intra-property parallelism.
//!
//! [`SharedBddManager`] is a second, concurrent implementation of the ROBDD
//! kernel: every operation takes `&self`, so any number of scoped worker
//! threads can `mk`/apply against one shared manager at once. It exists next
//! to — not instead of — the serial [`BddManager`]: the
//! serial kernel keeps its zero-synchronization hot path (and its golden
//! traces), while parallel image computation exports operands into a shared
//! manager, fans the work across threads, and imports the canonical result
//! back. Hash-consing on both sides makes the round trip exact: the imported
//! result is the *same node* the serial computation would have produced.
//!
//! # Shard layout
//!
//! * **Node arena** — an append-only table of fixed-size chunks, each
//!   allocated once behind a [`OnceLock`]. A slot is written before its index
//!   is published (through a shard lock or an operation-cache entry), so
//!   readers never observe a half-written node and existing chunks are never
//!   moved by growth.
//! * **Unique table** — the PR-1 open-addressing table, sharded by the low
//!   bits of the node hash into a fixed power-of-two number of
//!   [`Mutex`]-guarded shards (64). The in-shard probe sequence
//!   uses the *high* hash bits, so sharding does not degrade probe quality.
//!   Each shard owns a free list of reusable arena slots; `mk` takes exactly
//!   one shard lock.
//! * **Operation caches** — the lossy direct-mapped memos become seqlock
//!   slots: a writer flips a version counter odd, stores the full key and
//!   result, and flips it back even; a reader validates the version before
//!   and after reading. A torn read is discarded (the memo is lossy — losing
//!   an entry can never change a result — same contract as the serial
//!   kernel's lossy caches), and the full
//!   key comparison means a stale entry can never be mistaken for a match.
//!
//! # Garbage collection
//!
//! Collection is a stop-the-world phase: [`SharedBddManager::gc`] takes
//! `&mut self`, so the borrow checker itself enforces that no worker is in
//! flight (workers borrow the manager through `std::thread::scope`, which
//! joins before the coordinator regains `&mut` access). The coordinator
//! marks from the roots, rebuilds each shard's table from the survivors,
//! spreads the dead slots across the shard free lists and clears the memos.
//!
//! # Cancellation
//!
//! A governing [`Budget`] installed with [`SharedBddManager::set_budget`] is
//! polled on the allocation path of *every* worker thread — cancellation on
//! each allocation, deadline and memory every few dozen — so a cancelled
//! budget unwinds all workers within the same bound as the serial kernel.
//! A worker that fails for any reason may also [`SharedBddManager::poison`]
//! the manager, which makes every other worker's next allocation return
//! [`BddError::Cancelled`] instead of burning the rest of its slice.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use rfn_govern::{Budget, Exhaustion};

use crate::manager::TERMINAL_VAR;
use crate::stats::BddStats;
use crate::{Bdd, BddError, BddManager, BddResult, VarId};

/// Number of unique-table shards (power of two). 64 shards keep the
/// collision probability of two workers needing the same lock at the same
/// time low for any realistic thread count, while the per-shard tables stay
/// large enough to amortize their `Vec` headers.
const NUM_SHARDS: usize = 64;

/// log2 of the arena chunk size.
const CHUNK_BITS: usize = 16;

/// Arena chunk size in slots.
const CHUNK_SLOTS: usize = 1 << CHUNK_BITS;

/// Maximum number of arena chunks (caps the manager at 2^28 nodes, far above
/// anything the governing budgets allow).
const MAX_CHUNKS: usize = 1 << 12;

/// Initial slot count of each unique-table shard (power of two).
const SHARD_INITIAL_SLOTS: usize = 1 << 8;

/// Vacant unique-table slot.
const EMPTY: u32 = u32::MAX;

/// Default slot count of each seqlock operation cache.
const DEFAULT_PAR_CACHE_SLOTS: usize = 1 << 18;

/// Allocations between two deadline/memory polls of the governing budget,
/// per worker thread (cancellation is polled on every allocation). Matches
/// the serial kernel's interval, so the cooperative-cancellation latency
/// bound is the same on every worker.
const BUDGET_POLL_INTERVAL: u32 = 64;

const FALSE: u32 = 0;
const TRUE: u32 = 1;

/// Same node hash as the serial unique table: shard selection takes the low
/// bits, the in-shard probe start the high bits, so the two are independent.
#[inline]
fn hash(var: u32, lo: u32, hi: u32) -> u64 {
    let k = (u64::from(lo) | (u64::from(hi) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    k ^ u64::from(var).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

#[inline]
fn mix(a: u32, b: u32, c: u32) -> u64 {
    let k = (u64::from(a) | (u64::from(b) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    k ^ u64::from(c).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// One arena slot. `var` and `lohi` are written exactly once before the
/// slot's index is published (or rewritten only while the slot is free and
/// unreachable), so relaxed loads paired with the publishing edge — a shard
/// mutex, a seqlock version, or a scope join — always see a complete node.
struct Slot {
    var: AtomicU32,
    lohi: AtomicU64,
}

/// Append-only chunked node store. Chunks are allocated on demand behind a
/// [`OnceLock`] and never move, so `&self` readers are safe while another
/// thread extends the arena.
struct Arena {
    chunks: Vec<OnceLock<Box<[Slot]>>>,
    /// Next fresh slot index; only grows (freed slots are recycled through
    /// the shard free lists, never returned here).
    cursor: AtomicU32,
}

impl Arena {
    fn new() -> Self {
        let mut chunks = Vec::with_capacity(MAX_CHUNKS);
        chunks.resize_with(MAX_CHUNKS, OnceLock::new);
        Arena {
            chunks,
            cursor: AtomicU32::new(0),
        }
    }

    fn chunk(&self, c: usize) -> &[Slot] {
        self.chunks[c].get_or_init(|| {
            let mut v = Vec::with_capacity(CHUNK_SLOTS);
            v.resize_with(CHUNK_SLOTS, || Slot {
                var: AtomicU32::new(TERMINAL_VAR),
                lohi: AtomicU64::new(0),
            });
            v.into_boxed_slice()
        })
    }

    /// Reserves a fresh slot index (the caller writes and publishes it).
    fn alloc(&self) -> Result<u32, BddError> {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        if idx as usize >= MAX_CHUNKS * CHUNK_SLOTS {
            return Err(BddError::NodeLimit);
        }
        self.chunk(idx as usize >> CHUNK_BITS);
        Ok(idx)
    }

    #[inline]
    fn slot(&self, idx: u32) -> &Slot {
        let chunk = self.chunks[idx as usize >> CHUNK_BITS]
            .get()
            .expect("arena slot read before its chunk was allocated");
        &chunk[idx as usize & (CHUNK_SLOTS - 1)]
    }

    #[inline]
    fn write(&self, idx: u32, var: u32, lo: u32, hi: u32) {
        let s = self.slot(idx);
        s.var.store(var, Ordering::Relaxed);
        s.lohi
            .store(u64::from(lo) | (u64::from(hi) << 32), Ordering::Release);
    }

    #[inline]
    fn read(&self, idx: u32) -> (u32, u32, u32) {
        let s = self.slot(idx);
        let lohi = s.lohi.load(Ordering::Acquire);
        let var = s.var.load(Ordering::Relaxed);
        (var, lohi as u32, (lohi >> 32) as u32)
    }
}

/// One unique-table shard: an open-addressing slot array (high hash bits
/// index it, exactly like the serial table) plus this shard's share of the
/// reusable arena slots.
struct ShardTable {
    slots: Vec<u32>,
    len: usize,
    free: Vec<u32>,
    /// High-water mark of `len` (per-shard peak occupancy).
    peak: usize,
}

impl ShardTable {
    fn new() -> Self {
        ShardTable {
            slots: vec![EMPTY; SHARD_INITIAL_SLOTS],
            len: 0,
            free: Vec::new(),
            peak: 0,
        }
    }

    #[inline]
    fn index(&self, h: u64) -> usize {
        (h >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    fn grow(&mut self, arena: &Arena) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; doubled]);
        let mask = self.slots.len() - 1;
        for idx in old {
            if idx == EMPTY {
                continue;
            }
            let (var, lo, hi) = arena.read(idx);
            let mut i = self.index(hash(var, lo, hi));
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx;
        }
    }
}

/// Seqlock entry of a lossy operation memo: `v` is the version (odd while a
/// writer is mid-store), `w1` packs the first two key operands, `w2` the
/// third operand and the result.
struct SeqEntry {
    v: AtomicU32,
    w1: AtomicU64,
    w2: AtomicU64,
}

/// Direct-mapped lossy memo safe for concurrent readers and writers. Writers
/// that lose the version CAS simply skip the store; readers that observe a
/// version change discard the entry. Both are sound because the memo is
/// lossy (see [`crate::cache`]); the full key is stored and compared, so a
/// validated read can never return another operation's result.
struct SeqCache {
    slots: OnceLock<Box<[SeqEntry]>>,
    num_slots: usize,
}

impl SeqCache {
    fn new(num_slots: usize) -> Self {
        SeqCache {
            slots: OnceLock::new(),
            num_slots: num_slots.next_power_of_two(),
        }
    }

    fn slots(&self) -> &[SeqEntry] {
        self.slots.get_or_init(|| {
            let mut v = Vec::with_capacity(self.num_slots);
            v.resize_with(self.num_slots, || SeqEntry {
                v: AtomicU32::new(0),
                // A vacant key: `a == u32::MAX` can never be a real operand.
                w1: AtomicU64::new(u64::from(u32::MAX)),
                w2: AtomicU64::new(0),
            });
            v.into_boxed_slice()
        })
    }

    #[inline]
    fn get(&self, a: u32, b: u32, c: u32) -> Option<u32> {
        let slots = self.slots.get()?;
        let e = &slots[(mix(a, b, c) >> (64 - slots.len().trailing_zeros())) as usize];
        let v1 = e.v.load(Ordering::Acquire);
        if v1 & 1 != 0 {
            return None;
        }
        let w1 = e.w1.load(Ordering::Relaxed);
        let w2 = e.w2.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if e.v.load(Ordering::Relaxed) != v1 {
            return None;
        }
        let (ea, eb) = (w1 as u32, (w1 >> 32) as u32);
        let (ec, r) = (w2 as u32, (w2 >> 32) as u32);
        (ea == a && eb == b && ec == c).then_some(r)
    }

    #[inline]
    fn put(&self, a: u32, b: u32, c: u32, r: u32) {
        if self.num_slots == 0 {
            return;
        }
        let slots = self.slots();
        let e = &slots[(mix(a, b, c) >> (64 - slots.len().trailing_zeros())) as usize];
        let v = e.v.load(Ordering::Relaxed);
        if v & 1 != 0 {
            return; // another writer is mid-store: the memo is lossy, skip
        }
        if e.v
            .compare_exchange(v, v.wrapping_add(1), Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        e.w1.store(u64::from(a) | (u64::from(b) << 32), Ordering::Relaxed);
        e.w2.store(u64::from(c) | (u64::from(r) << 32), Ordering::Relaxed);
        e.v.store(v.wrapping_add(2), Ordering::Release);
    }

    /// Stop-the-world clear; `&mut self` proves no reader is in flight.
    fn clear(&mut self) {
        if let Some(slots) = self.slots.get_mut() {
            for e in slots.iter_mut() {
                *e.v.get_mut() = 0;
                *e.w1.get_mut() = u64::from(u32::MAX);
                *e.w2.get_mut() = 0;
            }
        }
    }
}

/// Always-on concurrent counters, mirrored into [`BddStats`] on
/// [`SharedBddManager::stats`].
#[derive(Default)]
struct SharedStats {
    unique_probes: AtomicU64,
    unique_collisions: AtomicU64,
    shard_locks: AtomicU64,
    shard_contended: AtomicU64,
    ite_hits: AtomicU64,
    ite_misses: AtomicU64,
    exists_hits: AtomicU64,
    exists_misses: AtomicU64,
    and_exists_hits: AtomicU64,
    and_exists_misses: AtomicU64,
    gc_runs: AtomicU64,
    gc_nodes_freed: AtomicU64,
    peak_nodes: AtomicUsize,
}

/// Per-thread operation context: counters batched in thread-local cells and
/// flushed into the shared atomics once per top-level operation, so the hot
/// recursion never touches a contended cache line.
#[derive(Default)]
struct OpCtx {
    probes: Cell<u64>,
    collisions: Cell<u64>,
    locks: Cell<u64>,
    contended: Cell<u64>,
    ite_hits: Cell<u64>,
    ite_misses: Cell<u64>,
    exists_hits: Cell<u64>,
    exists_misses: Cell<u64>,
    and_exists_hits: Cell<u64>,
    and_exists_misses: Cell<u64>,
    /// Allocations since this thread's last deadline/memory poll.
    poll: Cell<u32>,
}

/// The shard-safe BDD manager: every operation takes `&self` and may be
/// called from any number of threads concurrently. See the [module
/// docs](self) for the concurrency model and the intended serial↔shared
/// transfer workflow ([`SharedBddManager::make_node`] /
/// [`SharedBddManager::node_info`] on this side,
/// [`BddManager::make_node`] / [`BddManager::node_info`] on the serial
/// side).
pub struct SharedBddManager {
    arena: Arena,
    shards: Box<[Mutex<ShardTable>]>,
    ite_cache: SeqCache,
    exists_cache: SeqCache,
    and_exists_cache: SeqCache,
    var2level: Vec<u32>,
    level2var: Vec<u32>,
    /// Live node count (terminals excluded), kept exact under the shard
    /// locks' increments and GC's recount.
    live: AtomicUsize,
    /// Total allocated unique-table slots across shards (memory accounting).
    table_slots: AtomicUsize,
    node_limit: usize,
    budget: Option<Budget>,
    poisoned: AtomicBool,
    stats: SharedStats,
}

impl std::fmt::Debug for SharedBddManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedBddManager({} vars, {} live nodes)",
            self.num_vars(),
            self.num_nodes()
        )
    }
}

impl SharedBddManager {
    /// Creates a shared manager over `num_vars` variables in identity order.
    pub fn new(num_vars: usize) -> Self {
        Self::with_order((0..num_vars as u32).collect())
    }

    /// Creates a shared manager whose variable order mirrors the given
    /// `var → level` map (a permutation of `0..n`), e.g. a snapshot of a
    /// serial manager's order so exported nodes keep their structure.
    ///
    /// # Panics
    ///
    /// Panics if `var2level` is not a permutation.
    pub fn with_order(var2level: Vec<u32>) -> Self {
        let n = var2level.len();
        let mut level2var = vec![u32::MAX; n];
        for (v, &l) in var2level.iter().enumerate() {
            assert!(
                (l as usize) < n && level2var[l as usize] == u32::MAX,
                "var2level must be a permutation of 0..{n}"
            );
            level2var[l as usize] = v as u32;
        }
        let arena = Arena::new();
        // Terminals occupy indices 0 and 1, exactly like the serial manager.
        arena.alloc().expect("arena has room for terminals");
        arena.alloc().expect("arena has room for terminals");
        arena.write(FALSE, TERMINAL_VAR, FALSE, FALSE);
        arena.write(TRUE, TERMINAL_VAR, TRUE, TRUE);
        let mut shards = Vec::with_capacity(NUM_SHARDS);
        shards.resize_with(NUM_SHARDS, || Mutex::new(ShardTable::new()));
        SharedBddManager {
            arena,
            shards: shards.into_boxed_slice(),
            ite_cache: SeqCache::new(DEFAULT_PAR_CACHE_SLOTS),
            exists_cache: SeqCache::new(DEFAULT_PAR_CACHE_SLOTS),
            and_exists_cache: SeqCache::new(DEFAULT_PAR_CACHE_SLOTS),
            var2level,
            level2var,
            live: AtomicUsize::new(0),
            table_slots: AtomicUsize::new(NUM_SHARDS * SHARD_INITIAL_SLOTS),
            node_limit: usize::MAX,
            budget: None,
            poisoned: AtomicBool::new(false),
            stats: SharedStats::default(),
        }
    }

    /// Creates a shared manager mirroring a serial manager's current
    /// variable order.
    pub fn mirroring(mgr: &BddManager) -> Self {
        Self::with_order(mgr.var2level.clone())
    }

    /// Sets the live-node limit (default: unlimited).
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Installs a governing [`Budget`], polled on every worker thread's
    /// allocation path exactly like the serial kernel's
    /// [`BddManager::set_budget`].
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = Some(budget);
    }

    /// Marks the manager poisoned: every subsequent allocation on any thread
    /// fails with [`BddError::Cancelled`]. A worker that hits an error calls
    /// this so its siblings unwind instead of finishing doomed slices; the
    /// coordinator reports the first *real* error, not the poison echoes.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Clears the poison flag (between independent parallel sections).
    pub fn clear_poison(&mut self) {
        *self.poisoned.get_mut() = false;
    }

    /// The constant false.
    pub fn zero(&self) -> Bdd {
        Bdd(FALSE)
    }

    /// The constant true.
    pub fn one(&self) -> Bdd {
        Bdd(TRUE)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    /// Number of live internal nodes (terminals excluded).
    pub fn num_nodes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Approximate resident bytes of the arena, shard tables and caches.
    pub fn approx_bytes(&self) -> usize {
        let arena = (self.arena.cursor.load(Ordering::Relaxed) as usize)
            .min(MAX_CHUNKS * CHUNK_SLOTS)
            * std::mem::size_of::<Slot>();
        let tables = self.table_slots.load(Ordering::Relaxed) * std::mem::size_of::<u32>();
        let cache_entries = [&self.ite_cache, &self.exists_cache, &self.and_exists_cache]
            .iter()
            .map(|c| c.slots.get().map_or(0, |s| s.len()))
            .sum::<usize>();
        arena + tables + cache_entries * std::mem::size_of::<SeqEntry>()
    }

    /// Snapshot of the kernel counters. Shard counters land in the
    /// `shard_*` fields of [`BddStats`]; cache counters land in the fields
    /// of the corresponding serial caches.
    pub fn stats(&self) -> BddStats {
        let shard_peak = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").peak)
            .max()
            .unwrap_or(0);
        BddStats {
            unique_probes: self.stats.unique_probes.load(Ordering::Relaxed),
            unique_collisions: self.stats.unique_collisions.load(Ordering::Relaxed),
            ite_hits: self.stats.ite_hits.load(Ordering::Relaxed),
            ite_misses: self.stats.ite_misses.load(Ordering::Relaxed),
            exists_hits: self.stats.exists_hits.load(Ordering::Relaxed),
            exists_misses: self.stats.exists_misses.load(Ordering::Relaxed),
            and_exists_hits: self.stats.and_exists_hits.load(Ordering::Relaxed),
            and_exists_misses: self.stats.and_exists_misses.load(Ordering::Relaxed),
            gc_runs: self.stats.gc_runs.load(Ordering::Relaxed),
            gc_nodes_freed: self.stats.gc_nodes_freed.load(Ordering::Relaxed),
            peak_nodes: self.stats.peak_nodes.load(Ordering::Relaxed),
            shard_locks: self.stats.shard_locks.load(Ordering::Relaxed),
            shard_contended: self.stats.shard_contended.load(Ordering::Relaxed),
            shard_peak_occupancy: shard_peak,
            ..BddStats::default()
        }
    }

    #[inline]
    fn level(&self, n: u32) -> u32 {
        let (var, _, _) = self.arena.read(n);
        if var == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[var as usize]
        }
    }

    #[inline]
    fn cofactor(&self, n: u32, level: u32) -> (u32, u32) {
        let (var, lo, hi) = self.arena.read(n);
        if var != TERMINAL_VAR && self.var2level[var as usize] == level {
            (lo, hi)
        } else {
            (n, n)
        }
    }

    /// Finds or creates the node `(var, lo, hi)`: the concurrent twin of the
    /// serial `mk`, taking exactly one shard lock.
    fn mk(&self, ctx: &OpCtx, var: u32, lo: u32, hi: u32) -> Result<u32, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        debug_assert!(
            self.level(lo) > self.var2level[var as usize]
                && self.level(hi) > self.var2level[var as usize],
            "mk: children must be below the node's level"
        );
        ctx.probes.set(ctx.probes.get() + 1);
        let h = hash(var, lo, hi);
        let shard = &self.shards[(h as usize) & (NUM_SHARDS - 1)];
        let mut t: MutexGuard<'_, ShardTable> = match shard.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                ctx.contended.set(ctx.contended.get() + 1);
                shard.lock().expect("shard lock poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("shard lock poisoned"),
        };
        ctx.locks.set(ctx.locks.get() + 1);
        if (t.len + 1) * 4 > t.slots.len() * 3 {
            let before = t.slots.len();
            t.grow(&self.arena);
            self.table_slots
                .fetch_add(t.slots.len() - before, Ordering::Relaxed);
        }
        let mask = t.slots.len() - 1;
        let mut i = t.index(h);
        loop {
            let s = t.slots[i];
            if s == EMPTY {
                break;
            }
            let (nvar, nlo, nhi) = self.arena.read(s);
            if nvar == var && nlo == lo && nhi == hi {
                return Ok(s);
            }
            ctx.collisions.set(ctx.collisions.get() + 1);
            i = (i + 1) & mask;
        }
        // Vacant: allocate. Governance first, exactly like the serial path.
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(BddError::Cancelled);
        }
        let limit = match &self.budget {
            Some(b) => self.node_limit.min(b.node_ceiling()),
            None => self.node_limit,
        };
        if self.live.load(Ordering::Relaxed) >= limit {
            return Err(BddError::NodeLimit);
        }
        if let Some(b) = &self.budget {
            if b.is_cancelled() {
                return Err(BddError::Cancelled);
            }
            ctx.poll.set(ctx.poll.get().wrapping_add(1));
            if ctx.poll.get().is_multiple_of(BUDGET_POLL_INTERVAL) {
                if let Err(e) = b.check().and_then(|()| b.check_memory(self.approx_bytes())) {
                    return Err(match e {
                        Exhaustion::Cancelled => BddError::Cancelled,
                        Exhaustion::MemoryLimit => BddError::MemoryLimit,
                        _ => BddError::TimeLimit,
                    });
                }
            }
        }
        let idx = match t.free.pop() {
            Some(idx) => idx,
            None => self.arena.alloc()?,
        };
        self.arena.write(idx, var, lo, hi);
        t.slots[i] = idx;
        t.len += 1;
        if t.len > t.peak {
            t.peak = t.len;
        }
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.peak_nodes.fetch_max(live, Ordering::Relaxed);
        Ok(idx)
    }

    fn flush(&self, ctx: &OpCtx) {
        let s = &self.stats;
        s.unique_probes
            .fetch_add(ctx.probes.get(), Ordering::Relaxed);
        s.unique_collisions
            .fetch_add(ctx.collisions.get(), Ordering::Relaxed);
        s.shard_locks.fetch_add(ctx.locks.get(), Ordering::Relaxed);
        s.shard_contended
            .fetch_add(ctx.contended.get(), Ordering::Relaxed);
        s.ite_hits.fetch_add(ctx.ite_hits.get(), Ordering::Relaxed);
        s.ite_misses
            .fetch_add(ctx.ite_misses.get(), Ordering::Relaxed);
        s.exists_hits
            .fetch_add(ctx.exists_hits.get(), Ordering::Relaxed);
        s.exists_misses
            .fetch_add(ctx.exists_misses.get(), Ordering::Relaxed);
        s.and_exists_hits
            .fetch_add(ctx.and_exists_hits.get(), Ordering::Relaxed);
        s.and_exists_misses
            .fetch_add(ctx.and_exists_misses.get(), Ordering::Relaxed);
    }

    /// The BDD of a single positive literal.
    pub fn var(&self, v: VarId) -> BddResult {
        let ctx = OpCtx::default();
        let r = self.mk(&ctx, v.0, FALSE, TRUE).map(Bdd);
        self.flush(&ctx);
        r
    }

    /// Finds or creates the internal node `v ? hi : lo` from existing
    /// handles. This is the hash-consing entry point used to import BDDs
    /// node by node; `lo` and `hi` must already be ordered strictly below
    /// `v`'s level (guaranteed when copying a BDD bottom-up from a manager
    /// with the same variable order).
    pub fn make_node(&self, v: VarId, lo: Bdd, hi: Bdd) -> BddResult {
        let ctx = OpCtx::default();
        let r = self.mk(&ctx, v.0, lo.0, hi.0).map(Bdd);
        self.flush(&ctx);
        r
    }

    /// The variable and cofactors of an internal node (`None` for the
    /// terminals). Inverse of [`SharedBddManager::make_node`], used to
    /// export a BDD out of the shared manager.
    pub fn node_info(&self, f: Bdd) -> Option<(VarId, Bdd, Bdd)> {
        let (var, lo, hi) = self.arena.read(f.0);
        (var != TERMINAL_VAR).then_some((VarId(var), Bdd(lo), Bdd(hi)))
    }

    /// Negation.
    pub fn not(&self, f: Bdd) -> BddResult {
        self.ite(f, self.zero(), self.one())
    }

    /// Conjunction.
    pub fn and(&self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, g, self.zero())
    }

    /// Disjunction.
    pub fn or(&self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, self.one(), g)
    }

    /// If-then-else `f ? g : h`.
    pub fn ite(&self, f: Bdd, g: Bdd, h: Bdd) -> BddResult {
        let ctx = OpCtx::default();
        let r = self.ite_rec(&ctx, f.0, g.0, h.0).map(Bdd);
        self.flush(&ctx);
        r
    }

    fn ite_rec(&self, ctx: &OpCtx, f: u32, g: u32, h: u32) -> Result<u32, BddError> {
        if f == TRUE {
            return Ok(g);
        }
        if f == FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == TRUE && h == FALSE {
            return Ok(f);
        }
        if let Some(r) = self.ite_cache.get(f, g, h) {
            ctx.ite_hits.set(ctx.ite_hits.get() + 1);
            return Ok(r);
        }
        ctx.ite_misses.set(ctx.ite_misses.get() + 1);
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let v = self.level2var[top as usize];
        let (f0, f1) = self.cofactor(f, top);
        let (g0, g1) = self.cofactor(g, top);
        let (h0, h1) = self.cofactor(h, top);
        let lo = self.ite_rec(ctx, f0, g0, h0)?;
        let hi = self.ite_rec(ctx, f1, g1, h1)?;
        let r = self.mk(ctx, v, lo, hi)?;
        self.ite_cache.put(f, g, h, r);
        Ok(r)
    }

    /// Existential quantification `∃ vars . f` (`vars` is a positive cube).
    pub fn exists(&self, f: Bdd, vars: Bdd) -> BddResult {
        let ctx = OpCtx::default();
        let r = self.exists_rec(&ctx, f.0, vars.0).map(Bdd);
        self.flush(&ctx);
        r
    }

    fn exists_rec(&self, ctx: &OpCtx, f: u32, mut cube: u32) -> Result<u32, BddError> {
        while cube != TRUE && self.level(cube) < self.level(f) {
            let (_, _, hi) = self.arena.read(cube);
            cube = hi;
        }
        if f <= TRUE || cube == TRUE {
            return Ok(f);
        }
        if let Some(r) = self.exists_cache.get(f, cube, 0) {
            ctx.exists_hits.set(ctx.exists_hits.get() + 1);
            return Ok(r);
        }
        ctx.exists_misses.set(ctx.exists_misses.get() + 1);
        let flevel = self.level(f);
        let (_, flo, fhi) = self.arena.read(f);
        let r = if self.level(cube) == flevel {
            let (_, _, cube_rest) = self.arena.read(cube);
            let lo = self.exists_rec(ctx, flo, cube_rest)?;
            if lo == TRUE {
                TRUE
            } else {
                let hi = self.exists_rec(ctx, fhi, cube_rest)?;
                self.ite_rec(ctx, lo, TRUE, hi)?
            }
        } else {
            let v = self.level2var[flevel as usize];
            let lo = self.exists_rec(ctx, flo, cube)?;
            let hi = self.exists_rec(ctx, fhi, cube)?;
            self.mk(ctx, v, lo, hi)?
        };
        self.exists_cache.put(f, cube, 0, r);
        Ok(r)
    }

    /// The fused relational product `∃ vars . f ∧ g`.
    pub fn and_exists(&self, f: Bdd, g: Bdd, vars: Bdd) -> BddResult {
        let ctx = OpCtx::default();
        let r = self.and_exists_rec(&ctx, f.0, g.0, vars.0).map(Bdd);
        self.flush(&ctx);
        r
    }

    fn and_exists_rec(&self, ctx: &OpCtx, f: u32, g: u32, mut cube: u32) -> Result<u32, BddError> {
        if f == FALSE || g == FALSE {
            return Ok(FALSE);
        }
        if f == TRUE && g == TRUE {
            return Ok(TRUE);
        }
        let top = self.level(f).min(self.level(g));
        while cube != TRUE && self.level(cube) < top {
            let (_, _, hi) = self.arena.read(cube);
            cube = hi;
        }
        if cube == TRUE {
            return self.ite_rec(ctx, f, g, FALSE);
        }
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.and_exists_cache.get(f, g, cube) {
            ctx.and_exists_hits.set(ctx.and_exists_hits.get() + 1);
            return Ok(r);
        }
        ctx.and_exists_misses.set(ctx.and_exists_misses.get() + 1);
        let (f0, f1) = self.cofactor(f, top);
        let (g0, g1) = self.cofactor(g, top);
        let r = if self.level(cube) == top {
            let (_, _, cube_rest) = self.arena.read(cube);
            let lo = self.and_exists_rec(ctx, f0, g0, cube_rest)?;
            if lo == TRUE {
                TRUE
            } else {
                let hi = self.and_exists_rec(ctx, f1, g1, cube_rest)?;
                self.ite_rec(ctx, lo, TRUE, hi)?
            }
        } else {
            let v = self.level2var[top as usize];
            let lo = self.and_exists_rec(ctx, f0, g0, cube)?;
            let hi = self.and_exists_rec(ctx, f1, g1, cube)?;
            self.mk(ctx, v, lo, hi)?
        };
        self.and_exists_cache.put(f, g, cube, r);
        Ok(r)
    }

    /// The positive cube of the given variables.
    pub fn var_cube(&self, vars: impl IntoIterator<Item = VarId>) -> BddResult {
        let mut vs: Vec<VarId> = vars.into_iter().collect();
        vs.sort_by_key(|v| std::cmp::Reverse(self.var2level[v.0 as usize]));
        let ctx = OpCtx::default();
        let mut acc = TRUE;
        let mut result = Ok(());
        for v in vs {
            match self.mk(&ctx, v.0, FALSE, acc) {
                Ok(n) => acc = n,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.flush(&ctx);
        result.map(|()| Bdd(acc))
    }

    /// Disjunction of many operands in a parallel reduction tree: pairs are
    /// combined concurrently on scoped threads until one result remains.
    /// With `threads <= 1` or fewer than two operands this is a plain serial
    /// fold.
    pub fn or_many_parallel(&self, fs: &[Bdd], threads: usize) -> BddResult {
        let mut layer: Vec<Bdd> = fs.to_vec();
        if layer.is_empty() {
            return Ok(self.zero());
        }
        while layer.len() > 1 {
            if threads <= 1 || layer.len() < 4 {
                let mut acc = layer[0];
                for &f in &layer[1..] {
                    acc = self.or(acc, f)?;
                }
                return Ok(acc);
            }
            let pairs: Vec<(Bdd, Option<Bdd>)> =
                layer.chunks(2).map(|c| (c[0], c.get(1).copied())).collect();
            let results = std::thread::scope(|s| {
                let handles: Vec<_> = pairs
                    .iter()
                    .map(|&(a, b)| {
                        s.spawn(move || match b {
                            Some(b) => self.or(a, b),
                            None => Ok(a),
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("or_many_parallel worker panicked"))
                    .collect::<Vec<BddResult>>()
            });
            layer = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        }
        Ok(layer[0])
    }

    /// Number of nodes in the BDD rooted at `f` (terminals included).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            let (var, lo, hi) = self.arena.read(n);
            if var != TERMINAL_VAR {
                stack.push(lo);
                stack.push(hi);
            }
        }
        seen.len()
    }

    /// Evaluates `f` under a total assignment (`assign[var index]`).
    pub fn eval(&self, f: Bdd, assign: &[bool]) -> bool {
        let mut n = f.0;
        loop {
            let (var, lo, hi) = self.arena.read(n);
            if var == TERMINAL_VAR {
                return n == TRUE;
            }
            n = if assign[var as usize] { hi } else { lo };
        }
    }

    /// Stop-the-world mark-and-sweep: keeps exactly the nodes reachable from
    /// `roots`, returns the number reclaimed. `&mut self` guarantees no
    /// worker thread is in flight — scoped workers must have been joined
    /// before the coordinator can call this. Clears the operation caches
    /// (their entries may reference dead nodes).
    pub fn gc(&mut self, roots: &[Bdd]) -> usize {
        let total = self.arena.cursor.load(Ordering::Relaxed) as usize;
        let mut marked = vec![false; total];
        marked[FALSE as usize] = true;
        marked[TRUE as usize] = true;
        let mut stack: Vec<u32> = roots.iter().map(|b| b.0).collect();
        while let Some(n) = stack.pop() {
            if marked[n as usize] {
                continue;
            }
            marked[n as usize] = true;
            let (var, lo, hi) = self.arena.read(n);
            debug_assert_ne!(var, TERMINAL_VAR, "terminals are pre-marked");
            if !marked[lo as usize] {
                stack.push(lo);
            }
            if !marked[hi as usize] {
                stack.push(hi);
            }
        }
        let mut dead: Vec<u32> = Vec::new();
        let mut live = 0usize;
        let mut table_slots = 0usize;
        for shard in self.shards.iter_mut() {
            let t = shard.get_mut().expect("shard lock poisoned");
            let old: Vec<u32> = t.slots.iter().copied().filter(|&s| s != EMPTY).collect();
            t.len = 0;
            for s in &mut t.slots {
                *s = EMPTY;
            }
            for idx in old {
                if marked[idx as usize] {
                    if (t.len + 1) * 4 > t.slots.len() * 3 {
                        t.grow(&self.arena);
                    }
                    let (var, lo, hi) = self.arena.read(idx);
                    let mask = t.slots.len() - 1;
                    let mut i = t.index(hash(var, lo, hi));
                    while t.slots[i] != EMPTY {
                        i = (i + 1) & mask;
                    }
                    t.slots[i] = idx;
                    t.len += 1;
                } else {
                    dead.push(idx);
                }
            }
            live += t.len;
            table_slots += t.slots.len();
        }
        // Dead arena slots are spare capacity for *any* future node: spread
        // them evenly so every shard can recycle without a global free list.
        let freed = dead.len();
        for (k, idx) in dead.into_iter().enumerate() {
            self.shards[k % NUM_SHARDS]
                .get_mut()
                .expect("shard lock poisoned")
                .free
                .push(idx);
        }
        self.live.store(live, Ordering::Relaxed);
        self.table_slots.store(table_slots, Ordering::Relaxed);
        self.ite_cache.clear();
        self.exists_cache.clear();
        self.and_exists_cache.clear();
        self.stats.gc_runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .gc_nodes_freed
            .fetch_add(freed as u64, Ordering::Relaxed);
        freed
    }

    /// Structural invariant check for tests: every unique-table entry is a
    /// well-formed, canonical, findable node and the live count is exact.
    /// Returns a description of the first violation.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counted = 0usize;
        let mut seen = std::collections::HashSet::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let t = shard.lock().expect("shard lock poisoned");
            let mut len = 0usize;
            for &s in &t.slots {
                if s == EMPTY {
                    continue;
                }
                len += 1;
                let (var, lo, hi) = self.arena.read(s);
                if var == TERMINAL_VAR {
                    return Err(format!("terminal node {s} in shard {si}"));
                }
                if lo == hi {
                    return Err(format!("redundant node {s}: lo == hi == {lo}"));
                }
                if self.level(lo) <= self.var2level[var as usize]
                    || self.level(hi) <= self.var2level[var as usize]
                {
                    return Err(format!("node {s} violates the variable order"));
                }
                if (hash(var, lo, hi) as usize) & (NUM_SHARDS - 1) != si {
                    return Err(format!("node {s} hashed into the wrong shard"));
                }
                if !seen.insert((var, lo, hi)) {
                    return Err(format!("duplicate triple ({var}, {lo}, {hi})"));
                }
            }
            if len != t.len {
                return Err(format!("shard {si} len {} != occupied {len}", t.len));
            }
            counted += len;
        }
        if counted != self.num_nodes() {
            return Err(format!(
                "live count {} != table occupancy {counted}",
                self.num_nodes()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_ops_match_truth_tables() {
        let m = SharedBddManager::new(3);
        let a = m.var(VarId(0)).unwrap();
        let b = m.var(VarId(1)).unwrap();
        let c = m.var(VarId(2)).unwrap();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        for bits in 0..8u32 {
            let assign = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expect = (assign[0] && assign[1]) || assign[2];
            assert_eq!(m.eval(f, &assign), expect, "bits {bits:03b}");
        }
        m.check_consistency().unwrap();
    }

    #[test]
    fn shared_exists_and_and_exists_agree() {
        let m = SharedBddManager::new(4);
        let a = m.var(VarId(0)).unwrap();
        let b = m.var(VarId(1)).unwrap();
        let c = m.var(VarId(2)).unwrap();
        let f = m.ite(a, b, c).unwrap();
        let g = m.or(b, c).unwrap();
        let cube = m.var_cube([VarId(1), VarId(2)]).unwrap();
        let fused = m.and_exists(f, g, cube).unwrap();
        let plain = {
            let fg = m.and(f, g).unwrap();
            m.exists(fg, cube).unwrap()
        };
        assert_eq!(fused, plain);
    }

    #[test]
    fn concurrent_construction_is_canonical() {
        let m = SharedBddManager::new(8);
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        // Every thread builds the same parity function in a
                        // different association order.
                        let mut acc = m.zero();
                        for k in 0..8 {
                            let v = m.var(VarId(((k + 2 * t) % 8) as u32)).unwrap();
                            acc = m.ite(acc, m.not(v).unwrap(), v).unwrap();
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "hash-consing must canonicalize across threads");
        }
        m.check_consistency().unwrap();
        assert!(m.stats().shard_locks > 0);
    }

    #[test]
    fn gc_keeps_roots_and_recycles_slots() {
        let mut m = SharedBddManager::new(24);
        let keep = {
            let a = m.var(VarId(0)).unwrap();
            let b = m.var(VarId(3)).unwrap();
            m.and(a, b).unwrap()
        };
        // Plenty of garbage, so after collection every shard's free list has
        // spare arena slots (the dead set is spread round-robin).
        for i in 0..24u32 {
            for j in 0..24u32 {
                if i == j {
                    continue;
                }
                let a = m.var(VarId(i)).unwrap();
                let b = m.var(VarId(j)).unwrap();
                let t = m.ite(a, b, m.one()).unwrap();
                let _ = m.or(t, b).unwrap();
            }
        }
        let before = m.num_nodes();
        let freed = m.gc(&[keep]);
        assert!(freed > 2 * NUM_SHARDS, "not enough garbage to spread");
        assert_eq!(m.num_nodes(), before - freed);
        m.check_consistency().unwrap();
        // The kept function still evaluates correctly...
        let mut assign = [false; 24];
        assign[0] = true;
        assign[3] = true;
        assert!(m.eval(keep, &assign));
        // ...and rebuilding nodes reuses freed arena slots instead of only
        // extending the arena.
        let cursor_before = m.arena.cursor.load(Ordering::Relaxed);
        let mut rebuilt = 0u32;
        for i in 0..24u32 {
            for j in 0..24u32 {
                if i == j {
                    continue;
                }
                let a = m.var(VarId(i)).unwrap();
                let b = m.var(VarId(j)).unwrap();
                let _ = m.and(a, b).unwrap();
                rebuilt += 1;
            }
        }
        let grown = m.arena.cursor.load(Ordering::Relaxed) - cursor_before;
        assert!(
            grown < rebuilt,
            "no freed slot was recycled ({grown} fresh for {rebuilt} nodes)"
        );
        m.check_consistency().unwrap();
    }

    #[test]
    fn poison_fails_allocations() {
        let m = SharedBddManager::new(2);
        let a = m.var(VarId(0)).unwrap();
        m.poison();
        let b = m.var(VarId(1));
        assert_eq!(b, Err(BddError::Cancelled));
        // Cache/terminal paths that allocate nothing still work.
        assert_eq!(m.not(m.zero()).unwrap(), m.one());
        let _ = a;
    }

    #[test]
    fn cancelled_budget_unwinds_mk() {
        let mut m = SharedBddManager::new(2);
        let budget = Budget::unlimited();
        budget.cancel();
        m.set_budget(budget);
        assert_eq!(m.var(VarId(0)), Err(BddError::Cancelled));
    }

    #[test]
    fn or_many_parallel_matches_serial_fold() {
        let m = SharedBddManager::new(10);
        let cubes: Vec<Bdd> = (0..10)
            .map(|k| {
                let a = m.var(VarId(k)).unwrap();
                let b = m.var(VarId((k + 3) % 10)).unwrap();
                m.and(a, b).unwrap()
            })
            .collect();
        let par = m.or_many_parallel(&cubes, 4).unwrap();
        let mut acc = m.zero();
        for &c in &cubes {
            acc = m.or(acc, c).unwrap();
        }
        assert_eq!(par, acc);
    }

    #[test]
    fn with_order_mirrors_levels() {
        // Reversed order: variable 0 at the bottom.
        let m = SharedBddManager::with_order(vec![2, 1, 0]);
        let a = m.var(VarId(0)).unwrap();
        let c = m.var(VarId(2)).unwrap();
        // ite(c, a, 0) must put variable 2 at the top.
        let f = m.and(c, a).unwrap();
        let (top, _, _) = m.node_info(f).unwrap();
        assert_eq!(top, VarId(2));
    }
}
