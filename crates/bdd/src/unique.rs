//! The hash-consing unique table: one open-addressing array for all
//! variables.
//!
//! The seed kernel kept a `HashMap<(u32, u32), u32>` per variable, paying
//! SipHash plus tuple-key hashing on the hottest path in the whole checker
//! (`mk` runs once per node visit of every apply operation). This table
//! replaces all of them with a single power-of-two slot array:
//!
//! * each slot holds a node index (`u32`), or [`EMPTY`];
//! * the key — the `(var, lo, hi)` triple — is *not* stored; it lives in the
//!   node store itself, so a probe compares against `nodes[slot]`;
//! * the probe sequence is linear, starting from a multiplicative
//!   (Fibonacci) hash of the packed triple;
//! * deletion (needed by reordering, which relabels nodes in place) uses
//!   backward-shift compaction, so there are no tombstones and load stays
//!   exact;
//! * after garbage collection the manager rebuilds the table from the live
//!   nodes instead of deleting one entry at a time.
//!
//! The table grows at ¾ load, keeping expected probe lengths short.

use crate::manager::Node;

/// Sentinel for a vacant slot. Node indices are far below `u32::MAX`.
const EMPTY: u32 = u32::MAX;

/// Initial slot count (power of two).
const INITIAL_SLOTS: usize = 1 << 12;

/// Outcome of a probe: the node was found, or it belongs in `slot`.
pub(crate) enum Probe {
    Found(u32),
    Vacant(usize),
}

pub(crate) struct UniqueTable {
    slots: Vec<u32>,
    len: usize,
}

#[inline]
fn hash(var: u32, lo: u32, hi: u32) -> u64 {
    let k = (u64::from(lo) | (u64::from(hi) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    k ^ u64::from(var).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

impl UniqueTable {
    pub(crate) fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; INITIAL_SLOTS],
            len: 0,
        }
    }

    /// Number of stored nodes. This is the sifting size metric, O(1).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Current allocated slot count (for memory accounting).
    #[inline]
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn index(&self, var: u32, lo: u32, hi: u32) -> usize {
        (hash(var, lo, hi) >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    /// Looks up `(var, lo, hi)`, growing first if an insert would pass ¾
    /// load so the returned vacant slot stays valid for [`Self::insert`].
    /// `collisions` counts inspected slots beyond the home slot.
    pub(crate) fn probe(
        &mut self,
        var: u32,
        lo: u32,
        hi: u32,
        nodes: &[Node],
        collisions: &mut u64,
    ) -> Probe {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(nodes);
        }
        let mask = self.slots.len() - 1;
        let mut i = self.index(var, lo, hi);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return Probe::Vacant(i);
            }
            let n = &nodes[s as usize];
            if n.var == var && n.lo == lo && n.hi == hi {
                return Probe::Found(s);
            }
            *collisions += 1;
            i = (i + 1) & mask;
        }
    }

    /// Fills a vacant slot returned by [`Self::probe`]. No table mutation may
    /// happen between the probe and the insert.
    #[inline]
    pub(crate) fn insert(&mut self, slot: usize, idx: u32) {
        debug_assert_eq!(self.slots[slot], EMPTY);
        self.slots[slot] = idx;
        self.len += 1;
    }

    /// Removes `(var, lo, hi)` using backward-shift compaction. Returns
    /// whether the key was present.
    pub(crate) fn remove(&mut self, var: u32, lo: u32, hi: u32, nodes: &[Node]) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = self.index(var, lo, hi);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return false;
            }
            let n = &nodes[s as usize];
            if n.var == var && n.lo == lo && n.hi == hi {
                break;
            }
            i = (i + 1) & mask;
        }
        self.slots[i] = EMPTY;
        self.len -= 1;
        // Backward shift: walk the cluster after `i`; any element whose home
        // slot does not lie in the open interval `(i, j]` (cyclically) would
        // become unreachable through the hole, so move it into the hole and
        // continue from its old position.
        let mut j = (i + 1) & mask;
        while self.slots[j] != EMPTY {
            let s = self.slots[j];
            let n = &nodes[s as usize];
            let home = self.index(n.var, n.lo, n.hi);
            let dist_home = j.wrapping_sub(home) & mask;
            let dist_hole = j.wrapping_sub(i) & mask;
            if dist_home >= dist_hole {
                self.slots[i] = s;
                self.slots[j] = EMPTY;
                i = j;
            }
            j = (j + 1) & mask;
        }
        true
    }

    /// Clears the table and re-inserts the given live nodes, resizing to fit
    /// them at ≤ ½ load. Used after garbage collection, where deleting dead
    /// entries one by one would shift the same clusters repeatedly.
    pub(crate) fn rebuild(&mut self, live: impl Iterator<Item = u32>, nodes: &[Node]) {
        self.len = 0;
        for s in &mut self.slots {
            *s = EMPTY;
        }
        for idx in live {
            let n = &nodes[idx as usize];
            // Probe without the growth check: rebuild() sizes up front.
            let mask = self.slots.len() - 1;
            let mut i = self.index(n.var, n.lo, n.hi);
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx;
            self.len += 1;
            if (self.len + 1) * 2 > self.slots.len() {
                self.grow(nodes);
            }
        }
    }

    fn grow(&mut self, nodes: &[Node]) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; doubled]);
        let mask = self.slots.len() - 1;
        for idx in old {
            if idx == EMPTY {
                continue;
            }
            let n = &nodes[idx as usize];
            let mut i = self.index(n.var, n.lo, n.hi);
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_must_insert(t: &mut UniqueTable, nodes: &[Node], idx: u32) {
        let n = nodes[idx as usize];
        let mut c = 0;
        match t.probe(n.var, n.lo, n.hi, nodes, &mut c) {
            Probe::Vacant(slot) => t.insert(slot, idx),
            Probe::Found(_) => panic!("unexpected duplicate"),
        }
    }

    fn find(t: &mut UniqueTable, nodes: &[Node], var: u32, lo: u32, hi: u32) -> Option<u32> {
        let mut c = 0;
        match t.probe(var, lo, hi, nodes, &mut c) {
            Probe::Found(i) => Some(i),
            Probe::Vacant(_) => None,
        }
    }

    /// Builds a node store with `n` distinct dummy triples.
    fn store(n: u32) -> Vec<Node> {
        (0..n)
            .map(|i| Node {
                var: i % 7,
                lo: i,
                hi: i.wrapping_add(1),
            })
            .collect()
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let nodes = store(10_000);
        let mut t = UniqueTable::new();
        for i in 0..nodes.len() as u32 {
            probe_must_insert(&mut t, &nodes, i);
        }
        assert_eq!(t.len(), nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(find(&mut t, &nodes, n.var, n.lo, n.hi), Some(i as u32));
        }
        // Remove every third entry; the rest must stay findable (this is what
        // exercises backward-shift correctness).
        for (i, n) in nodes.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(n.var, n.lo, n.hi, &nodes));
            }
        }
        for (i, n) in nodes.iter().enumerate() {
            let got = find(&mut t, &nodes, n.var, n.lo, n.hi);
            if i % 3 == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(i as u32));
            }
        }
    }

    #[test]
    fn remove_absent_is_false() {
        let nodes = store(4);
        let mut t = UniqueTable::new();
        probe_must_insert(&mut t, &nodes, 0);
        assert!(!t.remove(99, 99, 99, &nodes));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rebuild_keeps_exactly_the_live_set() {
        let nodes = store(1000);
        let mut t = UniqueTable::new();
        for i in 0..nodes.len() as u32 {
            probe_must_insert(&mut t, &nodes, i);
        }
        t.rebuild((0..nodes.len() as u32).filter(|i| i % 2 == 0), &nodes);
        assert_eq!(t.len(), 500);
        for (i, n) in nodes.iter().enumerate() {
            let got = find(&mut t, &nodes, n.var, n.lo, n.hi);
            assert_eq!(got.is_some(), i % 2 == 0);
        }
    }
}
