//! Property tests: the BDD package against brute-force truth tables.

use proptest::prelude::*;
use rfn_bdd::{Bdd, BddManager, VarId};

/// A small random boolean expression over `nvars` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr(nvars: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0..nvars).prop_map(Expr::Var);
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

impl Expr {
    fn eval(&self, asg: &[bool]) -> bool {
        match self {
            Expr::Var(i) => asg[*i],
            Expr::Not(a) => !a.eval(asg),
            Expr::And(a, b) => a.eval(asg) && b.eval(asg),
            Expr::Or(a, b) => a.eval(asg) || b.eval(asg),
            Expr::Xor(a, b) => a.eval(asg) ^ b.eval(asg),
            Expr::Ite(a, b, c) => {
                if a.eval(asg) {
                    b.eval(asg)
                } else {
                    c.eval(asg)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager, vars: &[VarId]) -> Bdd {
        match self {
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(a) => {
                let fa = a.build(m, vars);
                m.not(fa).unwrap()
            }
            Expr::And(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.and(fa, fb).unwrap()
            }
            Expr::Or(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.or(fa, fb).unwrap()
            }
            Expr::Xor(a, b) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                m.xor(fa, fb).unwrap()
            }
            Expr::Ite(a, b, c) => {
                let fa = a.build(m, vars);
                let fb = b.build(m, vars);
                let fc = c.build(m, vars);
                m.ite(fa, fb, fc).unwrap()
            }
        }
    }
}

const NVARS: usize = 5;

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|bits| (0..NVARS).map(|i| bits & (1 << i) != 0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// BDD construction agrees with direct expression evaluation.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr(NVARS)) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        for asg in assignments() {
            prop_assert_eq!(m.eval(f, &asg), e.eval(&asg));
        }
    }

    /// Semantic equality implies handle equality (canonicity).
    #[test]
    fn canonical_forms(e in arb_expr(NVARS)) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        // Rebuild through double negation; must be the identical node.
        let nf = m.not(f).unwrap();
        let nnf = m.not(nf).unwrap();
        prop_assert_eq!(f, nnf);
        // f xor f == 0, f xnor f == 1.
        prop_assert_eq!(m.xor(f, f).unwrap(), m.zero());
        prop_assert_eq!(m.xnor(f, f).unwrap(), m.one());
    }

    /// ∃x.f computed by the package equals f[x:=0] ∨ f[x:=1].
    #[test]
    fn exists_matches_shannon(e in arb_expr(NVARS), vi in 0..NVARS) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        let quant = m.exists_one(f, vars[vi]).unwrap();
        let f0 = m.restrict(f, &[(vars[vi], false)]).unwrap();
        let f1 = m.restrict(f, &[(vars[vi], true)]).unwrap();
        let shannon = m.or(f0, f1).unwrap();
        prop_assert_eq!(quant, shannon);
    }

    /// and_exists(f, g, cube) == exists(and(f, g), cube) for random cubes.
    #[test]
    fn and_exists_is_fused_relational_product(
        e1 in arb_expr(NVARS),
        e2 in arb_expr(NVARS),
        mask in 0u32..(1 << NVARS),
    ) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e1.build(&mut m, &vars);
        let g = e2.build(&mut m, &vars);
        let qvars: Vec<_> = (0..NVARS).filter(|i| mask & (1 << i) != 0).map(|i| vars[i]).collect();
        let cube = m.var_cube(qvars);
        let fused = m.and_exists(f, g, cube).unwrap();
        let conj = m.and(f, g).unwrap();
        let two_step = m.exists(conj, cube).unwrap();
        prop_assert_eq!(fused, two_step);
    }

    /// Sifting preserves semantics and the function survives gc + reorder.
    #[test]
    fn reordering_preserves_semantics(e in arb_expr(NVARS)) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        let before: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        m.sift_with_roots(&[f], 2.0);
        let after: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        prop_assert_eq!(before, after);
    }

    /// set_order to an arbitrary permutation preserves semantics.
    #[test]
    fn arbitrary_order_preserves_semantics(e in arb_expr(NVARS), seed in any::<u64>()) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        let before: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        // Deterministic pseudo-random permutation from the seed.
        let mut perm: Vec<VarId> = vars.clone();
        let mut s = seed | 1;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        m.set_order(&perm);
        prop_assert_eq!(m.current_order(), perm);
        let after: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        prop_assert_eq!(before, after);
    }

    /// The shortest cube is an implicant of f and is minimal among all BDD
    /// path cubes (the semantics of CUDD's Cudd_ShortestPath, which the
    /// paper's prototype used for its "fattest cube" selection).
    #[test]
    fn shortest_cube_minimal_path_implicant(e in arb_expr(NVARS)) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        match m.shortest_cube(f) {
            None => {
                prop_assert_eq!(f, m.zero());
            }
            Some(cube) => {
                // Implicant: every completion satisfies f.
                for asg in assignments() {
                    let consistent = cube.iter().all(|&(v, val)| asg[v.index()] == val);
                    if consistent {
                        prop_assert!(m.eval(f, &asg));
                    }
                }
                // Path minimality: no enumerated path cube is shorter.
                let min_path = m.cubes(f, usize::MAX).into_iter()
                    .map(|c| c.len())
                    .min()
                    .expect("f is satisfiable");
                prop_assert_eq!(cube.len(), min_path);
            }
        }
    }

    /// Losing operation-cache entries can never change results: the same
    /// expression built under the default cache, a tiny (maximally
    /// colliding) 64-slot cache and a fully disabled cache produces
    /// identical truth tables.
    #[test]
    fn lossy_caches_do_not_change_results(e in arb_expr(NVARS)) {
        let mut tables: Vec<Vec<bool>> = Vec::new();
        for capacity in [usize::MAX, 64, 0] {
            let mut m = BddManager::new();
            if capacity != usize::MAX {
                m.set_cache_capacity(capacity);
            }
            let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
            let f = e.build(&mut m, &vars);
            tables.push(assignments().map(|a| m.eval(f, &a)).collect());
        }
        prop_assert_eq!(&tables[0], &tables[1]);
        prop_assert_eq!(&tables[0], &tables[2]);
    }

    /// Quantification (plain and fused) under a tiny lossy cache agrees with
    /// the memo-free evaluation of the same operations.
    #[test]
    fn lossy_caches_do_not_change_quantification(
        e1 in arb_expr(NVARS),
        e2 in arb_expr(NVARS),
        mask in 0u32..(1 << NVARS),
    ) {
        let mut tables: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        for capacity in [64usize, 0] {
            let mut m = BddManager::new();
            m.set_cache_capacity(capacity);
            let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
            let f = e1.build(&mut m, &vars);
            let g = e2.build(&mut m, &vars);
            let qvars: Vec<_> = (0..NVARS)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| vars[i])
                .collect();
            let cube = m.var_cube(qvars);
            let ex = m.exists(f, cube).unwrap();
            let andex = m.and_exists(f, g, cube).unwrap();
            tables.push((
                assignments().map(|a| m.eval(ex, &a)).collect(),
                assignments().map(|a| m.eval(andex, &a)).collect(),
            ));
        }
        prop_assert_eq!(&tables[0].0, &tables[1].0);
        prop_assert_eq!(&tables[0].1, &tables[1].1);
    }

    /// Coudert–Madre laws: both care-set operators agree with `f` on the
    /// care set (`f∧c == op(f,c)∧c`), are the identity on `c = 1`, and the
    /// sibling-substitution restrict never grows the support beyond `f`'s.
    #[test]
    fn constrain_and_restrict_laws(e1 in arb_expr(NVARS), e2 in arb_expr(NVARS)) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e1.build(&mut m, &vars);
        let c = e2.build(&mut m, &vars);
        let fc = m.and(f, c).unwrap();

        let con = m.constrain(f, c).unwrap();
        let con_c = m.and(con, c).unwrap();
        prop_assert_eq!(con_c, fc, "f∧c != constrain(f,c)∧c");

        let res = m.gc_restrict(f, c).unwrap();
        let res_c = m.and(res, c).unwrap();
        prop_assert_eq!(res_c, fc, "f∧c != gc_restrict(f,c)∧c");

        // Support containment: restrict never mentions variables f doesn't.
        let fsup = m.support(f);
        for v in m.support(res) {
            prop_assert!(fsup.contains(&v), "gc_restrict gained variable {}", v);
        }

        // Identity on the trivial care set.
        let one = m.one();
        prop_assert_eq!(m.constrain(f, one).unwrap(), f);
        prop_assert_eq!(m.gc_restrict(f, one).unwrap(), f);
    }

    /// The care-set operators survive a tiny lossy cache unchanged: results
    /// are canonical nodes, so cache evictions can only cost time.
    #[test]
    fn care_ops_survive_lossy_caches(e1 in arb_expr(NVARS), e2 in arb_expr(NVARS)) {
        let mut tables: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        for capacity in [64usize, 0] {
            let mut m = BddManager::new();
            m.set_cache_capacity(capacity);
            let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
            let f = e1.build(&mut m, &vars);
            let c = e2.build(&mut m, &vars);
            let con = m.constrain(f, c).unwrap();
            let res = m.gc_restrict(f, c).unwrap();
            tables.push((
                assignments().map(|a| m.eval(con, &a)).collect(),
                assignments().map(|a| m.eval(res, &a)).collect(),
            ));
        }
        prop_assert_eq!(&tables[0].0, &tables[1].0);
        prop_assert_eq!(&tables[0].1, &tables[1].1);
    }

    /// sat_count equals brute-force model counting.
    #[test]
    fn sat_count_matches_enumeration(e in arb_expr(NVARS)) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        let expected = assignments().filter(|a| m.eval(f, a)).count() as f64;
        prop_assert_eq!(m.sat_count(f, NVARS), expected);
    }

    /// Every cube from `cubes` satisfies f, and together they cover f exactly.
    #[test]
    fn cube_enumeration_partitions_f(e in arb_expr(NVARS)) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..NVARS).map(|_| m.new_var()).collect();
        let f = e.build(&mut m, &vars);
        let cubes = m.cubes(f, usize::MAX);
        for asg in assignments() {
            let covered = cubes.iter().any(|c| c.iter().all(|&(v, val)| asg[v.index()] == val));
            prop_assert_eq!(covered, m.eval(f, &asg));
        }
    }
}
