//! Per-phase time aggregation over an event stream.

use std::collections::HashMap;

use crate::event::{Event, EventKind};

/// One aggregated row: all exits of spans with the same name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakdownRow {
    /// Span name.
    pub name: String,
    /// Number of span exits observed.
    pub count: u64,
    /// Total (inclusive) wall-clock microseconds across those spans.
    pub total_us: u64,
}

/// A per-phase time breakdown computed from span-exit events — the data
/// behind the `--trace-out` breakdown table printed by the CLI and the bench
/// binaries.
#[derive(Clone, Debug, Default)]
pub struct TimeBreakdown {
    rows: Vec<BreakdownRow>,
}

impl TimeBreakdown {
    /// Aggregates the exit events of `events` by span name. Rows are sorted
    /// by total time, largest first (ties broken by name, so the output is
    /// deterministic).
    pub fn from_events(events: &[Event]) -> Self {
        let mut acc: HashMap<&str, (u64, u64)> = HashMap::new();
        for event in events {
            if let EventKind::Exit {
                name, elapsed_us, ..
            } = &event.kind
            {
                let entry = acc.entry(name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += elapsed_us;
            }
        }
        let mut rows: Vec<BreakdownRow> = acc
            .into_iter()
            .map(|(name, (count, total_us))| BreakdownRow {
                name: name.to_owned(),
                count,
                total_us,
            })
            .collect();
        rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        TimeBreakdown { rows }
    }

    /// The aggregated rows, largest total first.
    pub fn rows(&self) -> &[BreakdownRow] {
        &self.rows
    }

    /// Renders an aligned text table (phase, calls, total time, share).
    /// Returns an empty string when no spans were observed.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let grand: u64 = self
            .rows
            .iter()
            .filter(|r| is_top_level(&r.name))
            .map(|r| r.total_us)
            .sum();
        let grand = if grand == 0 {
            self.rows.iter().map(|r| r.total_us).max().unwrap_or(1)
        } else {
            grand
        };
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>6}  {:>10}  {:>6}\n",
            "phase", "calls", "total", "share"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>6}  {:>9.3}s  {:>5.1}%\n",
                r.name,
                r.count,
                r.total_us as f64 / 1e6,
                100.0 * r.total_us as f64 / grand as f64,
            ));
        }
        out
    }
}

/// Top-level spans (whole verification jobs) define 100% for the share
/// column; nested phases are fractions of them.
fn is_top_level(name: &str) -> bool {
    matches!(name, "rfn" | "plain_mc" | "coverage")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn exit(name: &str, us: u64) -> Event {
        Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Exit {
                id: 1,
                name: name.to_owned(),
                elapsed_us: us,
                fields: Vec::new(),
            },
        }
    }

    #[test]
    fn aggregates_and_sorts() {
        let events = vec![exit("reach", 10), exit("refine", 5), exit("reach", 20)];
        let b = TimeBreakdown::from_events(&events);
        assert_eq!(b.rows().len(), 2);
        assert_eq!(b.rows()[0].name, "reach");
        assert_eq!(b.rows()[0].count, 2);
        assert_eq!(b.rows()[0].total_us, 30);
        assert_eq!(b.rows()[1].name, "refine");
    }

    #[test]
    fn render_is_nonempty_and_mentions_phases() {
        let events = vec![exit("rfn", 100), exit("reach", 60)];
        let text = TimeBreakdown::from_events(&events).render();
        assert!(text.contains("reach"));
        assert!(text.contains("60.0%"));
    }

    #[test]
    fn empty_events_render_empty() {
        assert!(TimeBreakdown::from_events(&[]).render().is_empty());
    }
}
