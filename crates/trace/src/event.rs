//! The structured event model and its JSONL serialization.

use std::fmt::Write as _;

/// A field value attached to an event.
///
/// The variants cover everything the verification engines report: integer
/// counters, durations (as integer microseconds), rates, flags and names.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point (rates, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (names, verdicts, reasons).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Named fields carried by an event, in emission order.
pub type Fields = Vec<(String, Value)>;

/// What kind of event happened.
///
/// Span ids are unique within one [`TraceCtx`](crate::TraceCtx); id `0` means
/// "no span" (a root span's `parent`, or a point/counter emitted outside any
/// span).
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A span was entered.
    Enter {
        /// Id of the new span (> 0).
        id: u64,
        /// Id of the enclosing span, or 0 for a root span.
        parent: u64,
        /// Span name (e.g. `iteration`, `reach`).
        name: String,
        /// Fields known at entry (e.g. the iteration number).
        fields: Fields,
    },
    /// A span was exited.
    Exit {
        /// Id of the span being exited.
        id: u64,
        /// Span name (repeated so a single line is self-describing).
        name: String,
        /// Wall-clock time spent inside the span, in microseconds.
        elapsed_us: u64,
        /// Fields recorded during the span (statistics, outcomes).
        fields: Fields,
    },
    /// An instantaneous event inside the current span.
    Point {
        /// Id of the enclosing span, or 0.
        span: u64,
        /// Event name (e.g. `atpg.justify`).
        name: String,
        /// Event payload.
        fields: Fields,
    },
    /// A monotonic counter observation inside the current span.
    Counter {
        /// Id of the enclosing span, or 0.
        span: u64,
        /// Counter name (e.g. `bdd.peak_nodes`).
        name: String,
        /// Observed value.
        value: u64,
    },
}

/// One structured event: a sequence number, a timestamp relative to the
/// context's creation, and the payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Per-context sequence number, starting at 0.
    pub seq: u64,
    /// Microseconds since the owning [`TraceCtx`](crate::TraceCtx) was
    /// created.
    pub t_us: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// The event's name (span name for enter/exit).
    pub fn name(&self) -> &str {
        match &self.kind {
            EventKind::Enter { name, .. }
            | EventKind::Exit { name, .. }
            | EventKind::Point { name, .. }
            | EventKind::Counter { name, .. } => name,
        }
    }

    /// Serializes the event as one JSONL line (no trailing newline).
    ///
    /// The schema is documented at the [crate root](crate#jsonl-schema) and
    /// pinned by a golden test.
    pub fn to_jsonl(&self) -> String {
        self.render(false)
    }

    /// Like [`to_jsonl`](Self::to_jsonl) but with both timestamps (`t_us`,
    /// `elapsed_us`) forced to 0, so streams from different runs can be
    /// compared byte-for-byte.
    pub fn to_jsonl_normalized(&self) -> String {
        self.render(true)
    }

    fn render(&self, strip_time: bool) -> String {
        let mut s = String::with_capacity(96);
        let t = if strip_time { 0 } else { self.t_us };
        let _ = write!(s, "{{\"seq\":{},\"t_us\":{}", self.seq, t);
        match &self.kind {
            EventKind::Enter {
                id,
                parent,
                name,
                fields,
            } => {
                let _ = write!(s, ",\"ev\":\"enter\",\"id\":{id},\"parent\":{parent}");
                push_name_fields(&mut s, name, fields);
            }
            EventKind::Exit {
                id,
                name,
                elapsed_us,
                fields,
            } => {
                let e = if strip_time { 0 } else { *elapsed_us };
                let _ = write!(s, ",\"ev\":\"exit\",\"id\":{id},\"elapsed_us\":{e}");
                push_name_fields(&mut s, name, fields);
            }
            EventKind::Point { span, name, fields } => {
                let _ = write!(s, ",\"ev\":\"point\",\"span\":{span}");
                push_name_fields(&mut s, name, fields);
            }
            EventKind::Counter { span, name, value } => {
                let _ = write!(s, ",\"ev\":\"counter\",\"span\":{span}");
                s.push_str(",\"name\":");
                push_json_str(&mut s, name);
                let _ = write!(s, ",\"value\":{value}");
            }
        }
        s.push('}');
        s
    }
}

fn push_name_fields(s: &mut String, name: &str, fields: &Fields) {
    s.push_str(",\"name\":");
    push_json_str(s, name);
    s.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_json_str(s, k);
        s.push(':');
        push_json_value(s, v);
    }
    s.push('}');
}

fn push_json_value(s: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(s, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(s, "{n}");
        }
        Value::F64(x) => {
            // JSON has no NaN/Inf; clamp to null like serde_json does.
            if x.is_finite() {
                let _ = write!(s, "{x}");
            } else {
                s.push_str("null");
            }
        }
        Value::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
        Value::Str(t) => push_json_str(s, t),
    }
}

/// Escapes a string per RFC 8259 (control characters, quotes, backslash).
fn push_json_str(s: &mut String, t: &str) {
    s.push('"');
    for c in t.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Serializes a slice of events as a JSONL document (one event per line,
/// trailing newline). With `normalized`, timestamps are zeroed — the form
/// used by the determinism and golden tests.
pub fn to_jsonl(events: &[Event], normalized: bool) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&if normalized {
            e.to_jsonl_normalized()
        } else {
            e.to_jsonl()
        });
        out.push('\n');
    }
    out
}

/// Merges per-job event buffers into one stream.
///
/// Sequence numbers are reassigned densely in merge order and each buffer's
/// span ids are offset past the previous buffers' ids, so the merged stream
/// is indistinguishable from a single context's output. Buffers are
/// concatenated in the given (job) order with their internal order intact —
/// this is what makes a parallel portfolio's event file deterministic at any
/// thread count. Timestamps are left untouched (each buffer keeps its own
/// job-relative clock), so only the normalized form is comparable across
/// runs.
pub fn merge_streams(buffers: Vec<Vec<Event>>) -> Vec<Event> {
    let mut out = Vec::new();
    let mut seq = 0u64;
    let mut span_offset = 0u64;
    for buf in buffers {
        let mut max_id = span_offset;
        for mut e in buf {
            e.seq = seq;
            seq += 1;
            match &mut e.kind {
                EventKind::Enter { id, parent, .. } => {
                    *id += span_offset;
                    if *parent != 0 {
                        *parent += span_offset;
                    }
                    max_id = max_id.max(*id);
                }
                EventKind::Exit { id, .. } => {
                    *id += span_offset;
                    max_id = max_id.max(*id);
                }
                EventKind::Point { span, .. } | EventKind::Counter { span, .. } => {
                    if *span != 0 {
                        *span += span_offset;
                    }
                }
            }
            out.push(e);
        }
        span_offset = max_id;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_renumbers_seq_and_span_ids() {
        let buf = |id: u64| {
            vec![
                Event {
                    seq: 0,
                    t_us: 0,
                    kind: EventKind::Enter {
                        id,
                        parent: 0,
                        name: "rfn".into(),
                        fields: vec![],
                    },
                },
                Event {
                    seq: 1,
                    t_us: 0,
                    kind: EventKind::Counter {
                        span: id,
                        name: "c".into(),
                        value: 9,
                    },
                },
                Event {
                    seq: 2,
                    t_us: 0,
                    kind: EventKind::Exit {
                        id,
                        name: "rfn".into(),
                        elapsed_us: 0,
                        fields: vec![],
                    },
                },
            ]
        };
        let merged = merge_streams(vec![buf(1), buf(1)]);
        assert_eq!(merged.len(), 6);
        for (i, e) in merged.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        let EventKind::Enter { id, .. } = &merged[3].kind else {
            panic!("expected enter");
        };
        assert_eq!(*id, 2, "second job's span id offset past the first's");
        let EventKind::Counter { span, .. } = &merged[4].kind else {
            panic!("expected counter");
        };
        assert_eq!(*span, 2);
    }

    #[test]
    fn escapes_json_strings() {
        let e = Event {
            seq: 0,
            t_us: 7,
            kind: EventKind::Point {
                span: 0,
                name: "x\"y\\z\n".to_owned(),
                fields: vec![("k".to_owned(), Value::Str("\u{1}".to_owned()))],
            },
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"seq\":0,\"t_us\":7,\"ev\":\"point\",\"span\":0,\
             \"name\":\"x\\\"y\\\\z\\n\",\"fields\":{\"k\":\"\\u0001\"}}"
        );
    }

    #[test]
    fn normalization_zeroes_timestamps() {
        let e = Event {
            seq: 3,
            t_us: 1234,
            kind: EventKind::Exit {
                id: 1,
                name: "reach".to_owned(),
                elapsed_us: 999,
                fields: vec![("steps".to_owned(), Value::U64(4))],
            },
        };
        assert!(e.to_jsonl().contains("\"t_us\":1234"));
        assert!(e.to_jsonl().contains("\"elapsed_us\":999"));
        let n = e.to_jsonl_normalized();
        assert!(n.contains("\"t_us\":0"));
        assert!(n.contains("\"elapsed_us\":0"));
        assert!(n.contains("\"steps\":4"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Point {
                span: 0,
                name: "p".to_owned(),
                fields: vec![("r".to_owned(), Value::F64(f64::NAN))],
            },
        };
        assert!(e.to_jsonl().contains("\"r\":null"));
    }
}
