//! Structured observability for the RFN verification tool: hierarchical
//! spans, monotonic counters and pluggable event sinks.
//!
//! The RFN loop alternates five engines (abstraction, BDD reachability,
//! hybrid BDD–ATPG trace reconstruction, sequential-ATPG concretization,
//! 3-valued-simulation refinement); knowing *where the time goes* across
//! those engines is exactly what the paper's Tables 1–2 report. This crate
//! is the zero-dependency layer the engines emit into:
//!
//! * [`TraceCtx`] — a cheap, clonable handle threaded through every engine.
//!   A disabled context (the default) reduces each emission to one `Option`
//!   check.
//! * [`Span`] — an RAII guard for a phase (`iteration`, `reach`, `hybrid`,
//!   `concretize`, `refine`, …); dropping it emits the exit event with the
//!   elapsed wall-clock time and any recorded fields.
//! * [`TraceSink`] — where events go: [`NullSink`], human-readable
//!   [`StderrSink`], buffering [`MemorySink`], streaming [`JsonlSink`], or a
//!   [`FanoutSink`] combination.
//! * [`TimeBreakdown`] — aggregates an event stream into the per-phase time
//!   table the CLI and bench binaries print.
//!
//! # Span hierarchy
//!
//! The engines emit the following hierarchy (see `DESIGN.md` §8 for where
//! each Table 1 column is sourced):
//!
//! ```text
//! rfn                      one property verification job
//! └─ iteration             one abstraction-refinement round
//!    ├─ reach              BDD forward fixpoint (Step 2)
//!    ├─ hybrid             hybrid BDD–ATPG trace reconstruction (Step 2)
//!    ├─ concretize         staged search on the original design (Step 3)
//!    │  └─ sim.random      guided random simulation (the cheap first stage)
//!    └─ refine             crucial-register identification (Step 4)
//! coverage                 one coverage-analysis job (same children per iteration)
//! plain_mc                 the Table 1 baseline (reach only)
//! ```
//!
//! The `sim.random` exit carries the random concretization engine's effort
//! counters (`batches`, `patterns`, `hits`, `gate_evals`) and its
//! `outcome` (`"hit"` / `"miss"`); the enclosing `concretize` exit adds the
//! attempt's `random_patterns`, `random_hits`, `atpg_backtracks`,
//! `atpg_decisions`, and — when falsified — the winning `engine`
//! (`"random"` / `"atpg"`). The `sim.conflicts` point event reports the
//! packed kernel's work counters (`gate_evals`, `gates_skipped`) alongside
//! the conflict counts.
//!
//! # JSONL schema
//!
//! [`JsonlSink`] (and [`Event::to_jsonl`]) serialize one event per line.
//! Every line carries `seq` (dense per-context sequence number), `t_us`
//! (microseconds since the context was created) and `ev` (the kind):
//!
//! ```text
//! {"seq":0,"t_us":12,"ev":"enter","id":1,"parent":0,"name":"rfn","fields":{"property":"w_low"}}
//! {"seq":1,"t_us":34,"ev":"counter","span":1,"name":"coi.registers","value":21}
//! {"seq":2,"t_us":56,"ev":"point","span":1,"name":"atpg.justify","fields":{"outcome":"sat"}}
//! {"seq":3,"t_us":78,"ev":"exit","id":1,"elapsed_us":66,"name":"rfn","fields":{"verdict":"proved"}}
//! ```
//!
//! * `enter` — `id` is the new span (ids start at 1), `parent` is the
//!   enclosing span or `0` for a root span.
//! * `exit` — `elapsed_us` is the span's inclusive wall-clock time; `fields`
//!   holds the statistics recorded during the span.
//! * `point` / `counter` — instantaneous observations attributed to the
//!   innermost open span (`span`, `0` if none).
//!
//! Field values are JSON numbers, booleans or strings. The schema is pinned
//! by a golden test in `rfn-core`; timestamps (`t_us`, `elapsed_us`) are the
//! only non-deterministic parts, and [`Event::to_jsonl_normalized`] zeroes
//! them so streams can be compared across runs and thread counts.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rfn_trace::{MemorySink, TimeBreakdown, TraceCtx};
//!
//! let sink = Arc::new(MemorySink::new());
//! let ctx = TraceCtx::new(sink.clone());
//! {
//!     let mut span = ctx.span("reach");
//!     ctx.counter("bdd.peak_nodes", 1234);
//!     span.record("steps", 17u64);
//! }
//! let events = sink.take();
//! assert_eq!(events.len(), 3); // enter, counter, exit
//! assert_eq!(TimeBreakdown::from_events(&events).rows()[0].name, "reach");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod breakdown;
mod ctx;
mod event;
mod sink;

pub use breakdown::{BreakdownRow, TimeBreakdown};
pub use ctx::{Span, TraceCtx};
pub use event::{merge_streams, to_jsonl, Event, EventKind, Fields, Value};
pub use sink::{FanoutSink, JsonlSink, MemorySink, NullSink, StderrSink, TraceSink};
