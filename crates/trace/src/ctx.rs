//! The trace context threaded through the verification engines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventKind, Fields, Value};
use crate::sink::TraceSink;

struct Inner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    seq: AtomicU64,
    next_span: AtomicU64,
    /// Stack of open span ids; the top is the parent of new events. The
    /// engines use one context per verification job (single-threaded), so
    /// this mutex is uncontended.
    stack: Mutex<Vec<u64>>,
}

/// A handle for emitting structured events, cheap to clone and pass around.
///
/// A disabled context ([`TraceCtx::disabled`], also the `Default`) makes
/// every emission a no-op behind a single `Option` check — engines can thread
/// a `&TraceCtx` unconditionally without measurable cost when tracing is off.
///
/// Spans nest: [`TraceCtx::span`] returns a guard; events emitted while the
/// guard lives are attributed to that span, and dropping the guard emits the
/// exit event with the elapsed wall-clock time.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCtx")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl TraceCtx {
    /// A context that drops every event without constructing it.
    pub fn disabled() -> Self {
        TraceCtx { inner: None }
    }

    /// A context emitting into `sink`. Sequence numbers and span ids start
    /// at 0 and 1 respectively; timestamps are relative to this call.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceCtx {
            inner: Some(Arc::new(Inner {
                sink,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let event = Event {
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                t_us: inner.epoch.elapsed().as_micros() as u64,
                kind,
            };
            inner.sink.emit(&event);
        }
    }

    fn current_span(&self) -> u64 {
        match &self.inner {
            Some(inner) => *inner
                .stack
                .lock()
                .expect("trace stack poisoned")
                .last()
                .unwrap_or(&0),
            None => 0,
        }
    }

    /// Opens a span. Drop the returned guard to emit the exit event.
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, Vec::new())
    }

    /// Opens a span with entry fields (e.g. the iteration number).
    pub fn span_with(&self, name: &str, fields: Fields) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                ctx: TraceCtx::disabled(),
                id: 0,
                name: String::new(),
                start: Instant::now(),
                exit_fields: Vec::new(),
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = self.current_span();
        self.emit(EventKind::Enter {
            id,
            parent,
            name: name.to_owned(),
            fields,
        });
        inner.stack.lock().expect("trace stack poisoned").push(id);
        Span {
            ctx: self.clone(),
            id,
            name: name.to_owned(),
            start: Instant::now(),
            exit_fields: Vec::new(),
        }
    }

    /// Emits an instantaneous event in the current span.
    pub fn point(&self, name: &str, fields: Fields) {
        if self.inner.is_some() {
            let span = self.current_span();
            self.emit(EventKind::Point {
                span,
                name: name.to_owned(),
                fields,
            });
        }
    }

    /// Emits a counter observation in the current span.
    pub fn counter(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            let span = self.current_span();
            self.emit(EventKind::Counter {
                span,
                name: name.to_owned(),
                value,
            });
        }
    }

    /// Re-emits a buffered event stream into this context.
    ///
    /// The events (typically collected by a [`MemorySink`]-backed child
    /// context on a worker thread) are renumbered into this context's
    /// sequence, their span ids are relocated into a freshly allocated id
    /// block, and their root spans are re-parented under the span currently
    /// open here. Timestamps are re-stamped at absorption time; the
    /// `elapsed_us` recorded on exit events is preserved. A portfolio race
    /// absorbs each lane's buffer in a fixed lane order so the merged
    /// stream stays deterministic in structure.
    ///
    /// [`MemorySink`]: crate::MemorySink
    pub fn absorb(&self, events: Vec<Event>) {
        let Some(inner) = &self.inner else {
            return;
        };
        if events.is_empty() {
            return;
        }
        let parent_span = self.current_span();
        let mut max_id = 0u64;
        for e in &events {
            match &e.kind {
                EventKind::Enter { id, .. } | EventKind::Exit { id, .. } => {
                    max_id = max_id.max(*id);
                }
                _ => {}
            }
        }
        // Claim a contiguous id block; absorbed id `i` maps to `base + i`.
        let base = inner.next_span.fetch_add(max_id, Ordering::Relaxed) - 1;
        for mut e in events {
            match &mut e.kind {
                EventKind::Enter { id, parent, .. } => {
                    *id += base;
                    *parent = if *parent == 0 {
                        parent_span
                    } else {
                        *parent + base
                    };
                }
                EventKind::Exit { id, .. } => *id += base,
                EventKind::Point { span, .. } | EventKind::Counter { span, .. } => {
                    *span = if *span == 0 {
                        parent_span
                    } else {
                        *span + base
                    };
                }
            }
            self.emit(e.kind);
        }
    }
}

/// An open span; dropping it emits the exit event with elapsed time and any
/// fields recorded along the way.
#[derive(Debug)]
pub struct Span {
    ctx: TraceCtx,
    id: u64,
    name: String,
    start: Instant,
    exit_fields: Fields,
}

impl Span {
    /// The span's id (0 when tracing is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records a field to be emitted with the exit event.
    pub fn record(&mut self, key: &str, value: impl Into<Value>) {
        if self.ctx.is_enabled() {
            self.exit_fields.push((key.to_owned(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = &self.ctx.inner else {
            return;
        };
        // Pop this span (and anything leaked above it) off the stack.
        {
            let mut stack = inner.stack.lock().expect("trace stack poisoned");
            if let Some(pos) = stack.iter().rposition(|&s| s == self.id) {
                stack.truncate(pos);
            }
        }
        let elapsed_us = self.start.elapsed().as_micros() as u64;
        self.ctx.emit(EventKind::Exit {
            id: self.id,
            name: std::mem::take(&mut self.name),
            elapsed_us,
            fields: std::mem::take(&mut self.exit_fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        let mut span = ctx.span("x");
        span.record("k", 1u64);
        ctx.counter("c", 2);
        ctx.point("p", vec![]);
        drop(span);
        // Nothing to assert beyond "does not panic / allocate events".
    }

    #[test]
    fn absorb_relocates_and_reparents_buffered_events() {
        // A child context records a little span tree on its own sink.
        let child_sink = Arc::new(MemorySink::new());
        let child = TraceCtx::new(child_sink.clone());
        {
            let mut lane = child.span("lane");
            lane.record("verdict", "proved");
            child.point("tick", vec![]);
        }
        let buffered = child_sink.take();

        // The parent absorbs it inside an open span.
        let sink = Arc::new(MemorySink::new());
        let ctx = TraceCtx::new(sink.clone());
        let outer = ctx.span("race");
        let outer_id = outer.id();
        ctx.absorb(buffered);
        drop(outer);
        let events = sink.take();
        assert_eq!(events.len(), 5); // race enter, lane enter, tick, lane exit, race exit
        let EventKind::Enter {
            id: lane_id,
            parent,
            ..
        } = &events[1].kind
        else {
            panic!("expected lane enter, got {:?}", events[1]);
        };
        assert_eq!(*parent, outer_id, "absorbed root re-parents under race");
        assert_ne!(*lane_id, outer_id, "absorbed ids relocate out of the way");
        let EventKind::Point { span, .. } = &events[2].kind else {
            panic!("expected point");
        };
        assert_eq!(span, lane_id);
        let EventKind::Exit { id, .. } = &events[3].kind else {
            panic!("expected exit");
        };
        assert_eq!(id, lane_id);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "absorbed events renumber densely");
        }
    }

    #[test]
    fn spans_nest_and_attribute_children() {
        let sink = Arc::new(MemorySink::new());
        let ctx = TraceCtx::new(sink.clone());
        {
            let _outer = ctx.span("outer");
            ctx.counter("c1", 1);
            {
                let mut inner = ctx.span("inner");
                inner.record("steps", 4u64);
                ctx.counter("c2", 2);
            }
            ctx.counter("c3", 3);
        }
        let events = sink.take();
        assert_eq!(events.len(), 7);
        // outer enter
        let EventKind::Enter {
            id: outer_id,
            parent,
            ..
        } = &events[0].kind
        else {
            panic!("expected enter, got {:?}", events[0]);
        };
        assert_eq!(*parent, 0);
        // c1 belongs to outer
        let EventKind::Counter { span, .. } = &events[1].kind else {
            panic!("expected counter");
        };
        assert_eq!(span, outer_id);
        // inner enter: parent is outer
        let EventKind::Enter {
            id: inner_id,
            parent,
            ..
        } = &events[2].kind
        else {
            panic!("expected enter");
        };
        assert_eq!(parent, outer_id);
        // c2 belongs to inner
        let EventKind::Counter { span, .. } = &events[3].kind else {
            panic!("expected counter");
        };
        assert_eq!(span, inner_id);
        // inner exit carries the recorded field
        let EventKind::Exit { id, fields, .. } = &events[4].kind else {
            panic!("expected exit");
        };
        assert_eq!(id, inner_id);
        assert_eq!(fields[0], ("steps".to_owned(), Value::U64(4)));
        // c3 back on outer
        let EventKind::Counter { span, .. } = &events[5].kind else {
            panic!("expected counter");
        };
        assert_eq!(span, outer_id);
        // outer exit last
        assert!(matches!(events[6].kind, EventKind::Exit { .. }));
        // Sequence numbers are dense.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }
}
