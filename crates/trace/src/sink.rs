//! Pluggable event sinks.

use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind, Fields, Value};

/// Where structured events go.
///
/// Implementations must be cheap and non-blocking where possible: the
/// engines emit events from hot verification loops. A sink is shared across
/// the threads of a parallel portfolio, so it must be `Send + Sync`.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
}

/// A sink that drops every event. A [`TraceCtx`](crate::TraceCtx) built on
/// the null sink still pays for event construction — prefer
/// [`TraceCtx::disabled`](crate::TraceCtx::disabled), which skips
/// construction entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers every event in memory, preserving emission order.
///
/// This is the sink behind the golden/determinism tests and behind the
/// portfolio runners: each parallel job buffers into its own memory sink and
/// the session flushes the buffers in job order, so the merged stream is
/// identical at any thread count.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones the buffered events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Removes and returns the buffered events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Renders events as human-readable lines on stderr, indented by span depth.
///
/// This sink replaces the ad-hoc `verbosity`-gated `eprintln!` logging of
/// earlier versions: the same event stream drives both the machine-readable
/// JSONL output and the human diagnostics, so the two can never disagree.
#[derive(Debug, Default)]
pub struct StderrSink {
    depths: Mutex<HashMap<u64, usize>>,
}

impl StderrSink {
    /// Creates a stderr sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn depth_of(&self, span: u64) -> usize {
        if span == 0 {
            return 0;
        }
        *self
            .depths
            .lock()
            .expect("stderr sink poisoned")
            .get(&span)
            .unwrap_or(&0)
    }
}

fn render_fields(fields: &Fields) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = fields
        .iter()
        .map(|(k, v)| match v {
            Value::U64(n) => format!("{k}={n}"),
            Value::I64(n) => format!("{k}={n}"),
            Value::F64(x) => format!("{k}={x:.3}"),
            Value::Bool(b) => format!("{k}={b}"),
            Value::Str(s) => format!("{k}={s}"),
        })
        .collect();
    format!(" {}", parts.join(" "))
}

impl TraceSink for StderrSink {
    fn emit(&self, event: &Event) {
        match &event.kind {
            EventKind::Enter {
                id,
                parent,
                name,
                fields,
            } => {
                let depth = self.depth_of(*parent) + usize::from(*parent != 0);
                self.depths
                    .lock()
                    .expect("stderr sink poisoned")
                    .insert(*id, depth);
                eprintln!(
                    "[trace] {:indent$}> {name}{}",
                    "",
                    render_fields(fields),
                    indent = 2 * depth
                );
            }
            EventKind::Exit {
                id,
                name,
                elapsed_us,
                fields,
            } => {
                let depth = self.depth_of(*id);
                self.depths.lock().expect("stderr sink poisoned").remove(id);
                eprintln!(
                    "[trace] {:indent$}< {name} ({:.3}ms){}",
                    "",
                    *elapsed_us as f64 / 1000.0,
                    render_fields(fields),
                    indent = 2 * depth
                );
            }
            EventKind::Point { span, name, fields } => {
                let depth = self.depth_of(*span) + usize::from(*span != 0);
                eprintln!(
                    "[trace] {:indent$}. {name}{}",
                    "",
                    render_fields(fields),
                    indent = 2 * depth
                );
            }
            EventKind::Counter { span, name, value } => {
                let depth = self.depth_of(*span) + usize::from(*span != 0);
                eprintln!(
                    "[trace] {:indent$}. {name} = {value}",
                    "",
                    indent = 2 * depth
                );
            }
        }
    }
}

/// Streams events as JSONL to any writer (typically a file opened for
/// `--trace-out`). Lines follow the schema documented at the
/// [crate root](crate#jsonl-schema).
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps a writer. Each event becomes one line; IO errors are swallowed
    /// (tracing must never fail a verification run).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut line = event.to_jsonl();
        line.push('\n');
        let _ = self
            .writer
            .lock()
            .expect("jsonl sink poisoned")
            .write_all(line.as_bytes());
    }
}

/// Fans each event out to several sinks (e.g. a JSONL file plus stderr).
#[derive(Clone)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl FanoutSink {
    /// Combines the given sinks; events are delivered in vector order.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn emit(&self, event: &Event) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_preserves_order_and_takes() {
        let sink = MemorySink::new();
        for seq in 0..3 {
            sink.emit(&Event {
                seq,
                t_us: 0,
                kind: EventKind::Counter {
                    span: 0,
                    name: "c".into(),
                    value: seq,
                },
            });
        }
        let events = sink.take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].seq, 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn fanout_delivers_to_all() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.emit(&Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Counter {
                span: 0,
                name: "c".into(),
                value: 1,
            },
        });
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        sink.emit(&Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Counter {
                span: 0,
                name: "c".into(),
                value: 1,
            },
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"seq\":0,\"t_us\":0,\"ev\":\"counter\",\"span\":0,\"name\":\"c\",\"value\":1}\n"
        );
    }
}
