//! Time-frame CNF unrolling of a gate-level netlist.
//!
//! The [`Unroller`] replicates the combinational logic of a
//! [`Netlist`](rfn_netlist::Netlist) once per clock cycle ("time frame"),
//! Tseitin-encoding each gate into an incremental [`Solver`]. Frames are
//! appended one at a time, so a BMC loop deepens the unrolling without
//! re-encoding anything.
//!
//! Three standard reductions keep the CNF small:
//!
//! * **cone-of-influence restriction** — only signals in the COI of the
//!   roots given to [`Unroller::new`] are encoded;
//! * **constant folding** — gates over constant fanins collapse without
//!   allocating variables, and the folding is propagated across frames;
//! * **structural simplification** — single-fanin gates alias their fanin,
//!   duplicate and complementary fanins collapse (`x AND !x = 0`,
//!   `x XOR x = 0`), and degenerate muxes reduce to their select or data
//!   term.
//!
//! Every COI register carries an **activation literal** created up front:
//! its reset clause (frame 0) and transition clauses (frame `t` to `t+1`)
//! are all guarded by it. Solving under a subset of the activation literals
//! checks an *abstraction* in which the unassumed registers are free cut
//! points — the counterexample-based abstraction loop of the BMC engine
//! grows that subset from UNSAT cores.

use rfn_netlist::{Coi, GateOp, NetKind, Netlist, NetlistError, SignalId};

use crate::lit::Lit;
use crate::solver::Solver;

/// A signal's encoding at one time frame: a constant or a solver literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Term {
    /// The signal is constant at this frame.
    Const(bool),
    /// The signal is represented by this literal.
    Lit(Lit),
}

impl Term {
    /// The negated term.
    #[inline]
    pub fn negate(self) -> Term {
        match self {
            Term::Const(b) => Term::Const(!b),
            Term::Lit(l) => Term::Lit(!l),
        }
    }

    /// The literal, if the term is not constant.
    #[inline]
    pub fn lit(self) -> Option<Lit> {
        match self {
            Term::Const(_) => None,
            Term::Lit(l) => Some(l),
        }
    }
}

/// An incremental time-frame unroller over a validated netlist.
///
/// # Example
///
/// ```
/// use rfn_netlist::{GateOp, Netlist};
/// use rfn_sat::{SolveResult, Solver, Term, Unroller};
///
/// # fn main() -> Result<(), rfn_netlist::NetlistError> {
/// // A register that toggles every cycle from 0.
/// let mut n = Netlist::new("toggle");
/// let q = n.add_register("q", Some(false));
/// let nq = n.add_gate("nq", GateOp::Not, &[q]);
/// n.set_register_next(q, nq)?;
/// n.validate()?;
///
/// let mut solver = Solver::new();
/// let mut unroller = Unroller::new(&n, &mut solver, [q])?;
/// unroller.ensure_frame(&mut solver, 1);
/// let acts: Vec<_> = unroller.activations().collect();
/// // With all registers activated, q is 1 exactly at odd frames.
/// let q1 = unroller.term(1, q).lit().unwrap();
/// let mut assumptions = acts.clone();
/// assumptions.push(q1);
/// assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
/// let q0 = unroller.term(0, q).lit().unwrap();
/// assumptions.push(q0);
/// assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
/// # Ok(())
/// # }
/// ```
pub struct Unroller<'n> {
    netlist: &'n Netlist,
    coi: Coi,
    order: Vec<SignalId>,
    activations: Vec<Option<Lit>>,
    frames: Vec<Vec<Option<Term>>>,
}

impl<'n> Unroller<'n> {
    /// Creates an unroller for the cone of influence of `roots`, allocating
    /// one activation literal per COI register in `solver`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist's
    /// combinational logic is cyclic.
    pub fn new(
        netlist: &'n Netlist,
        solver: &mut Solver,
        roots: impl IntoIterator<Item = SignalId>,
    ) -> Result<Self, NetlistError> {
        let coi = Coi::of(netlist, roots);
        let mut in_coi = vec![false; netlist.num_signals()];
        for &g in coi.gates() {
            in_coi[g.index()] = true;
        }
        let order = netlist
            .topo_order()?
            .into_iter()
            .filter(|g| in_coi[g.index()])
            .collect();
        let mut activations = vec![None; netlist.num_signals()];
        for &r in coi.registers() {
            activations[r.index()] = Some(solver.new_var().positive());
        }
        Ok(Unroller {
            netlist,
            coi,
            order,
            activations,
            frames: Vec::new(),
        })
    }

    /// The cone of influence being unrolled.
    pub fn coi(&self) -> &Coi {
        &self.coi
    }

    /// Number of frames encoded so far.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// The activation literal of a COI register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register in the cone of influence.
    pub fn activation(&self, reg: SignalId) -> Lit {
        self.activations[reg.index()].expect("activation literals exist for every COI register")
    }

    /// All activation literals, in ascending register order (the order of
    /// [`Coi::registers`]).
    pub fn activations(&self) -> impl Iterator<Item = Lit> + '_ {
        self.coi.registers().iter().map(|&r| self.activation(r))
    }

    /// Encodes frames `0..=t` (idempotent for frames already present).
    pub fn ensure_frame(&mut self, solver: &mut Solver, t: usize) {
        while self.frames.len() <= t {
            self.encode_next_frame(solver);
        }
    }

    /// The encoding of `sig` at frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if frame `t` has not been encoded or `sig` is outside the
    /// cone of influence.
    pub fn term(&self, t: usize, sig: SignalId) -> Term {
        frame_term(self.netlist, &self.frames[t], sig)
    }

    fn encode_next_frame(&mut self, solver: &mut Solver) {
        let t = self.frames.len();
        let mut frame: Vec<Option<Term>> = vec![None; self.netlist.num_signals()];
        // Registers and inputs are the sources of the combinational frame.
        for &r in self.coi.registers() {
            let v = solver.new_var().positive();
            let act = self.activation(r);
            if t == 0 {
                if let Some(init) = self.netlist.register_init(r) {
                    solver.add_clause([!act, if init { v } else { !v }]);
                }
            } else {
                let next = frame_term(
                    self.netlist,
                    &self.frames[t - 1],
                    self.netlist.register_next(r),
                );
                encode_guarded_eq(solver, !act, v, next);
            }
            frame[r.index()] = Some(Term::Lit(v));
        }
        for &i in self.coi.inputs() {
            frame[i.index()] = Some(Term::Lit(solver.new_var().positive()));
        }
        for &g in &self.order {
            let NetKind::Gate { op, fanins } = self.netlist.kind(g) else {
                unreachable!("topological order contains only gates");
            };
            let terms: Vec<Term> = fanins
                .iter()
                .map(|&f| frame_term(self.netlist, &frame, f))
                .collect();
            frame[g.index()] = Some(encode_gate(solver, *op, &terms));
        }
        self.frames.push(frame);
    }
}

/// Looks a signal's term up in a frame, synthesizing constants on the fly
/// (constant drivers are not part of the COI bookkeeping).
fn frame_term(netlist: &Netlist, frame: &[Option<Term>], sig: SignalId) -> Term {
    if let NetKind::Const(b) = netlist.kind(sig) {
        return Term::Const(*b);
    }
    frame[sig.index()].expect("signal not encoded in this frame (outside the COI?)")
}

/// Adds clauses for `guard ∨ (out ↔ t)`.
fn encode_guarded_eq(solver: &mut Solver, guard: Lit, out: Lit, t: Term) {
    match t {
        Term::Const(b) => solver.add_clause([guard, if b { out } else { !out }]),
        Term::Lit(l) => {
            solver.add_clause([guard, !out, l]);
            solver.add_clause([guard, out, !l]);
        }
    }
}

fn encode_gate(solver: &mut Solver, op: GateOp, fanins: &[Term]) -> Term {
    match op {
        GateOp::Buf => fanins[0],
        GateOp::Not => fanins[0].negate(),
        GateOp::And => encode_and(solver, fanins.iter().copied()),
        GateOp::Nand => encode_and(solver, fanins.iter().copied()).negate(),
        GateOp::Or => encode_and(solver, fanins.iter().map(|t| t.negate())).negate(),
        GateOp::Nor => encode_and(solver, fanins.iter().map(|t| t.negate())),
        GateOp::Xor => fanins[1..]
            .iter()
            .fold(fanins[0], |a, &b| encode_xor2(solver, a, b)),
        GateOp::Xnor => fanins[1..]
            .iter()
            .fold(fanins[0], |a, &b| encode_xor2(solver, a, b))
            .negate(),
        GateOp::Mux => encode_mux(solver, fanins[0], fanins[1], fanins[2]),
    }
}

fn encode_and(solver: &mut Solver, terms: impl Iterator<Item = Term>) -> Term {
    let mut lits: Vec<Lit> = Vec::new();
    for t in terms {
        match t {
            Term::Const(false) => return Term::Const(false),
            Term::Const(true) => {}
            Term::Lit(l) => lits.push(l),
        }
    }
    lits.sort_unstable();
    lits.dedup();
    // After sorting, complementary literals are adjacent.
    if lits.windows(2).any(|w| w[1] == !w[0]) {
        return Term::Const(false);
    }
    match lits.len() {
        0 => Term::Const(true),
        1 => Term::Lit(lits[0]),
        _ => {
            let g = solver.new_var().positive();
            let mut long: Vec<Lit> = lits.iter().map(|&l| !l).collect();
            for &l in &lits {
                solver.add_clause([!g, l]);
            }
            long.push(g);
            solver.add_clause(long);
            Term::Lit(g)
        }
    }
}

fn encode_xor2(solver: &mut Solver, a: Term, b: Term) -> Term {
    match (a, b) {
        (Term::Const(x), t) | (t, Term::Const(x)) => {
            if x {
                t.negate()
            } else {
                t
            }
        }
        (Term::Lit(la), Term::Lit(lb)) => {
            if la == lb {
                return Term::Const(false);
            }
            if la == !lb {
                return Term::Const(true);
            }
            let g = solver.new_var().positive();
            solver.add_clause([!g, la, lb]);
            solver.add_clause([!g, !la, !lb]);
            solver.add_clause([g, !la, lb]);
            solver.add_clause([g, la, !lb]);
            Term::Lit(g)
        }
    }
}

fn encode_mux(solver: &mut Solver, sel: Term, d0: Term, d1: Term) -> Term {
    let s = match sel {
        Term::Const(true) => return d1,
        Term::Const(false) => return d0,
        Term::Lit(s) => s,
    };
    if d0 == d1 {
        return d0;
    }
    match (d0, d1) {
        (Term::Const(false), Term::Const(true)) => Term::Lit(s),
        (Term::Const(true), Term::Const(false)) => Term::Lit(!s),
        _ => {
            let g = solver.new_var().positive();
            encode_guarded_eq(solver, !s, g, d1); // sel true: g ↔ d1
            encode_guarded_eq(solver, s, g, d0); // sel false: g ↔ d0
            Term::Lit(g)
        }
    }
}
