//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var) and
/// are only meaningful relative to the solver that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of this variable, usable as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + sign` with `sign = 1` for the negated literal, so a
/// literal doubles as a dense index into watch lists.
///
/// # Example
///
/// ```
/// use rfn_sat::Solver;
///
/// let mut s = Solver::new();
/// let v = s.new_var();
/// let l = v.positive();
/// assert_eq!(!l, v.negative());
/// assert_eq!((!l).var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Var {
    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given polarity.
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        Lit(self.0 << 1 | u32::from(!positive))
    }
}

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive (unnegated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index of the literal (`2 * var + sign`), for watch lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.0 >> 1)
        } else {
            write!(f, "!x{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
        assert_eq!(v.positive().code(), 14);
        assert_eq!(v.negative().code(), 15);
    }

    #[test]
    fn display_shows_polarity() {
        let v = Var(3);
        assert_eq!(format!("{}", v.positive()), "x3");
        assert_eq!(format!("{}", v.negative()), "!x3");
        assert_eq!(format!("{v}"), "x3");
    }
}
