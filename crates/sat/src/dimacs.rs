//! DIMACS CNF reader feeding the SAT lane and the netlist frontends.
//!
//! The reader accepts the classic `p cnf <vars> <clauses>` format: `c`
//! comment lines, clauses as whitespace-separated signed literals
//! terminated by `0` (clauses may span lines), and the SATLIB-style `%`
//! trailer. Parse failures report line and byte offsets through
//! [`rfn_netlist::ParseError`].
//!
//! A parsed formula can be used two ways:
//!
//! * [`Dimacs::load_into`] feeds the clauses straight into a [`Solver`] —
//!   the direct SAT lane.
//! * [`Dimacs::to_netlist`] builds a combinational netlist whose single
//!   property asserts the formula is never satisfied, so CNF inputs flow
//!   through the same engine portfolio as sequential designs: `Proved`
//!   means UNSAT, `Falsified` (at depth 0) means SAT.

use rfn_netlist::{GateOp, Netlist, ParseError, Property, SignalId};

use crate::{Lit, Solver, Var};

/// A parsed DIMACS CNF formula.
#[derive(Clone, Debug, Default)]
pub struct Dimacs {
    /// Declared variable count (variables are 1-based in the file).
    pub num_vars: usize,
    /// Clauses as `(variable index, negated)` pairs; variable indices are
    /// 0-based.
    pub clauses: Vec<Vec<(usize, bool)>>,
}

/// Parses a DIMACS CNF file.
///
/// # Errors
///
/// Returns a [`ParseError`] with the line and byte offset of the first
/// malformed token: a missing or malformed `p cnf` header, literals out of
/// the declared variable range, an unterminated final clause, or a clause
/// count that disagrees with the header.
pub fn parse_dimacs(text: &str) -> Result<Dimacs, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let err = |line: usize, pos: usize, msg: String| ParseError::new(line, pos, msg);

    // Tokenizer: skips whitespace and `c`/`%` lines, yields (token, line, pos).
    let next_token = |pos: &mut usize, line: &mut usize| -> Option<(String, usize, usize)> {
        loop {
            while *pos < bytes.len() {
                let b = bytes[*pos];
                if b == b'\n' {
                    *line += 1;
                    *pos += 1;
                } else if b.is_ascii_whitespace() {
                    *pos += 1;
                } else {
                    break;
                }
            }
            if *pos >= bytes.len() {
                return None;
            }
            let b = bytes[*pos];
            let line_start = *pos == 0 || bytes[*pos - 1] == b'\n';
            if b == b'%' && line_start {
                // SATLIB trailer: ends the formula, rest of file ignored.
                *pos = bytes.len();
                return None;
            }
            if b == b'c' && line_start {
                // Comment: skip to end of line.
                while *pos < bytes.len() && bytes[*pos] != b'\n' {
                    *pos += 1;
                }
                continue;
            }
            let (tline, tpos) = (*line, *pos);
            let start = *pos;
            while *pos < bytes.len() && !bytes[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&bytes[start..*pos])
                .expect("token boundaries are ascii")
                .to_owned();
            return Some((tok, tline, tpos));
        }
    };

    // Header.
    let (tok, tline, tpos) = next_token(&mut pos, &mut line)
        .ok_or_else(|| err(line, pos, "empty file: expected a `p cnf` header".into()))?;
    if tok != "p" {
        return Err(err(
            tline,
            tpos,
            format!("expected `p cnf` header, got `{tok}`"),
        ));
    }
    match next_token(&mut pos, &mut line) {
        Some((t, _, _)) if t == "cnf" => {}
        Some((t, l, p)) => return Err(err(l, p, format!("expected `cnf` after `p`, got `{t}`"))),
        None => return Err(err(line, pos, "truncated `p cnf` header".into())),
    }
    let read_count = |what: &str, pos: &mut usize, line: &mut usize| match next_token(pos, line) {
        Some((t, l, p)) => t
            .parse::<usize>()
            .map_err(|_| err(l, p, format!("invalid {what} count `{t}`"))),
        None => Err(err(*line, *pos, format!("missing {what} count in header"))),
    };
    let num_vars = read_count("variable", &mut pos, &mut line)?;
    let num_clauses = read_count("clause", &mut pos, &mut line)?;

    // Clauses.
    let mut clauses = Vec::with_capacity(num_clauses.min(1 << 20));
    let mut current: Vec<(usize, bool)> = Vec::new();
    let mut open = false;
    while let Some((tok, tline, tpos)) = next_token(&mut pos, &mut line) {
        let lit: i64 = tok
            .parse()
            .map_err(|_| err(tline, tpos, format!("invalid literal `{tok}`")))?;
        if lit == 0 {
            clauses.push(std::mem::take(&mut current));
            open = false;
            continue;
        }
        let var = lit.unsigned_abs() as usize;
        if var > num_vars {
            return Err(err(
                tline,
                tpos,
                format!("literal {lit} exceeds declared variable count {num_vars}"),
            ));
        }
        current.push((var - 1, lit < 0));
        open = true;
    }
    if open {
        return Err(err(line, pos, "final clause is not terminated by 0".into()));
    }
    if clauses.len() != num_clauses {
        return Err(err(
            line,
            pos,
            format!(
                "header declares {num_clauses} clauses but the file has {}",
                clauses.len()
            ),
        ));
    }
    Ok(Dimacs { num_vars, clauses })
}

impl Dimacs {
    /// Loads the formula into a [`Solver`], returning the solver variable
    /// for each DIMACS variable (index 0 is DIMACS variable 1).
    pub fn load_into(&self, solver: &mut Solver) -> Vec<Var> {
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            let lits: Vec<Lit> = clause.iter().map(|&(v, neg)| vars[v].lit(!neg)).collect();
            solver.add_clause(lits);
        }
        vars
    }

    /// Builds a combinational netlist encoding the formula, plus the safety
    /// property "the formula is never satisfied".
    ///
    /// Each DIMACS variable becomes a primary input `x1..xN`, each clause an
    /// OR gate, and the conjunction drives an output named `sat`. The
    /// returned property is `Proved` exactly when the formula is UNSAT and
    /// `Falsified` at depth 0 when it is SAT, so CNF problems run through
    /// the same portfolio as sequential designs.
    pub fn to_netlist(&self, name: &str) -> (Netlist, Property) {
        let mut n = Netlist::new(name);
        let inputs: Vec<SignalId> = (1..=self.num_vars)
            .map(|k| n.add_input(&format!("x{k}")))
            .collect();
        let mut clause_sigs = Vec::with_capacity(self.clauses.len());
        for (k, clause) in self.clauses.iter().enumerate() {
            if clause.is_empty() {
                clause_sigs.push(n.add_const("", false));
                continue;
            }
            let lits: Vec<SignalId> = clause
                .iter()
                .map(|&(v, neg)| {
                    if neg {
                        n.add_gate("", GateOp::Not, &[inputs[v]])
                    } else {
                        inputs[v]
                    }
                })
                .collect();
            clause_sigs.push(n.add_gate(&format!("c{k}"), GateOp::Or, &lits));
        }
        let sat = if clause_sigs.is_empty() {
            n.add_const("sat", true)
        } else {
            n.add_gate("sat", GateOp::And, &clause_sigs)
        };
        n.add_output("sat", sat);
        (n, Property::never_value("sat", sat, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_and_solves_sat() {
        let d = parse_dimacs("c tiny\np cnf 2 2\n1 -2 0\n2 0\n").unwrap();
        assert_eq!(d.num_vars, 2);
        assert_eq!(d.clauses.len(), 2);
        let mut s = Solver::new();
        let vars = d.load_into(&mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(vars[1]), Some(true));
    }

    #[test]
    fn parses_and_solves_unsat() {
        let d = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let mut s = Solver::new();
        d.load_into(&mut s);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn clauses_may_span_lines() {
        let d = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n").unwrap();
        assert_eq!(d.clauses[0].len(), 3);
        assert_eq!(d.clauses[0][1], (1, true));
    }

    #[test]
    fn tolerates_satlib_trailer() {
        let d = parse_dimacs("p cnf 1 1\n1 0\n%\n0\n").unwrap();
        assert_eq!(d.clauses.len(), 1);
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let e = parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("exceeds"), "{e}");
    }

    #[test]
    fn rejects_unterminated_clause() {
        let e = parse_dimacs("p cnf 1 1\n1\n").unwrap_err();
        assert!(e.message.contains("not terminated"), "{e}");
    }

    #[test]
    fn rejects_clause_count_mismatch() {
        let e = parse_dimacs("p cnf 1 2\n1 0\n").unwrap_err();
        assert!(e.message.contains("declares 2 clauses"), "{e}");
    }

    #[test]
    fn netlist_encoding_matches_solver() {
        for (src, sat) in [
            ("p cnf 2 2\n1 -2 0\n2 0\n", true),
            ("p cnf 1 2\n1 0\n-1 0\n", false),
            ("p cnf 0 0\n", true),
            ("p cnf 1 1\n0\n", false),
        ] {
            let d = parse_dimacs(src).unwrap();
            let mut s = Solver::new();
            d.load_into(&mut s);
            let solver_sat = s.solve(&[]) == SolveResult::Sat;
            assert_eq!(solver_sat, sat, "{src:?}");
            let (n, p) = d.to_netlist("cnf");
            n.validate().unwrap();
            assert!(p.value);
            // Exhaustive check over all assignments (tiny formulas).
            let mut any = false;
            for bits in 0..1u32 << d.num_vars {
                let assign: Vec<bool> = (0..d.num_vars).map(|i| bits >> i & 1 == 1).collect();
                any |= eval_sat(&n, &assign);
            }
            assert_eq!(any, sat, "netlist encoding disagrees for {src:?}");
        }
    }

    fn eval_sat(n: &Netlist, inputs: &[bool]) -> bool {
        use rfn_netlist::NetKind;
        let mut vals = vec![false; n.num_signals()];
        for (k, &s) in n.inputs().iter().enumerate() {
            vals[s.index()] = inputs[k];
        }
        for s in n.signals() {
            if let NetKind::Const(v) = n.kind(s) {
                vals[s.index()] = *v;
            }
        }
        for s in n.topo_order().unwrap() {
            if let NetKind::Gate { op, fanins } = n.kind(s) {
                let f: Vec<bool> = fanins.iter().map(|x| vals[x.index()]).collect();
                vals[s.index()] = op.eval(&f);
            }
        }
        vals[n.outputs()[0].1.index()]
    }
}
