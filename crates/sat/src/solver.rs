//! A small CDCL SAT solver with assumptions, incremental solving and
//! UNSAT-core extraction.
//!
//! The design follows the classic MiniSat recipe, trimmed to what the BMC
//! engine needs:
//!
//! * **two-watched-literal** propagation with blocker literals,
//! * **first-UIP** conflict analysis and clause learning (no recursive
//!   minimization),
//! * **VSIDS-lite** branching: exponentially decayed variable activities in
//!   an indexed binary max-heap, with phase saving,
//! * **Luby restarts**,
//! * **assumptions**: [`Solver::solve`] takes a list of literals assumed
//!   true for this call only; on UNSAT the failing subset is available from
//!   [`Solver::core`],
//! * **incremental use**: clauses may be added between `solve` calls; the
//!   learnt-clause database is kept (never reduced — the BMC unrollings this
//!   solver serves stay small enough that reduction does not pay for
//!   itself).
//!
//! The solver cooperates with the shared [`Budget`]: it polls the
//! cancellation flag at every propagation boundary and the wall clock at
//! every restart and every 128th boundary, returning
//! [`SolveResult::Unknown`] when the budget runs out.

use rfn_govern::{Budget, Exhaustion};

use crate::lit::{Lit, Var};

const VAL_TRUE: u8 = 0;
const VAL_FALSE: u8 = 1;
const VAL_UNDEF: u8 = 2;

const NO_REASON: u32 = u32::MAX;

const ACTIVITY_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;
const RESTART_BASE: u64 = 100;

/// Outcome of one [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The clauses are unsatisfiable under the given assumptions; the
    /// failing assumption subset is available from [`Solver::core`].
    Unsat,
    /// The [`Budget`] ran out before a verdict was reached.
    Unknown(Exhaustion),
}

/// Cumulative search statistics, across all `solve` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts hit.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learnt (excluding learnt units).
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
}

#[derive(Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

struct Clause {
    lits: Vec<Lit>,
}

/// An incremental CDCL solver.
///
/// # Example
///
/// ```
/// use rfn_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.positive(), b.positive()]);
/// s.add_clause([a.negative()]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// // Assumptions are per-call; the failing subset forms the core.
/// assert_eq!(s.solve(&[b.negative()]), SolveResult::Unsat);
/// assert_eq!(s.core(), &[b.negative()]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// ```
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<u8>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    seen: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<u32>,
    heap_pos: Vec<i32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    ok: bool,
    model: Vec<u8>,
    core: Vec<Lit>,
    budget: Budget,
    polls: u64,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with an unlimited budget.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            seen: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            model: Vec::new(),
            core: Vec::new(),
            budget: Budget::unlimited(),
            polls: 0,
            stats: SolverStats::default(),
        }
    }

    /// Replaces the governing budget (polled during search).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses held (problem clauses plus learnt clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Whether the clause set is still possibly satisfiable (turns false
    /// once unconditional unsatisfiability is derived).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(VAL_UNDEF);
        self.polarity.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.seen.push(false);
        self.activity.push(0.0);
        self.heap_pos.push(-1);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    fn lit_value(&self, l: Lit) -> u8 {
        value_in(&self.assigns, l)
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Must be called outside `solve` (the solver is always at decision
    /// level zero between calls). The clause is simplified against the
    /// level-zero assignment: satisfied clauses are dropped, falsified
    /// literals removed, tautologies discarded. Deriving the empty clause
    /// makes the solver permanently UNSAT.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        if !self.ok {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        ls.sort_unstable();
        ls.dedup();
        // After sorting, the two polarities of a variable are adjacent.
        if ls.windows(2).any(|w| w[1] == !w[0]) {
            return; // tautology
        }
        let mut simplified = Vec::with_capacity(ls.len());
        for &l in &ls {
            match self.lit_value(l) {
                VAL_TRUE => return, // already satisfied at level 0
                VAL_FALSE => {}     // permanently false literal: drop
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(simplified[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let cr = self.clauses.len() as u32;
                self.clauses.push(Clause { lits: simplified });
                self.attach(cr);
            }
        }
    }

    /// Solves under the given assumptions.
    ///
    /// Assumptions hold for this call only. On [`SolveResult::Sat`] the
    /// model is available from [`Solver::value`]; on [`SolveResult::Unsat`]
    /// with assumptions, [`Solver::core`] names a subset of the assumptions
    /// that is already inconsistent with the clauses (empty when the
    /// clauses are unconditionally unsatisfiable).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.core.clear();
        self.model.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        if let Err(e) = self.budget.check() {
            return SolveResult::Unknown(e);
        }
        let mut curr_restarts = 0u64;
        loop {
            let nof_conflicts = luby(2.0, curr_restarts) * RESTART_BASE as f64;
            match self.search(nof_conflicts as u64, assumptions) {
                Some(result) => {
                    self.cancel_until(0);
                    return result;
                }
                None => {
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                    if let Err(e) = self.budget.check() {
                        self.cancel_until(0);
                        return SolveResult::Unknown(e);
                    }
                }
            }
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer.
    ///
    /// `None` before the first successful solve or after a failed one.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(&VAL_TRUE) => Some(true),
            Some(&VAL_FALSE) => Some(false),
            _ => None,
        }
    }

    /// The failed assumption subset from the last [`SolveResult::Unsat`]
    /// answer, in trail order.
    ///
    /// The conjunction of these literals is inconsistent with the clause
    /// set. Empty when the clauses are unsatisfiable without assumptions.
    pub fn core(&self) -> &[Lit] {
        &self.core
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().index();
        debug_assert_eq!(self.assigns[v], VAL_UNDEF);
        self.assigns[v] = if l.is_positive() { VAL_TRUE } else { VAL_FALSE };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn attach(&mut self, cr: u32) {
        let c = &self.clauses[cr as usize].lits;
        debug_assert!(c.len() >= 2);
        let (w0, w1) = (c[0], c[1]);
        self.watches[(!w0).code()].push(Watcher {
            clause: cr,
            blocker: w1,
        });
        self.watches[(!w1).code()].push(Watcher {
            clause: cr,
            blocker: w0,
        });
    }

    /// Propagates all pending assignments; returns a conflicting clause.
    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Take the watch list; retained watchers are pushed back,
            // relocated ones move to another literal's list.
            let ws = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = Vec::with_capacity(ws.len());
            let mut wi = 0;
            while wi < ws.len() {
                let mut w = ws[wi];
                wi += 1;
                if value_in(&self.assigns, w.blocker) == VAL_TRUE {
                    kept.push(w);
                    continue;
                }
                let first;
                let mut new_watch = None;
                {
                    let c = &mut self.clauses[w.clause as usize].lits;
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                    debug_assert_eq!(c[1], false_lit);
                    first = c[0];
                    if first != w.blocker && value_in(&self.assigns, first) == VAL_TRUE {
                        w.blocker = first;
                        kept.push(w);
                        continue;
                    }
                    // Look for a replacement watch.
                    for k in 2..c.len() {
                        if value_in(&self.assigns, c[k]) != VAL_FALSE {
                            c.swap(1, k);
                            new_watch = Some((!c[1]).code());
                            break;
                        }
                    }
                }
                if let Some(code) = new_watch {
                    self.watches[code].push(Watcher {
                        clause: w.clause,
                        blocker: first,
                    });
                    continue;
                }
                // No replacement: the clause is unit or conflicting.
                kept.push(w);
                if value_in(&self.assigns, first) == VAL_FALSE {
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    kept.extend_from_slice(&ws[wi..]);
                    break;
                }
                self.enqueue(first, w.clause);
            }
            self.watches[p.code()] = kept;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0: asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            debug_assert_ne!(confl, NO_REASON);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_activity(q.var());
                    if self.level[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to expand: the most recent seen trail entry.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()];
        }
        learnt[0] = !p.expect("conflict analysis reached the first UIP");

        // Backtrack to the second-highest decision level in the clause and
        // place a literal of that level in the second watch position.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        (learnt, backtrack)
    }

    /// Computes the failed-assumption core for the falsified assumption `p`
    /// by walking the implication graph down to assumption decisions.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            if !self.seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == NO_REASON {
                // A decision inside the assumption prefix is an assumption.
                debug_assert!(self.level[v] > 0);
                self.core.push(l);
            } else {
                for k in 1..self.clauses[r as usize].lits.len() {
                    let q = self.clauses[r as usize].lits[k];
                    if self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        self.core.reverse(); // trail order
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.assigns[v] = VAL_UNDEF;
            self.polarity[v] = l.is_positive(); // phase saving
            self.reason[v] = NO_REASON;
            self.heap_insert(l.var());
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = lim;
    }

    /// Cheap cooperative budget poll: the cancellation flag every call, the
    /// wall clock every 128th.
    fn poll(&mut self) -> Result<(), Exhaustion> {
        self.polls = self.polls.wrapping_add(1);
        if self.polls & 0x7F == 0 {
            self.budget.check()
        } else if self.budget.is_cancelled() {
            Err(Exhaustion::Cancelled)
        } else {
            Ok(())
        }
    }

    fn search(&mut self, nof_conflicts: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.core.clear();
                    return Some(SolveResult::Unsat);
                }
                let (learnt, backtrack) = self.analyze(confl);
                self.cancel_until(backtrack);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, NO_REASON);
                } else {
                    let cr = self.clauses.len() as u32;
                    self.clauses.push(Clause { lits: learnt });
                    self.attach(cr);
                    self.stats.learned += 1;
                    self.enqueue(asserting, cr);
                }
                self.var_inc /= ACTIVITY_DECAY;
                continue;
            }
            // Propagation boundary: cooperative budget poll.
            if let Err(e) = self.poll() {
                return Some(SolveResult::Unknown(e));
            }
            if conflicts >= nof_conflicts {
                self.cancel_until(0);
                return None; // restart
            }
            // Re-establish assumptions, then branch.
            let mut next: Option<Lit> = None;
            while self.decision_level() < assumptions.len() {
                let p = assumptions[self.decision_level()];
                match self.lit_value(p) {
                    VAL_TRUE => self.trail_lim.push(self.trail.len()), // dummy level
                    VAL_FALSE => {
                        self.analyze_final(p);
                        return Some(SolveResult::Unsat);
                    }
                    _ => {
                        next = Some(p);
                        break;
                    }
                }
            }
            let decision = match next {
                Some(p) => p,
                None => match self.pick_branch() {
                    Some(v) => v.lit(self.polarity[v.index()]),
                    None => {
                        self.model = self.assigns.clone();
                        return Some(SolveResult::Sat);
                    }
                },
            };
            self.stats.decisions += 1;
            self.trail_lim.push(self.trail.len());
            self.enqueue(decision, NO_REASON);
        }
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()] == VAL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    fn bump_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
        let pos = self.heap_pos[v.index()];
        if pos >= 0 {
            self.heap_up(pos as usize);
        }
    }

    // --- indexed binary max-heap over variable activities ---

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v.index()] >= 0 {
            return;
        }
        self.heap_pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v.0);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = -1;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_down(0);
        }
        Some(Var(top))
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i as i32;
        self.heap_pos[self.heap[j] as usize] = j as i32;
    }
}

#[inline]
fn value_in(assigns: &[u8], l: Lit) -> u8 {
    let v = assigns[l.var().index()];
    if v == VAL_UNDEF {
        VAL_UNDEF
    } else {
        v ^ (l.0 & 1) as u8
    }
}

/// The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, … scaled by `y^k`.
fn luby(y: f64, mut x: u64) -> f64 {
    let (mut size, mut seq) = (1u64, 0i32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.powi(seq)
}
