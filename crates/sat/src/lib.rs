//! SAT engine for the RFN verification tool: a small CDCL solver plus a
//! time-frame CNF unroller for bounded model checking.
//!
//! The DAC 2001 flow this repository reproduces races formal, simulation
//! and hybrid engines; its formal lane was BDD-bound, which caps
//! falsification depth exactly where 2001-era BDDs did. This crate supplies
//! the third engine class: SAT-based bounded model checking in the
//! single-instance incremental formulation of proof- and
//! counterexample-based abstraction (Een, Mishchenko & Amla,
//! arXiv:1008.2021).
//!
//! Two layers:
//!
//! * [`Solver`] — a CDCL solver with two-watched-literal propagation,
//!   VSIDS-lite branching, first-UIP learning, Luby restarts, incremental
//!   clause addition, per-call assumptions and UNSAT-core extraction over
//!   the assumption literals. It polls a shared
//!   [`Budget`](rfn_govern::Budget) at propagation and restart boundaries
//!   so a portfolio controller can cancel it cooperatively.
//! * [`Unroller`] — Tseitin time-frame unrolling of an
//!   `rfn-netlist` design with cone-of-influence restriction, constant
//!   folding and structural simplification, plus per-register activation
//!   literals so an abstraction (a register subset) can be selected per
//!   solver call purely through assumptions.
//!
//! The crate is zero-dependency beyond the workspace's `rfn-govern` and
//! `rfn-netlist`; the `Bmc` engine in `rfn-core` builds on both layers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dimacs;
mod lit;
mod solver;
mod unroll;

pub use dimacs::{parse_dimacs, Dimacs};
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
pub use unroll::{Term, Unroller};

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_govern::{Budget, Exhaustion};
    use rfn_netlist::{GateOp, Netlist};

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
        s.add_clause([a.negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.is_ok());
        // Once unconditionally UNSAT, the solver stays UNSAT.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.core().is_empty());
    }

    #[test]
    fn unit_propagation_chains() {
        let mut s = Solver::new();
        let vs: Vec<_> = (0..10).map(|_| s.new_var()).collect();
        for w in vs.windows(2) {
            s.add_clause([w[0].negative(), w[1].positive()]);
        }
        s.add_clause([vs[0].positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for v in &vs {
            assert_eq!(s.value(*v), Some(true));
        }
        assert_eq!(
            s.stats().decisions,
            0,
            "pure propagation needs no decisions"
        );
    }

    /// Pigeonhole PHP(4 pigeons, 3 holes): UNSAT, requires real conflict
    /// analysis rather than luck.
    #[test]
    fn pigeonhole_is_unsat() {
        let mut s = Solver::new();
        let (pigeons, holes) = (4, 3);
        let mut x = vec![vec![]; pigeons];
        for p in x.iter_mut() {
            for _ in 0..holes {
                p.push(s.new_var());
            }
        }
        for p in &x {
            s.add_clause(p.iter().map(|v| v.positive()));
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([x[p1][h].negative(), x[p2][h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_are_per_call_and_yield_cores() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([a.negative(), b.positive()]); // a -> b
        s.add_clause([b.negative(), c.positive()]); // b -> c
        assert_eq!(s.solve(&[a.positive(), c.negative()]), SolveResult::Unsat);
        let core = s.core().to_vec();
        assert!(core.contains(&a.positive()) && core.contains(&c.negative()));
        // An irrelevant assumption stays out of the core.
        let d = s.new_var();
        assert_eq!(
            s.solve(&[d.positive(), a.positive(), c.negative()]),
            SolveResult::Unsat
        );
        assert!(!s.core().contains(&d.positive()));
        // Without the assumptions the instance is satisfiable again.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn cancelled_budget_reports_unknown() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        let budget = Budget::unlimited();
        budget.cancel();
        s.set_budget(budget);
        assert_eq!(s.solve(&[]), SolveResult::Unknown(Exhaustion::Cancelled));
    }

    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        (0u32..1 << num_vars).any(|m| {
            clauses.iter().all(|c| {
                c.iter()
                    .any(|&(v, positive)| ((m >> v) & 1 == 1) == positive)
            })
        })
    }

    #[test]
    fn random_cnf_agrees_with_brute_force() {
        // Deterministic splitmix64 stream of random 3-CNF instances.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for round in 0..200 {
            let num_vars = 3 + (next() % 6) as usize; // 3..=8
            let num_clauses = (next() % 28) as usize;
            let clauses: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    let len = 1 + (next() % 3) as usize;
                    (0..len)
                        .map(|_| ((next() as usize) % num_vars, next() & 1 == 1))
                        .collect()
                })
                .collect();
            let mut s = Solver::new();
            let vars: Vec<_> = (0..num_vars).map(|_| s.new_var()).collect();
            for c in &clauses {
                s.add_clause(c.iter().map(|&(v, positive)| vars[v].lit(positive)));
            }
            let expected = brute_force_sat(num_vars, &clauses);
            let got = s.solve(&[]);
            match (expected, got) {
                (true, SolveResult::Sat) => {
                    // The model must actually satisfy every clause.
                    for c in &clauses {
                        assert!(
                            c.iter()
                                .any(|&(v, positive)| s.value(vars[v]) == Some(positive)),
                            "round {round}: model violates clause {c:?}"
                        );
                    }
                }
                (false, SolveResult::Unsat) => {}
                other => panic!("round {round}: brute force vs solver disagree: {other:?}"),
            }
        }
    }

    /// A 3-bit counter counting 0,1,2,… with a watchdog gate at value 5.
    fn counter3(target: u8) -> (Netlist, Vec<rfn_netlist::SignalId>, rfn_netlist::SignalId) {
        let mut n = Netlist::new("counter3");
        let b0 = n.add_register("b0", Some(false));
        let b1 = n.add_register("b1", Some(false));
        let b2 = n.add_register("b2", Some(false));
        let n0 = n.add_gate("n0", GateOp::Not, &[b0]);
        let n1 = n.add_gate("n1", GateOp::Xor, &[b1, b0]);
        let c01 = n.add_gate("c01", GateOp::And, &[b0, b1]);
        let n2 = n.add_gate("n2", GateOp::Xor, &[b2, c01]);
        n.set_register_next(b0, n0).unwrap();
        n.set_register_next(b1, n1).unwrap();
        n.set_register_next(b2, n2).unwrap();
        let bits = [b0, b1, b2];
        let fanins: Vec<_> = (0..3)
            .map(|i| {
                if target >> i & 1 == 1 {
                    bits[i]
                } else {
                    n.add_gate(&format!("inv{i}"), GateOp::Not, &[bits[i]])
                }
            })
            .collect();
        let bad = n.add_gate("bad", GateOp::And, &fanins);
        n.validate().unwrap();
        (n, bits.to_vec(), bad)
    }

    #[test]
    fn unrolled_counter_hits_target_at_exact_depth() {
        let (n, _, bad) = counter3(5);
        let mut solver = Solver::new();
        let mut unroller = Unroller::new(&n, &mut solver, [bad]).unwrap();
        let acts: Vec<Lit> = {
            unroller.ensure_frame(&mut solver, 0);
            unroller.activations().collect()
        };
        for t in 0..5 {
            unroller.ensure_frame(&mut solver, t);
            let mut assumptions = acts.clone();
            assumptions.push(unroller.term(t, bad).lit().expect("bad is not constant"));
            assert_eq!(solver.solve(&assumptions), SolveResult::Unsat, "depth {t}");
        }
        unroller.ensure_frame(&mut solver, 5);
        let mut assumptions = acts.clone();
        assumptions.push(unroller.term(5, bad).lit().unwrap());
        assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
    }

    #[test]
    fn deactivated_registers_are_free_cut_points() {
        let (n, _, bad) = counter3(5);
        let mut solver = Solver::new();
        let mut unroller = Unroller::new(&n, &mut solver, [bad]).unwrap();
        unroller.ensure_frame(&mut solver, 0);
        // Abstract model (no activations assumed): registers are free, so
        // the target is hit at frame 0 already.
        let bad0 = unroller.term(0, bad).lit().unwrap();
        assert_eq!(solver.solve(&[bad0]), SolveResult::Sat);
        // The UNSAT core under all activations pins the culprit registers.
        let mut assumptions: Vec<Lit> = unroller.activations().collect();
        assumptions.push(bad0);
        assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
        assert!(!s_core_only_acts(&solver, bad0).is_empty());
    }

    fn s_core_only_acts(s: &Solver, bad: Lit) -> Vec<Lit> {
        s.core().iter().copied().filter(|&l| l != bad).collect()
    }

    #[test]
    fn constant_folding_collapses_constant_cones() {
        let mut n = Netlist::new("consts");
        let zero = n.add_const("zero", false);
        let i = n.add_input("i");
        let g = n.add_gate("g", GateOp::And, &[zero, i]);
        let r = n.add_register("r", Some(false));
        n.set_register_next(r, g).unwrap();
        let bad = n.add_gate("bad", GateOp::Or, &[r, g]);
        n.validate().unwrap();
        let mut solver = Solver::new();
        let mut unroller = Unroller::new(&n, &mut solver, [bad]).unwrap();
        unroller.ensure_frame(&mut solver, 1);
        // g is constant false; bad reduces to r alone.
        assert_eq!(unroller.term(0, g), Term::Const(false));
        assert_eq!(unroller.term(0, bad), unroller.term(0, r));
        // With the register activated, bad stays unreachable at both frames.
        let mut assumptions: Vec<Lit> = unroller.activations().collect();
        assumptions.push(unroller.term(1, bad).lit().unwrap());
        assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
    }
}
