//! Pins the structured-event JSONL schema and its determinism guarantees.
//!
//! Three contracts are enforced here:
//!
//! 1. **Golden schema** — the normalized JSONL stream of a fixed two-property
//!    session is byte-identical to `golden/trace_demo.jsonl`. Changing event
//!    names, field names or serialization is a schema change and must update
//!    the golden file (and the schema docs in `rfn_trace`) deliberately.
//! 2. **Thread-count determinism** — the same session traced at `--threads`
//!    1, 2 and 4 produces the identical normalized stream.
//! 3. **Reconstructibility** — the `rfn` root span's exit event carries every
//!    `RfnStats` field (and the per-round refinement sizes are recoverable
//!    from the `refine` span exits), so a `--trace-out` file alone can
//!    rebuild a Table 1 row and the per-phase breakdown exactly.

use std::sync::Arc;

use rfn_core::prelude::*;
use rfn_netlist::GateOp;
use rfn_trace::{to_jsonl, Event, EventKind, Value};

/// The fixed demo design: `safe` can never rise (proved in one iteration);
/// `w` latches once the toggle register `b` rises (falsified at depth 2,
/// ATPG-concretized); `wr` latches the unknown-reset register `d`
/// (falsified via the random-simulation engine — `d = 1` at cycle 0 is a
/// legal reset, so the corridor is hittable by the cheap stage).
fn demo_design() -> (Netlist, [Property; 3]) {
    let mut n = Netlist::new("demo");
    let safe = n.add_register("safe", Some(false));
    n.set_register_next(safe, safe).unwrap();
    let b = n.add_register("b", Some(false));
    let nb = n.add_gate("nb", GateOp::Not, &[b]);
    n.set_register_next(b, nb).unwrap();
    let w = n.add_register("w", Some(false));
    let wor = n.add_gate("wor", GateOp::Or, &[w, b]);
    n.set_register_next(w, wor).unwrap();
    let d = n.add_register("d", None);
    n.set_register_next(d, d).unwrap();
    let wr = n.add_register("wr", Some(false));
    let wror = n.add_gate("wror", GateOp::Or, &[wr, d]);
    n.set_register_next(wr, wror).unwrap();
    n.validate().unwrap();
    let p_safe = Property::never(&n, "safe_low", safe);
    let p_unsafe = Property::never(&n, "w_low", w);
    let p_random = Property::never(&n, "wr_low", wr);
    (n, [p_safe, p_unsafe, p_random])
}

fn run_traced(threads: usize) -> (SessionReport, Vec<Event>) {
    let (n, props) = demo_design();
    let sink = Arc::new(MemorySink::new());
    let report = VerifySession::new(&n)
        .property(&props[0])
        .property(&props[1])
        .property(&props[2])
        .threads(threads)
        .trace(sink.clone())
        .run()
        .unwrap();
    (report, sink.take())
}

#[test]
fn golden_jsonl_schema() {
    let (_, events) = run_traced(1);
    let got = to_jsonl(&events, true);
    // `GOLDEN_REGEN=1 cargo test -p rfn-core --test trace_schema golden`
    // rewrites the golden file after a deliberate schema change.
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_demo.jsonl");
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = include_str!("golden/trace_demo.jsonl");
    assert_eq!(
        got, want,
        "normalized JSONL stream diverged from the golden schema; \
         if the change is intentional, regenerate tests/golden/trace_demo.jsonl \
         and update the schema docs in rfn_trace"
    );
}

#[test]
fn stream_is_deterministic_across_thread_counts() {
    let (_, serial) = run_traced(1);
    let serial = to_jsonl(&serial, true);
    for threads in [2, 4] {
        let (_, events) = run_traced(threads);
        assert_eq!(
            serial,
            to_jsonl(&events, true),
            "event stream differs at {threads} threads"
        );
    }
}

/// Looks up an exit-event field as a u64 (also accepting span names).
fn exit_field(events: &[Event], span_name: &str, key: &str, nth: usize) -> Option<u64> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Exit { name, fields, .. } if name == span_name => Some(fields),
            _ => None,
        })
        .nth(nth)
        .and_then(|fields| fields.iter().find(|(k, _)| k == key))
        .map(|(_, v)| match v {
            Value::U64(n) => *n,
            other => panic!("field {key} is not a u64: {other:?}"),
        })
}

#[test]
fn events_reconstruct_rfn_stats_exactly() {
    let (report, events) = run_traced(1);

    // The falsified property is the second job, so its `rfn` root is the
    // second `rfn` exit in the merged stream.
    let stats = report.results[1].stats.as_ref().unwrap();
    let field = |key: &str| exit_field(&events, "rfn", key, 1);
    assert_eq!(field("iterations"), Some(stats.iterations as u64));
    assert_eq!(
        field("abstract_registers"),
        Some(stats.abstract_registers as u64)
    );
    assert_eq!(field("coi_registers"), Some(stats.coi_registers as u64));
    assert_eq!(field("coi_gates"), Some(stats.coi_gates as u64));
    assert_eq!(field("trace_length"), stats.trace_length.map(|l| l as u64));
    assert_eq!(
        field("hybrid.no_cut_steps"),
        Some(stats.hybrid.no_cut_steps as u64)
    );
    assert_eq!(
        field("hybrid.min_cut_steps"),
        Some(stats.hybrid.min_cut_steps as u64)
    );
    assert_eq!(field("bdd.unique_probes"), Some(stats.bdd.unique_probes));
    assert_eq!(field("bdd.ite_misses"), Some(stats.bdd.ite_misses));
    assert_eq!(field("bdd.peak_nodes"), Some(stats.bdd.peak_nodes as u64));

    // Per-round refinement sizes are the `added` fields of the `refine`
    // exits, in order.
    let added: Vec<u64> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Exit { name, fields, .. } if name == "refine" => fields
                .iter()
                .find(|(k, _)| k == "added")
                .map(|(_, v)| match v {
                    Value::U64(n) => *n,
                    other => panic!("added is not a u64: {other:?}"),
                }),
            _ => None,
        })
        .collect();
    let both_jobs: Vec<u64> = report
        .results
        .iter()
        .flat_map(|r| r.stats.as_ref().unwrap().refinement_sizes.iter())
        .map(|&n| n as u64)
        .collect();
    assert_eq!(added, both_jobs);

    // The breakdown table the CLI prints is recoverable from the stream and
    // covers the whole span hierarchy.
    let table = TimeBreakdown::from_events(&events);
    let names: Vec<&str> = table.rows().iter().map(|r| r.name.as_str()).collect();
    for phase in ["rfn", "iteration", "reach"] {
        assert!(names.contains(&phase), "breakdown misses phase {phase}");
    }
}

#[test]
fn verdicts_are_recorded_on_the_roots() {
    let (_, events) = run_traced(1);
    let verdicts: Vec<String> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Exit { name, fields, .. } if name == "rfn" => fields
                .iter()
                .find(|(k, _)| k == "verdict")
                .map(|(_, v)| match v {
                    Value::Str(s) => s.clone(),
                    other => panic!("verdict is not a string: {other:?}"),
                }),
            _ => None,
        })
        .collect();
    assert_eq!(verdicts, ["proved", "falsified", "falsified"]);
}

/// Finds the `nth` exit event of the named span and returns its fields.
fn exit_fields<'e>(
    events: &'e [Event],
    span_name: &str,
    nth: usize,
) -> Option<&'e Vec<(String, Value)>> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Exit { name, fields, .. } if name == span_name => Some(fields),
            _ => None,
        })
        .nth(nth)
}

/// The `sim.random` span carries the engine's effort counters, and a
/// random-engine falsification is visible end-to-end: the `concretize` span
/// names the winning engine, and the `rfn` root carries the accumulated
/// `concretize.*` stats including the zero-ATPG-backtrack witness.
#[test]
fn random_engine_spans_carry_counters() {
    let (report, events) = run_traced(1);

    // Every concretize attempt opens one sim.random child (batches > 0).
    let sim_exits: Vec<&Vec<(String, Value)>> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Exit { name, fields, .. } if name == "sim.random" => Some(fields),
            _ => None,
        })
        .collect();
    assert!(!sim_exits.is_empty(), "no sim.random span in the stream");
    for fields in &sim_exits {
        for key in ["batches", "patterns", "hits", "gate_evals", "outcome"] {
            assert!(
                fields.iter().any(|(k, _)| k == key),
                "sim.random exit misses field {key}"
            );
        }
    }
    // The wr job's engine hit: outcome "hit" with hits >= 1.
    let hit = sim_exits
        .iter()
        .find(|f| {
            f.iter()
                .any(|(k, v)| k == "outcome" && matches!(v, Value::Str(s) if s == "hit"))
        })
        .expect("the wr property must be falsified by the random engine");
    let hits = hit
        .iter()
        .find(|(k, _)| k == "hits")
        .map(|(_, v)| match v {
            Value::U64(n) => *n,
            other => panic!("hits is not a u64: {other:?}"),
        })
        .unwrap();
    assert!(hits >= 1);

    // Its concretize parent names the winning engine.
    let conc = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Exit { name, fields, .. } if name == "concretize" => Some(fields),
            _ => None,
        })
        .find(|f| {
            f.iter()
                .any(|(k, v)| k == "engine" && matches!(v, Value::Str(s) if s == "random"))
        })
        .expect("no concretize span won by the random engine");
    assert!(conc
        .iter()
        .any(|(k, v)| k == "atpg_backtracks" && matches!(v, Value::U64(0))));

    // The wr job's rfn root reconstructs its ConcretizeStats exactly,
    // showing the zero-backtrack falsification.
    let stats = report.results[2].stats.as_ref().unwrap();
    assert!(stats.concretize.random_falsified);
    assert_eq!(stats.concretize.atpg_backtracks, 0);
    let root = exit_fields(&events, "rfn", 2).unwrap();
    let root_u64 = |key: &str| {
        root.iter().find(|(k, _)| k == key).map(|(_, v)| match v {
            Value::U64(n) => *n,
            other => panic!("field {key} is not a u64: {other:?}"),
        })
    };
    assert_eq!(
        root_u64("concretize.random_batches"),
        Some(stats.concretize.random_batches)
    );
    assert_eq!(
        root_u64("concretize.random_patterns"),
        Some(stats.concretize.random_patterns)
    );
    assert_eq!(
        root_u64("concretize.random_hits"),
        Some(stats.concretize.random_hits)
    );
    assert_eq!(root_u64("concretize.atpg_backtracks"), Some(0));
    assert!(root
        .iter()
        .any(|(k, v)| k == "concretize.random_falsified" && matches!(v, Value::Bool(true))));
}
