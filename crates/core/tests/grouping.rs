//! Integration tests for multi-property group scheduling: the merged
//! event stream stays byte-identical at any thread count with grouping
//! on, and grouped sessions agree verdict-for-verdict (and
//! depth-for-depth) with ungrouped ones on randomized designs.

use std::sync::Arc;

use proptest::prelude::*;
use rfn_core::{EngineKind, Verdict, VerifySession};
use rfn_netlist::{GateOp, Netlist, Property, SignalId};
use rfn_trace::{to_jsonl, MemorySink};

/// Two independent saturating 2-bit counters, three properties each
/// (shallow detector, deeper detector, safe watchdog): the clustering
/// forms two non-singleton groups, so a multi-threaded session schedules
/// real group jobs concurrently.
fn two_counters() -> (Netlist, Vec<Property>) {
    let mut n = Netlist::new("two_counters");
    let mut props = Vec::new();
    for c in 0..2 {
        let b0 = n.add_register(&format!("c{c}_b0"), Some(false));
        let b1 = n.add_register(&format!("c{c}_b1"), Some(false));
        let full = n.add_gate(&format!("c{c}_full"), GateOp::And, &[b0, b1]);
        let nfull = n.add_gate(&format!("c{c}_nfull"), GateOp::Not, &[full]);
        let t0 = n.add_gate(&format!("c{c}_t0"), GateOp::Xor, &[b0, nfull]);
        let carry = n.add_gate(&format!("c{c}_carry"), GateOp::And, &[b0, nfull]);
        let t1 = n.add_gate(&format!("c{c}_t1"), GateOp::Xor, &[b1, carry]);
        n.set_register_next(b0, t0).unwrap();
        n.set_register_next(b1, t1).unwrap();
        let nb0 = n.add_gate(&format!("c{c}_nb0"), GateOp::Not, &[b0]);
        let at2 = n.add_gate(&format!("c{c}_at2"), GateOp::And, &[nb0, b1]);
        let nb1 = n.add_gate(&format!("c{c}_nb1"), GateOp::Not, &[b1]);
        let wrapped = n.add_gate(&format!("c{c}_wrapped"), GateOp::And, &[full, nb0, nb1]);
        let w = n.add_register(&format!("c{c}_w"), Some(false));
        let worwrap = n.add_gate(&format!("c{c}_worwrap"), GateOp::Or, &[w, wrapped]);
        n.set_register_next(w, worwrap).unwrap();
        props.push(Property::never(&n, format!("c{c}_b0_high"), b0));
        props.push(Property::never(&n, format!("c{c}_at2"), at2));
        props.push(Property::never(&n, format!("c{c}_no_wrap"), w));
    }
    n.validate().unwrap();
    (n, props)
}

/// Runs a grouped session at the given thread count and returns its merged
/// JSONL event stream (timestamps stripped).
fn grouped_jsonl(engine: EngineKind, threads: usize) -> String {
    let (n, props) = two_counters();
    let sink = Arc::new(MemorySink::new());
    let report = VerifySession::new(&n)
        .properties(props)
        .engine(engine)
        .threads(threads)
        .trace(sink.clone())
        .run()
        .unwrap();
    assert_eq!(
        report.groups.iter().filter(|g| g.len() > 1).count(),
        2,
        "both counters must cluster"
    );
    to_jsonl(&sink.take(), true)
}

#[test]
fn grouped_plain_stream_is_identical_across_thread_counts() {
    let serial = grouped_jsonl(EngineKind::PlainMc, 1);
    assert!(serial.contains("\"name\":\"plain_mc_group\""));
    assert!(serial.contains("\"name\":\"plain_mc\""));
    assert_eq!(serial, grouped_jsonl(EngineKind::PlainMc, 2));
    assert_eq!(serial, grouped_jsonl(EngineKind::PlainMc, 4));
}

#[test]
fn grouped_bmc_stream_is_identical_across_thread_counts() {
    let serial = grouped_jsonl(EngineKind::Bmc, 1);
    assert!(serial.contains("\"name\":\"bmc_group\""));
    assert!(serial.contains("\"name\":\"bmc\""));
    assert_eq!(serial, grouped_jsonl(EngineKind::Bmc, 2));
    assert_eq!(serial, grouped_jsonl(EngineKind::Bmc, 4));
}

/// A random layered sequential netlist (same shape as the rfn-netlist
/// proptests) plus `n_props` properties over randomly chosen nets:
/// property COIs overlap arbitrarily, so the clustering exercises
/// singleton and non-singleton groups alike.
fn arb_design(
    n_inputs: usize,
    n_regs: usize,
    n_gates: usize,
    n_props: usize,
) -> impl Strategy<Value = (Netlist, Vec<Property>)> {
    let ops = prop::sample::select(vec![
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Not,
    ]);
    let gates = prop::collection::vec((ops, any::<u32>(), any::<u32>()), n_gates);
    let nexts = prop::collection::vec(any::<u32>(), n_regs);
    let picks = prop::collection::vec(any::<u32>(), n_props);
    (gates, nexts, picks).prop_map(move |(gates, nexts, picks)| {
        let mut n = Netlist::new("arb");
        let mut pool: Vec<SignalId> = Vec::new();
        for k in 0..n_inputs {
            pool.push(n.add_input(&format!("i{k}")));
        }
        let mut regs = Vec::new();
        for k in 0..n_regs {
            let r = n.add_register(&format!("r{k}"), Some(k % 2 == 0));
            pool.push(r);
            regs.push(r);
        }
        for (k, (op, a, b)) in gates.into_iter().enumerate() {
            let fa = pool[a as usize % pool.len()];
            let fb = pool[b as usize % pool.len()];
            let fanins: Vec<SignalId> = if matches!(op, GateOp::Not) {
                vec![fa]
            } else {
                vec![fa, fb]
            };
            pool.push(n.add_gate(&format!("g{k}"), op, &fanins));
        }
        for (k, nx) in nexts.into_iter().enumerate() {
            n.set_register_next(regs[k], pool[nx as usize % pool.len()])
                .unwrap();
        }
        let props = picks
            .into_iter()
            .enumerate()
            .map(|(k, pick)| Property::never(&n, format!("p{k}"), pool[pick as usize % pool.len()]))
            .collect();
        (n, props)
    })
}

/// Verdict fingerprint that ignores trace contents: two SAT runs may find
/// different (equally valid) counterexample assignments, but the verdict
/// kind and depth must match exactly.
fn fingerprint(v: &Verdict) -> String {
    match v {
        Verdict::Proved => "proved".to_owned(),
        Verdict::Falsified { depth, .. } => format!("falsified@{depth}"),
        Verdict::Inconclusive { reason } => format!("inconclusive: {reason}"),
    }
}

fn session_fingerprints(
    netlist: &Netlist,
    props: &[Property],
    engine: EngineKind,
    grouping: bool,
) -> Vec<String> {
    VerifySession::new(netlist)
        .properties(props.iter().cloned())
        .engine(engine)
        .grouping(grouping)
        .threads(1)
        .run()
        .unwrap()
        .results
        .iter()
        .map(|r| fingerprint(&r.verdict))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grouped plain-MC sessions agree verdict-for-verdict (including
    /// falsification depths) with ungrouped ones on random designs.
    #[test]
    fn grouped_plain_matches_ungrouped((n, props) in arb_design(3, 4, 10, 4)) {
        let grouped = session_fingerprints(&n, &props, EngineKind::PlainMc, true);
        let ungrouped = session_fingerprints(&n, &props, EngineKind::PlainMc, false);
        prop_assert_eq!(grouped, ungrouped);
    }

    /// The same parity for the group BMC lane (shared unroller and
    /// incremental solver vs. one dedicated run per property).
    #[test]
    fn grouped_bmc_matches_ungrouped((n, props) in arb_design(3, 4, 10, 4)) {
        let grouped = session_fingerprints(&n, &props, EngineKind::Bmc, true);
        let ungrouped = session_fingerprints(&n, &props, EngineKind::Bmc, false);
        prop_assert_eq!(grouped, ungrouped);
    }
}
