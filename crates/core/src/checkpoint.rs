//! Checkpoint/resume support for the refinement loop.
//!
//! After every refinement iteration the loop can serialize its state — the
//! abstract register set, the saved BDD variable order, iteration counters,
//! the random-simulation seed and the remaining budget — to a small
//! versioned JSON snapshot. A later run started with
//! [`RfnOptions::with_resume`](crate::RfnOptions::with_resume) picks the
//! snapshot up and continues from the last completed iteration, reproducing
//! the verdict the uninterrupted run would have reached.
//!
//! The format is deliberately tiny and hand-rolled (the workspace has no
//! serialization dependency): one flat JSON object whose `schema` field
//! gates forward compatibility. Writes are atomic (temp file + rename) so a
//! run killed mid-write never leaves a truncated snapshot behind.
#![deny(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The snapshot schema version written by this build.
///
/// History: 1 = the original format (design identity by name only);
/// 2 = adds `design_hash`, the canonical design identity checked on resume.
pub const CHECKPOINT_SCHEMA: u32 = 2;

/// Serialized state of the refinement loop after a completed iteration.
///
/// Signals are stored by *name*, not index, so a snapshot survives
/// re-parsing the netlist (signal ids are assigned in file order and names
/// are validated unique).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopCheckpoint {
    /// Snapshot schema version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// Name of the design the snapshot belongs to (informational; identity
    /// is validated through [`LoopCheckpoint::design_hash`]).
    pub design: String,
    /// Canonical design identity hash: the `DesignSource` identity (file
    /// content hash) when the design was loaded through one, else the
    /// structural netlist hash. Stored as a hex string in the JSON so the
    /// full 64 bits survive the float-based number grammar.
    pub design_hash: u64,
    /// Name of the property being verified.
    pub property_name: String,
    /// Name of the property's target signal.
    pub property_signal: String,
    /// The property's target value.
    pub property_value: bool,
    /// The iteration the resumed loop starts at (one past the last
    /// completed refinement).
    pub next_iteration: usize,
    /// Names of the registers in the abstract model.
    pub registers: Vec<String>,
    /// The saved BDD variable order: `(signal name, kind)` where kind is
    /// one of `"current"`, `"next"`, `"input"`.
    pub saved_order: Vec<(String, String)>,
    /// Registers added per completed refinement round.
    pub refinement_sizes: Vec<usize>,
    /// Wall-clock milliseconds the interrupted run had spent.
    pub elapsed_ms: u64,
    /// Milliseconds the interrupted run's budget had left, if bounded.
    pub budget_remaining_ms: Option<u64>,
    /// Seed of the random-simulation concretization engine.
    pub sim_seed: u64,
}

impl LoopCheckpoint {
    /// The snapshot path for one property inside a checkpoint directory
    /// (`<dir>/<property>.ckpt.json`, with path separators sanitized out of
    /// the property name).
    pub fn path_for(dir: &Path, property_name: &str) -> PathBuf {
        let safe: String = property_name
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        dir.join(format!("{safe}.ckpt.json"))
    }

    /// Serializes the snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let _ = write!(s, "\"schema\":{}", self.schema);
        let _ = write!(s, ",\"design\":{}", json_string(&self.design));
        let _ = write!(s, ",\"design_hash\":\"{:016x}\"", self.design_hash);
        let _ = write!(s, ",\"property_name\":{}", json_string(&self.property_name));
        let _ = write!(
            s,
            ",\"property_signal\":{}",
            json_string(&self.property_signal)
        );
        let _ = write!(s, ",\"property_value\":{}", self.property_value);
        let _ = write!(s, ",\"next_iteration\":{}", self.next_iteration);
        s.push_str(",\"registers\":[");
        for (i, r) in self.registers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_string(r));
        }
        s.push(']');
        s.push_str(",\"saved_order\":[");
        for (i, (name, kind)) in self.saved_order.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{},{}]", json_string(name), json_string(kind));
        }
        s.push(']');
        s.push_str(",\"refinement_sizes\":[");
        for (i, n) in self.refinement_sizes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        s.push(']');
        let _ = write!(s, ",\"elapsed_ms\":{}", self.elapsed_ms);
        match self.budget_remaining_ms {
            Some(ms) => {
                let _ = write!(s, ",\"budget_remaining_ms\":{ms}");
            }
            None => s.push_str(",\"budget_remaining_ms\":null"),
        }
        let _ = write!(s, ",\"sim_seed\":{}", self.sim_seed);
        s.push('}');
        s
    }

    /// Parses a snapshot from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field, or an
    /// unsupported schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = parse_json(text)?;
        let obj = value.as_object().ok_or("checkpoint is not a JSON object")?;
        let schema = get_u64(obj, "schema")? as u32;
        if schema != CHECKPOINT_SCHEMA {
            return Err(format!(
                "unsupported checkpoint schema {schema} (this build reads {CHECKPOINT_SCHEMA})"
            ));
        }
        let saved_order = get(obj, "saved_order")?
            .as_array()
            .ok_or("`saved_order` is not an array")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("`saved_order` entry is not a 2-element array")?;
                let name = pair[0]
                    .as_str()
                    .ok_or("`saved_order` signal name is not a string")?;
                let kind = pair[1]
                    .as_str()
                    .ok_or("`saved_order` kind is not a string")?;
                Ok((name.to_owned(), kind.to_owned()))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let design_hash = get_string(obj, "design_hash")?;
        let design_hash = u64::from_str_radix(&design_hash, 16)
            .map_err(|_| format!("`design_hash` is not a hex hash: `{design_hash}`"))?;
        Ok(LoopCheckpoint {
            schema,
            design: get_string(obj, "design")?,
            design_hash,
            property_name: get_string(obj, "property_name")?,
            property_signal: get_string(obj, "property_signal")?,
            property_value: get(obj, "property_value")?
                .as_bool()
                .ok_or("`property_value` is not a boolean")?,
            next_iteration: get_u64(obj, "next_iteration")? as usize,
            registers: get_string_array(obj, "registers")?,
            saved_order,
            refinement_sizes: get(obj, "refinement_sizes")?
                .as_array()
                .ok_or("`refinement_sizes` is not an array")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| "`refinement_sizes` entry is not a number".to_owned())
                })
                .collect::<Result<Vec<_>, String>>()?,
            elapsed_ms: get_u64(obj, "elapsed_ms")?,
            budget_remaining_ms: match get(obj, "budget_remaining_ms")? {
                Json::Null => None,
                v => Some(
                    v.as_u64()
                        .ok_or("`budget_remaining_ms` is not a number or null")?,
                ),
            },
            sim_seed: get_u64(obj, "sim_seed")?,
        })
    }

    /// Writes the snapshot atomically: the JSON goes to a `.tmp` sibling
    /// first and is renamed into place, so readers never observe a torn
    /// file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the checkpoint directory must exist or
    /// be creatable).
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O failures and malformed snapshots alike.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// --- A minimal JSON reader, just enough for the flat snapshot format. ---

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("`{key}` is not a non-negative integer"))
}

fn get_string(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    Ok(get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("`{key}` is not a string"))?
        .to_owned())
}

fn get_string_array(obj: &[(String, Json)], key: &str) -> Result<Vec<String>, String> {
    get(obj, key)?
        .as_array()
        .ok_or_else(|| format!("`{key}` is not an array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("`{key}` entry is not a string"))
        })
        .collect()
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoopCheckpoint {
        LoopCheckpoint {
            schema: CHECKPOINT_SCHEMA,
            design: "proc \"v2\"".to_owned(),
            design_hash: 0xdead_beef_0123_4567,
            property_name: "mutex".to_owned(),
            property_signal: "err_flag".to_owned(),
            property_value: true,
            next_iteration: 3,
            registers: vec!["r0".to_owned(), "r\\1".to_owned()],
            saved_order: vec![
                ("r0".to_owned(), "current".to_owned()),
                ("r0".to_owned(), "next".to_owned()),
                ("in".to_owned(), "input".to_owned()),
            ],
            refinement_sizes: vec![2, 5],
            elapsed_ms: 1234,
            budget_remaining_ms: Some(766),
            sim_seed: 42,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let ckpt = sample();
        let json = ckpt.to_json();
        assert_eq!(LoopCheckpoint::from_json(&json).unwrap(), ckpt);
        let mut unbounded = ckpt;
        unbounded.budget_remaining_ms = None;
        assert_eq!(
            LoopCheckpoint::from_json(&unbounded.to_json()).unwrap(),
            unbounded
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        let json = sample().to_json().replace("\"schema\":2", "\"schema\":99");
        let err = LoopCheckpoint::from_json(&json).unwrap_err();
        assert!(err.contains("schema 99"), "got: {err}");
    }

    #[test]
    fn rejects_missing_fields_and_garbage() {
        assert!(LoopCheckpoint::from_json("{}")
            .unwrap_err()
            .contains("schema"));
        assert!(LoopCheckpoint::from_json("not json").is_err());
        assert!(LoopCheckpoint::from_json("{\"schema\":1}  x").is_err());
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join("rfn-ckpt-test");
        let path = LoopCheckpoint::path_for(&dir, "a/b");
        assert!(path.ends_with("a_b.ckpt.json"));
        let ckpt = sample();
        ckpt.write_atomic(&path).unwrap();
        assert_eq!(LoopCheckpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }
}
