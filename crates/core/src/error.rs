//! The unified error type of the verification tool.
//!
//! Every fallible entry point of `rfn-core` returns [`Error`] (re-exported
//! under its historical name [`RfnError`]). The netlist, model-checking and
//! ATPG layers keep their own error types, but they all funnel into the two
//! source-carrying variants here, each stamped with the [`Phase`] of the
//! verification loop that failed — so a `Display` message always names the
//! failing phase and `std::error::Error::source` walks the underlying chain.

use std::fmt;

use rfn_mc::McError;
use rfn_netlist::NetlistError;

/// The verification-loop phase an error originated from.
///
/// Phases mirror the paper's four steps plus the surrounding machinery; the
/// same names appear as span names in the structured event stream (see
/// [`rfn_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Phase {
    /// Input validation and abstract-model construction.
    Setup,
    /// BDD forward reachability (Step 2).
    Reach,
    /// Hybrid BDD–ATPG trace reconstruction (Step 2).
    Hybrid,
    /// Trace-guided sequential ATPG on the original design (Step 3).
    Concretize,
    /// Crucial-register identification (Step 4).
    Refine,
    /// Unreachable-coverage-state analysis (Section 3).
    Coverage,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Setup => "setup",
            Phase::Reach => "reachability",
            Phase::Hybrid => "hybrid trace reconstruction",
            Phase::Concretize => "concretization",
            Phase::Refine => "refinement",
            Phase::Coverage => "coverage analysis",
        })
    }
}

/// Error produced by the verification tool.
///
/// The historical alias [`RfnError`] remains the name used throughout the
/// crate's signatures; both refer to this enum.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The netlist (or an abstract view / ATPG scope built from it) is
    /// malformed.
    Netlist {
        /// The phase that tripped over the problem.
        phase: Phase,
        /// The underlying netlist error.
        source: NetlistError,
    },
    /// The symbolic engine failed structurally (not a capacity abort, which
    /// is reported through outcomes).
    Mc {
        /// The phase that tripped over the problem.
        phase: Phase,
        /// The underlying model-checking error.
        source: McError,
    },
    /// A design input (AIGER, DIMACS, text netlist, or a `DesignSource`
    /// spec string) could not be parsed.
    Parse {
        /// What was being parsed: a file path or the spec string itself.
        input: String,
        /// The underlying parse error with line/byte location.
        source: rfn_netlist::ParseError,
    },
    /// The property's target signal is not part of the design.
    BadProperty(String),
    /// A checkpoint snapshot could not be written, read, or applied (e.g. it
    /// was taken on a different design or property).
    Checkpoint(String),
    /// An engine produced a counterexample that failed concrete replay
    /// (`validate_trace`). This is always an engine bug, never a property
    /// of the design, so it is reported loudly instead of being folded into
    /// a verdict.
    Witness {
        /// The phase that validated (and rejected) the witness.
        phase: Phase,
        /// What was wrong with the witness.
        detail: String,
    },
}

/// Historical name of [`Error`], kept so `RfnError::BadProperty(_)` patterns
/// and signatures continue to work.
pub type RfnError = Error;

impl Error {
    /// Re-stamps the originating phase (no-op for variants without one).
    #[must_use]
    pub fn with_phase(mut self, phase: Phase) -> Self {
        match &mut self {
            Error::Netlist { phase: p, .. }
            | Error::Mc { phase: p, .. }
            | Error::Witness { phase: p, .. } => *p = phase,
            Error::Parse { .. } | Error::BadProperty(_) | Error::Checkpoint(_) => {}
        }
        self
    }

    /// Converts and stamps in one step: `e.map_err(|e| Error::at(Phase::X, e))`.
    pub fn at(phase: Phase, e: impl Into<Error>) -> Self {
        e.into().with_phase(phase)
    }

    /// The phase the error originated from, if it carries one.
    pub fn phase(&self) -> Option<Phase> {
        match self {
            Error::Netlist { phase, .. }
            | Error::Mc { phase, .. }
            | Error::Witness { phase, .. } => Some(*phase),
            Error::Parse { .. } | Error::BadProperty(_) | Error::Checkpoint(_) => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Netlist { phase, source } => {
                write!(f, "netlist failure during {phase}: {source}")
            }
            Error::Mc { phase, source } => {
                write!(f, "model-checking failure during {phase}: {source}")
            }
            Error::Parse { input, source } => {
                write!(f, "cannot parse `{input}`: {source}")
            }
            Error::BadProperty(m) => write!(f, "bad property: {m}"),
            Error::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            Error::Witness { phase, detail } => {
                write!(f, "invalid witness rejected during {phase}: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist { source, .. } => Some(source),
            Error::Mc { source, .. } => Some(source),
            Error::Parse { source, .. } => Some(source),
            Error::BadProperty(_) | Error::Checkpoint(_) | Error::Witness { .. } => None,
        }
    }
}

impl From<NetlistError> for Error {
    fn from(source: NetlistError) -> Self {
        Error::Netlist {
            phase: Phase::Setup,
            source,
        }
    }
}

impl From<McError> for Error {
    fn from(source: McError) -> Self {
        Error::Mc {
            phase: Phase::Setup,
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_names_the_phase() {
        let e = Error::at(Phase::Refine, NetlistError::DuplicateName("x".into()));
        let msg = e.to_string();
        assert!(msg.contains("refinement"), "got: {msg}");
        assert!(e.source().is_some());
    }

    #[test]
    fn with_phase_restamps() {
        let e = Error::from(NetlistError::DuplicateName("x".into()));
        assert_eq!(e.phase(), Some(Phase::Setup));
        assert_eq!(e.with_phase(Phase::Hybrid).phase(), Some(Phase::Hybrid));
        assert_eq!(Error::BadProperty("p".into()).phase(), None);
    }
}
