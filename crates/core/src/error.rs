//! Error type for the RFN loop.

use std::fmt;

use rfn_mc::McError;
use rfn_netlist::NetlistError;

/// Error produced by the RFN verification loop.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RfnError {
    /// The netlist or property is malformed.
    Netlist(NetlistError),
    /// The symbolic engine failed structurally (not a capacity abort, which
    /// is reported through outcomes).
    Mc(McError),
    /// The property's target signal is not part of the design.
    BadProperty(String),
}

impl fmt::Display for RfnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfnError::Netlist(e) => write!(f, "netlist failure: {e}"),
            RfnError::Mc(e) => write!(f, "model-checking failure: {e}"),
            RfnError::BadProperty(m) => write!(f, "bad property: {m}"),
        }
    }
}

impl std::error::Error for RfnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RfnError::Netlist(e) => Some(e),
            RfnError::Mc(e) => Some(e),
            RfnError::BadProperty(_) => None,
        }
    }
}

impl From<NetlistError> for RfnError {
    fn from(e: NetlistError) -> Self {
        RfnError::Netlist(e)
    }
}

impl From<McError> for RfnError {
    fn from(e: McError) -> Self {
        RfnError::Mc(e)
    }
}
