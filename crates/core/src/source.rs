//! Unified design loading: one resolver for every input form.
//!
//! Every binary in the workspace used to hard-code its design dispatch —
//! builtin generator names in the bench harnesses, a text-netlist path in
//! the CLI. [`DesignSource`] replaces all of that with one spec grammar:
//!
//! | Spec | Meaning |
//! |------|---------|
//! | `builtin:<name>` | A bundled generator (`fifo`, `integer_unit`, `usb`, `processor`) at default parameters |
//! | `fuzz:<seed>` | The seeded random design `rfn_designs::fuzz_design(seed)` |
//! | `<path>.aag` / `<path>.aig` | An AIGER file (ascii / binary) |
//! | `<path>.cnf` | A DIMACS CNF formula (combinational encoding) |
//! | `<path>` (anything else) | The line-oriented text netlist format |
//!
//! A bare name that matches a builtin (e.g. plain `fifo`) also resolves,
//! so existing command lines keep working.
//!
//! [`DesignSource::load`] returns the design *and* a [`DesignIdentity`]:
//! a canonical spec string plus a stable 64-bit hash (the raw file content
//! hash for file-backed designs, the structural netlist hash otherwise).
//! The identity keys warm-start order stores and checkpoint validation, so
//! file-loaded designs get order caching and resume exactly like builtins
//! — and a changed file invalidates both automatically.

use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use rfn_designs::Design;
use rfn_netlist::{parse_aiger, parse_netlist, NetlistError, ParseError};

use crate::error::Error;

/// The builtin generator names [`DesignSource::Builtin`] accepts.
pub const BUILTIN_DESIGNS: [&str; 4] = ["fifo", "integer_unit", "usb", "processor"];

/// Where a design comes from; parsed from a spec string, loaded uniformly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DesignSource {
    /// A bundled synthetic generator at default parameters.
    Builtin(String),
    /// An AIGER file (`.aag` ascii or `.aig` binary, auto-detected).
    Aiger(PathBuf),
    /// A DIMACS CNF file, encoded as a combinational netlist with the
    /// single property "the formula is never satisfied".
    Dimacs(PathBuf),
    /// A file in the line-oriented text netlist format.
    Text(PathBuf),
    /// A seeded random design from the fuzzer.
    Fuzz(u64),
}

/// Canonical identity of a loaded design, keying warm-start stores and
/// checkpoint validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DesignIdentity {
    /// Canonical spec string (e.g. `builtin:fifo`, `fuzz:42`,
    /// `file:1a2b3c4d5e6f7081`).
    pub canonical: String,
    /// Stable 64-bit identity hash: the FNV-1a hash of the raw file bytes
    /// for file-backed sources, the structural netlist hash otherwise.
    pub hash: u64,
}

/// A resolved design: what was asked for, what it produced, and who it is.
#[derive(Clone, Debug)]
pub struct LoadedDesign {
    /// The source the design was loaded from.
    pub source: DesignSource,
    /// The design: netlist plus any properties the input format carries
    /// (AIGER bad literals, the DIMACS `sat` property, fuzzer/builtin
    /// properties; text netlists carry none).
    pub design: Design,
    /// Canonical identity for store keying and checkpoint validation.
    pub identity: DesignIdentity,
}

impl fmt::Display for DesignSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignSource::Builtin(name) => write!(f, "builtin:{name}"),
            DesignSource::Aiger(p) | DesignSource::Dimacs(p) | DesignSource::Text(p) => {
                write!(f, "{}", p.display())
            }
            DesignSource::Fuzz(seed) => write!(f, "fuzz:{seed}"),
        }
    }
}

impl FromStr for DesignSource {
    type Err = Error;

    fn from_str(spec: &str) -> Result<Self, Error> {
        DesignSource::parse(spec)
    }
}

fn spec_error(spec: &str, message: impl Into<String>) -> Error {
    Error::Parse {
        input: spec.to_owned(),
        source: ParseError::new(0, 0, message),
    }
}

impl DesignSource {
    /// Parses a design spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<DesignSource, Error> {
        if spec.is_empty() {
            return Err(spec_error(spec, "empty design spec"));
        }
        if let Some(name) = spec.strip_prefix("builtin:") {
            if BUILTIN_DESIGNS.contains(&name) {
                return Ok(DesignSource::Builtin(name.to_owned()));
            }
            return Err(spec_error(
                spec,
                format!(
                    "unknown builtin design `{name}` (available: {})",
                    BUILTIN_DESIGNS.join(", ")
                ),
            ));
        }
        if let Some(seed) = spec.strip_prefix("fuzz:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| spec_error(spec, format!("invalid fuzz seed `{seed}`")))?;
            return Ok(DesignSource::Fuzz(seed));
        }
        if BUILTIN_DESIGNS.contains(&spec) {
            return Ok(DesignSource::Builtin(spec.to_owned()));
        }
        let path = Path::new(spec);
        match path.extension().and_then(|e| e.to_str()) {
            Some("aag") | Some("aig") => Ok(DesignSource::Aiger(path.to_owned())),
            Some("cnf") => Ok(DesignSource::Dimacs(path.to_owned())),
            _ => Ok(DesignSource::Text(path.to_owned())),
        }
    }

    /// Loads the design and computes its canonical identity.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] for unreadable or malformed files (the message
    /// carries line/byte offsets); never fails for builtin and fuzz
    /// sources.
    pub fn load(&self) -> Result<LoadedDesign, Error> {
        let design = match self {
            DesignSource::Builtin(name) => builtin_design(name)?,
            DesignSource::Fuzz(seed) => rfn_designs::fuzz_design(*seed),
            DesignSource::Aiger(path) => {
                let bytes = read_file(path)?;
                let parsed =
                    parse_aiger(&bytes, &design_name(path)).map_err(|source| Error::Parse {
                        input: path.display().to_string(),
                        source,
                    })?;
                return Ok(LoadedDesign {
                    source: self.clone(),
                    design: Design {
                        netlist: parsed.netlist,
                        properties: parsed.properties,
                        coverage_sets: Vec::new(),
                    },
                    identity: file_identity(&bytes),
                });
            }
            DesignSource::Dimacs(path) => {
                let bytes = read_file(path)?;
                let text = String::from_utf8(bytes.clone()).map_err(|e| Error::Parse {
                    input: path.display().to_string(),
                    source: ParseError::new(0, e.utf8_error().valid_up_to(), "file is not UTF-8"),
                })?;
                let dimacs = rfn_sat::parse_dimacs(&text).map_err(|source| Error::Parse {
                    input: path.display().to_string(),
                    source,
                })?;
                let (netlist, property) = dimacs.to_netlist(&design_name(path));
                return Ok(LoadedDesign {
                    source: self.clone(),
                    design: Design {
                        netlist,
                        properties: vec![property],
                        coverage_sets: Vec::new(),
                    },
                    identity: file_identity(&bytes),
                });
            }
            DesignSource::Text(path) => {
                let bytes = read_file(path)?;
                let text = String::from_utf8(bytes.clone()).map_err(|e| Error::Parse {
                    input: path.display().to_string(),
                    source: ParseError::new(0, e.utf8_error().valid_up_to(), "file is not UTF-8"),
                })?;
                let netlist = parse_netlist(&text).map_err(|e| {
                    let source = match e {
                        NetlistError::Parse { line, message } => ParseError::new(line, 0, message),
                        other => ParseError::new(0, 0, other.to_string()),
                    };
                    Error::Parse {
                        input: path.display().to_string(),
                        source,
                    }
                })?;
                return Ok(LoadedDesign {
                    source: self.clone(),
                    design: Design {
                        netlist,
                        properties: Vec::new(),
                        coverage_sets: Vec::new(),
                    },
                    identity: file_identity(&bytes),
                });
            }
        };
        // Builtin and fuzz sources: identity is canonical spec + structural
        // hash, so the identity changes exactly when the generator does.
        let identity = DesignIdentity {
            canonical: self.to_string(),
            hash: design.netlist.structural_hash(),
        };
        Ok(LoadedDesign {
            source: self.clone(),
            design,
            identity,
        })
    }
}

/// Loads a builtin generator at default parameters.
fn builtin_design(name: &str) -> Result<Design, Error> {
    Ok(match name {
        "fifo" => rfn_designs::fifo_controller(&Default::default()),
        "integer_unit" => rfn_designs::integer_unit(&Default::default()),
        "usb" => rfn_designs::usb_controller(&Default::default()),
        "processor" => rfn_designs::processor_module(&Default::default()),
        other => {
            return Err(spec_error(
                other,
                format!("unknown builtin design `{other}`"),
            ))
        }
    })
}

fn read_file(path: &Path) -> Result<Vec<u8>, Error> {
    std::fs::read(path).map_err(|e| Error::Parse {
        input: path.display().to_string(),
        source: ParseError::new(0, 0, format!("cannot read file: {e}")),
    })
}

/// Design name for file-backed sources: the file stem.
fn design_name(path: &Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design")
        .to_owned()
}

/// FNV-1a over the raw file bytes: the content-derived identity of
/// file-backed designs.
fn file_identity(bytes: &[u8]) -> DesignIdentity {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    DesignIdentity {
        canonical: format!("file:{hash:016x}"),
        hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_spec_forms() {
        assert_eq!(
            DesignSource::parse("builtin:fifo").unwrap(),
            DesignSource::Builtin("fifo".into())
        );
        assert_eq!(
            DesignSource::parse("usb").unwrap(),
            DesignSource::Builtin("usb".into())
        );
        assert_eq!(
            DesignSource::parse("fuzz:42").unwrap(),
            DesignSource::Fuzz(42)
        );
        assert_eq!(
            DesignSource::parse("designs/x.aag").unwrap(),
            DesignSource::Aiger("designs/x.aag".into())
        );
        assert_eq!(
            DesignSource::parse("x.aig").unwrap(),
            DesignSource::Aiger("x.aig".into())
        );
        assert_eq!(
            DesignSource::parse("f.cnf").unwrap(),
            DesignSource::Dimacs("f.cnf".into())
        );
        assert_eq!(
            DesignSource::parse("ring.rtl").unwrap(),
            DesignSource::Text("ring.rtl".into())
        );
        assert!(DesignSource::parse("builtin:nope").is_err());
        assert!(DesignSource::parse("fuzz:abc").is_err());
        assert!(DesignSource::parse("").is_err());
    }

    #[test]
    fn fuzz_loads_deterministically() {
        let a = DesignSource::parse("fuzz:7").unwrap().load().unwrap();
        let b = DesignSource::parse("fuzz:7").unwrap().load().unwrap();
        assert_eq!(a.identity, b.identity);
        assert_eq!(a.identity.canonical, "fuzz:7");
        assert_eq!(
            a.design.netlist.structural_hash(),
            b.design.netlist.structural_hash()
        );
    }

    #[test]
    fn builtin_loads_with_properties() {
        let d = DesignSource::parse("builtin:fifo").unwrap().load().unwrap();
        assert!(!d.design.properties.is_empty());
        assert_eq!(d.identity.canonical, "builtin:fifo");
        assert_eq!(d.identity.hash, d.design.netlist.structural_hash());
    }

    #[test]
    fn aiger_file_identity_is_content_derived() {
        let dir = std::env::temp_dir().join(format!("rfn-src-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("a.aag");
        let p2 = dir.join("b.aag");
        let src = "aag 1 0 1 0 0 1\n2 3\n2\n";
        std::fs::write(&p1, src).unwrap();
        std::fs::write(&p2, src).unwrap();
        let d1 = DesignSource::parse(p1.to_str().unwrap())
            .unwrap()
            .load()
            .unwrap();
        let d2 = DesignSource::parse(p2.to_str().unwrap())
            .unwrap()
            .load()
            .unwrap();
        // Same content, different path: same identity.
        assert_eq!(d1.identity, d2.identity);
        assert!(d1.identity.canonical.starts_with("file:"));
        assert_eq!(d1.design.properties.len(), 1);
        std::fs::write(&p2, "aag 1 0 1 0 0 1\n2 2\n2\n").unwrap();
        let d3 = DesignSource::parse(p2.to_str().unwrap())
            .unwrap()
            .load()
            .unwrap();
        assert_ne!(d1.identity.hash, d3.identity.hash);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reports_parse_error() {
        let e = DesignSource::parse("/nonexistent/x.aag")
            .unwrap()
            .load()
            .unwrap_err();
        assert!(matches!(e, Error::Parse { .. }), "{e}");
    }
}
