//! The hybrid BDD–ATPG engine: error-trace reconstruction on abstract models
//! (Section 2.2 of the paper).
//!
//! A freshly refined abstract model can have thousands of free inputs, which
//! makes plain pre-image computation hopeless. The hybrid engine instead:
//!
//! 1. computes the *min-cut design* `MC` of the abstract model `N` (few
//!    inputs),
//! 2. walks the onion rings backwards: from the fattest target cube `T`, it
//!    intersects `pre_MC(T)` (with the cut-signal inputs kept alive) with the
//!    previous ring,
//! 3. classifies each resulting cube: a *no-cut cube* mentions only registers
//!    and free inputs of `N` and extends the trace directly; a *min-cut
//!    cube* mentions internal cut signals and is lifted to a no-cut cube by
//!    combinational ATPG on `N`,
//! 4. repeats until the trace reaches the initial ring.
//!
//! If every candidate cube of a step fails (ATPG abort or ring mismatch), the
//! engine falls back to an exact pre-image on `N` for that step — slower but
//! always sound.

use rfn_atpg::{AtpgOptions, CombinationalAtpg};
use rfn_bdd::Bdd;
use rfn_mc::{McError, ModelSpec, ReachResult, SymbolicModel};
use rfn_netlist::{compute_min_cut, AbstractView, Netlist, Trace, TraceStep};

use crate::RfnError;

/// Statistics from one hybrid trace reconstruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Steps resolved directly by a no-cut cube of the min-cut pre-image.
    pub no_cut_steps: usize,
    /// Steps resolved by lifting a min-cut cube with combinational ATPG.
    pub min_cut_steps: usize,
    /// Steps that needed the exact pre-image fallback.
    pub fallback_steps: usize,
    /// Primary inputs of the abstract model.
    pub abstract_inputs: usize,
    /// Primary inputs of the min-cut design.
    pub min_cut_inputs: usize,
}

/// Result of [`hybrid_trace`].
#[derive(Clone, Debug)]
pub enum HybridOutcome {
    /// An abstract error trace was reconstructed.
    Trace(Trace, HybridStats),
    /// Reconstruction failed (resource exhaustion in the fallback path).
    Failed(HybridStats),
}

/// Reconstructs an error trace on the abstract model from a target-hitting
/// reachability result (`reach.verdict` must be
/// [`rfn_mc::ReachVerdict::TargetHit`]).
///
/// The returned trace runs from an initial state of the abstract model to a
/// state satisfying `targets`; its state cubes range over the model's
/// registers and its input cubes over the model's free inputs (true primary
/// inputs and pseudo-inputs of the original design).
///
/// # Errors
///
/// Returns structural errors only; capacity exhaustion surfaces as
/// [`HybridOutcome::Failed`].
pub fn hybrid_trace(
    netlist: &Netlist,
    view: &AbstractView,
    model: &mut SymbolicModel<'_>,
    reach: &ReachResult,
    targets: Bdd,
    atpg_options: &AtpgOptions,
) -> Result<HybridOutcome, RfnError> {
    let mut traces = hybrid_traces(netlist, view, model, reach, targets, atpg_options, 1)?;
    Ok(match traces.pop() {
        Some((trace, stats)) => HybridOutcome::Trace(trace, stats),
        None => HybridOutcome::Failed(HybridStats::default()),
    })
}

/// Like [`hybrid_trace`], but reconstructs up to `max_traces` *distinct*
/// abstract error traces by seeding the backward walk from different cubes
/// of the target intersection.
///
/// This implements the paper's first future-work item (Section 5): guiding
/// the sequential ATPG of Step 3 with a set of error traces instead of a
/// single one — if the first trace's guidance turns out unsatisfiable on the
/// original design, the next trace gives the search a genuinely different
/// corridor before RFN falls back to refinement.
///
/// # Errors
///
/// Returns structural errors only; per-trace failures simply shorten the
/// returned list (which is empty if no trace could be reconstructed).
#[allow(clippy::too_many_arguments)]
pub fn hybrid_traces(
    netlist: &Netlist,
    view: &AbstractView,
    model: &mut SymbolicModel<'_>,
    reach: &ReachResult,
    targets: Bdd,
    atpg_options: &AtpgOptions,
    max_traces: usize,
) -> Result<Vec<(Trace, HybridStats)>, RfnError> {
    hybrid_traces_inner(
        netlist,
        view,
        model,
        reach,
        targets,
        atpg_options,
        max_traces,
    )
    .map_err(|e| e.with_phase(crate::Phase::Hybrid))
}

#[allow(clippy::too_many_arguments)]
fn hybrid_traces_inner(
    netlist: &Netlist,
    view: &AbstractView,
    model: &mut SymbolicModel<'_>,
    reach: &ReachResult,
    targets: Bdd,
    atpg_options: &AtpgOptions,
    max_traces: usize,
) -> Result<Vec<(Trace, HybridStats)>, RfnError> {
    let rfn_mc::ReachVerdict::TargetHit { step: k } = reach.verdict else {
        return Err(RfnError::BadProperty(
            "hybrid_trace requires a target-hitting reachability result".into(),
        ));
    };
    // Seed cubes: the fattest one first (the paper's choice), then further
    // disjoint path cubes of the intersection for trace diversity.
    let hit = model
        .manager()
        .and(reach.rings[k], targets)
        .map_err(McError::from)?;
    let mut seeds: Vec<Vec<(rfn_bdd::VarId, bool)>> = Vec::new();
    if let Some(c) = model.manager_ref().shortest_cube(hit) {
        seeds.push(c);
    }
    for cube in model.manager_ref().cubes(hit, max_traces.saturating_sub(1)) {
        if !seeds.contains(&cube) {
            seeds.push(cube);
        }
    }
    seeds.truncate(max_traces.max(1));
    let mut out = Vec::new();
    for seed in seeds {
        match hybrid_trace_from_seed(netlist, view, model, reach, k, &seed, atpg_options)? {
            HybridOutcome::Trace(t, s) => {
                if !out.iter().any(|(existing, _)| *existing == t) {
                    out.push((t, s));
                }
            }
            HybridOutcome::Failed(_) => {}
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn hybrid_trace_from_seed(
    netlist: &Netlist,
    view: &AbstractView,
    model: &mut SymbolicModel<'_>,
    reach: &ReachResult,
    k: usize,
    seed_lits: &[(rfn_bdd::VarId, bool)],
    atpg_options: &AtpgOptions,
) -> Result<HybridOutcome, RfnError> {
    let mut stats = HybridStats::default();

    // Min-cut design and its transition relation in the shared var space.
    let mincut = compute_min_cut(netlist, view);
    stats.abstract_inputs = mincut.original_input_count;
    stats.min_cut_inputs = mincut.num_inputs();
    let mc_spec = ModelSpec::from_min_cut(view, &mincut);
    let mc_trans = model.build_transition(&mc_spec)?;
    let main_trans = model.transition().clone();

    let comb_atpg = CombinationalAtpg::over_view(netlist, view, atpg_options.clone())
        .map_err(|e| RfnError::at(crate::Phase::Hybrid, e))?;

    // Free inputs of N, for cube classification.
    let mut is_free_input = vec![false; netlist.num_signals()];
    for s in view.free_inputs() {
        is_free_input[s.index()] = true;
    }

    // Seed: one cube of the target intersection with the last ring (the
    // caller enumerates the fattest cube first, then alternates).
    let seed = model.cube_to_signals(seed_lits);
    debug_assert!(seed.next_state.is_empty());
    let mut trace = Trace::new();
    trace.push(TraceStep {
        state: seed.state.clone(),
        inputs: seed.inputs.clone(),
    });
    let mut t_cube = seed.state;

    for j in (1..=k).rev() {
        let t_bdd = model.cube_to_bdd(&t_cube)?;
        let step = hybrid_step(
            netlist,
            model,
            &mc_trans,
            &main_trans,
            &mincut.cut_signals,
            &is_free_input,
            &comb_atpg,
            reach.rings[j - 1],
            t_bdd,
            &mut stats,
        )?;
        let Some(step) = step else {
            return Ok(HybridOutcome::Failed(stats));
        };
        t_cube = step.state.clone();
        trace.push_front(step);
    }
    Ok(HybridOutcome::Trace(trace, stats))
}

/// Resolves one backward step: finds a (state, inputs) pair in `prev_ring`
/// that transitions into the `t_bdd` region.
#[allow(clippy::too_many_arguments)]
fn hybrid_step(
    netlist: &Netlist,
    model: &mut SymbolicModel<'_>,
    mc_trans: &rfn_mc::TransitionRelation,
    main_trans: &rfn_mc::TransitionRelation,
    cut_signals: &[rfn_netlist::SignalId],
    is_free_input: &[bool],
    comb_atpg: &CombinationalAtpg<'_>,
    prev_ring: Bdd,
    t_bdd: Bdd,
    stats: &mut HybridStats,
) -> Result<Option<TraceStep>, RfnError> {
    let _ = cut_signals;
    // Pre-image on the min-cut design, cut-signal inputs kept alive.
    let attempt = (|| -> Result<Option<TraceStep>, rfn_bdd::BddError> {
        let pre = model.pre_image_with_inputs(mc_trans, t_bdd)?;
        let r = model.manager().and(pre, prev_ring)?;
        if r == model.manager_ref().zero() {
            // MC over-approximates N, so this should not happen; treat as a
            // fallback trigger (can occur after a partial ATPG witness in the
            // previous step).
            return Ok(None);
        }
        // Candidate cubes: fattest first, then a few more paths.
        let mut candidates = Vec::new();
        if let Some(c) = model.manager_ref().shortest_cube(r) {
            candidates.push(c);
        }
        candidates.extend(model.manager_ref().cubes(r, 8));
        for lits in candidates {
            let sc = model.cube_to_signals(&lits);
            let min_cut_lits = sc.inputs.filter(|s| !is_free_input[s.index()]);
            if min_cut_lits.is_empty() {
                stats.no_cut_steps += 1;
                return Ok(Some(TraceStep {
                    state: sc.state,
                    inputs: sc.inputs,
                }));
            }
            // Min-cut cube: lift with combinational ATPG on N. The target is
            // the full cube — state literals plus internal cut-signal values.
            let mut target = sc.state.clone();
            if target.merge(&sc.inputs).is_err() {
                continue;
            }
            let outcome = comb_atpg.justify_cube(&target);
            if let Some(witness) = outcome.trace() {
                let wstep = &witness.steps()[0];
                // The witness's state must stay inside the previous ring.
                let wbdd = match model.cube_to_bdd(&wstep.state) {
                    Ok(b) => b,
                    Err(_) => continue,
                };
                let inter = model.manager().and(wbdd, prev_ring)?;
                if inter == model.manager_ref().zero() {
                    continue;
                }
                stats.min_cut_steps += 1;
                return Ok(Some(TraceStep {
                    state: wstep.state.clone(),
                    inputs: wstep.inputs.clone(),
                }));
            }
        }
        Ok(None)
    })();

    match attempt {
        Ok(Some(step)) => return Ok(Some(step)),
        Ok(None) => {}
        Err(_) => {} // node limit inside the hybrid path: fall back
    }

    // Exact fallback: pre-image on the full abstract model with inputs alive.
    stats.fallback_steps += 1;
    let exact = (|| -> Result<Option<TraceStep>, rfn_bdd::BddError> {
        let pre = model.pre_image_with_inputs(main_trans, t_bdd)?;
        let r = model.manager().and(pre, prev_ring)?;
        if r == model.manager_ref().zero() {
            return Ok(None);
        }
        let lits = model
            .manager_ref()
            .shortest_cube(r)
            .expect("non-zero BDD has a cube");
        let sc = model.cube_to_signals(&lits);
        debug_assert!(
            sc.inputs.iter().all(|(s, _)| is_free_input[s.index()]),
            "main transition pre-image can only mention free inputs"
        );
        Ok(Some(TraceStep {
            state: sc.state,
            inputs: sc.inputs,
        }))
    })();
    let _ = netlist;
    match exact {
        Ok(step) => Ok(step),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_mc::{forward_reach, ReachOptions};
    use rfn_netlist::{Abstraction, GateOp, Netlist, Property, SignalId};

    /// A funnel design: 6 inputs xor-reduce into a toggle register chain.
    /// reg0 toggles when the funnel is 1; reg1 latches reg0.
    fn funnel() -> (Netlist, SignalId, SignalId, Vec<SignalId>) {
        let mut n = Netlist::new("funnel");
        let inputs: Vec<_> = (0..6).map(|k| n.add_input(&format!("i{k}"))).collect();
        let fun = n.add_gate("fun", GateOp::Xor, &inputs);
        let r0 = n.add_register("r0", Some(false));
        let r1 = n.add_register("r1", Some(false));
        let t0 = n.add_gate("t0", GateOp::Xor, &[r0, fun]);
        n.set_register_next(r0, t0).unwrap();
        n.set_register_next(r1, r0).unwrap();
        n.validate().unwrap();
        (n, r0, r1, inputs)
    }

    fn reconstruct(n: &Netlist, target_reg: SignalId) -> (Trace, HybridStats) {
        let property = Property::never(n, "t", target_reg);
        let abstraction = Abstraction::from_registers(n.registers().to_vec());
        let view = abstraction.view(n, [property.signal]).unwrap();
        let mut model = SymbolicModel::new(n, ModelSpec::from_view(&view)).unwrap();
        let targets = model.signal_bdd(property.signal).unwrap();
        let reach = forward_reach(&mut model, targets, &ReachOptions::default()).unwrap();
        assert!(matches!(
            reach.verdict,
            rfn_mc::ReachVerdict::TargetHit { .. }
        ));
        match hybrid_trace(
            n,
            &view,
            &mut model,
            &reach,
            targets,
            &AtpgOptions::default(),
        )
        .unwrap()
        {
            HybridOutcome::Trace(t, s) => (t, s),
            HybridOutcome::Failed(_) => panic!("hybrid failed"),
        }
    }

    #[test]
    fn trace_reaches_target_and_replays() {
        let (n, _, r1, _) = funnel();
        let (trace, stats) = reconstruct(&n, r1);
        // r1 = 1 needs r0 = 1 one cycle earlier: 3 states.
        assert_eq!(trace.num_cycles(), 3);
        assert_eq!(trace.last_state().unwrap().get(r1), Some(true));
        // Min-cut collapses 6 inputs into 1 cut signal.
        assert_eq!(stats.abstract_inputs, 6);
        assert_eq!(stats.min_cut_inputs, 1);
        // The trace must replay on the abstraction = whole design here.
        let mut sim = rfn_sim::Simulator::new(&n).unwrap();
        assert!(sim.replay(&trace));
    }

    #[test]
    fn min_cut_cubes_are_lifted_by_atpg() {
        let (n, r0, _, _) = funnel();
        let (trace, stats) = reconstruct(&n, r0);
        assert_eq!(trace.num_cycles(), 2);
        // The pre-image of r0=1 mentions the internal funnel signal, so the
        // step must be resolved through ATPG lifting (or a no-cut cube if the
        // cut input literal resolves directly; either way no fallback).
        assert_eq!(stats.fallback_steps, 0);
        assert!(stats.min_cut_steps + stats.no_cut_steps >= 1);
        // Inputs in the trace are real inputs of the design.
        for step in trace.steps() {
            for (s, _) in step.inputs.iter() {
                assert!(n.is_input(s), "trace input {} is not a PI", n.label(s));
            }
        }
    }

    #[test]
    fn trace_on_partial_abstraction_uses_pseudo_inputs() {
        let (n, r0, r1, _) = funnel();
        // Abstraction containing only r1: r0 is a pseudo-input.
        let abstraction = Abstraction::from_registers([r1]);
        let view = abstraction.view(&n, [r1]).unwrap();
        let mut model = SymbolicModel::new(&n, ModelSpec::from_view(&view)).unwrap();
        let targets = model.signal_bdd(r1).unwrap();
        let reach = forward_reach(&mut model, targets, &ReachOptions::default()).unwrap();
        let HybridOutcome::Trace(trace, _) = hybrid_trace(
            &n,
            &view,
            &mut model,
            &reach,
            targets,
            &AtpgOptions::default(),
        )
        .unwrap() else {
            panic!("hybrid failed");
        };
        // 2 cycles: pseudo-input r0=1 then r1=1.
        assert_eq!(trace.num_cycles(), 2);
        let first = &trace.steps()[0];
        assert_eq!(
            first.inputs.get(r0),
            Some(true),
            "pseudo-input drives the step"
        );
    }
}
