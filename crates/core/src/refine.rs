//! Step 4: two-phase crucial-register identification (Section 2.4).
//!
//! Phase one replays the abstract error trace on the original design with
//! 3-valued simulation and collects the registers whose simulated values
//! conflict with the trace. Phase two greedily minimizes that candidate
//! list with sequential ATPG: candidates are added one-by-one until the
//! trace becomes unsatisfiable on the refined abstraction, then earlier
//! additions are tentatively removed again.

use rfn_atpg::{AtpgOptions, SequentialAtpg};
use rfn_netlist::{Abstraction, Cube, Netlist, Property, SignalId, Trace};
use rfn_sim::simulate_trace_conflicts_traced;

use crate::{Phase, RfnError};

/// Configuration for [`refine`].
#[derive(Clone, Debug)]
pub struct RefineOptions {
    /// ATPG limits for the trace-satisfiability checks (these run many times,
    /// so keep them tighter than the concretization limits).
    pub atpg: AtpgOptions,
    /// Cap on the phase-one candidate list.
    pub max_candidates: usize,
    /// Skip the phase-two greedy minimization and add every candidate
    /// (exposed for the `refine_ablation` benchmark).
    pub skip_minimization: bool,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            atpg: AtpgOptions {
                max_backtracks: 2_000,
                max_decisions: 200_000,
                ..AtpgOptions::default()
            },
            max_candidates: 32,
            skip_minimization: false,
        }
    }
}

/// What one refinement round did.
#[derive(Clone, Debug, Default)]
pub struct RefineReport {
    /// Registers added to the abstraction.
    pub added: Vec<SignalId>,
    /// Size of the phase-one candidate list.
    pub candidates: usize,
    /// Number of simulation conflicts observed.
    pub conflicts_found: usize,
    /// Sequential-ATPG satisfiability checks performed by phase two.
    pub minimization_checks: usize,
    /// Whether the frequency fallback was needed (no conflicts found).
    pub used_frequency_fallback: bool,
}

/// Refines the abstraction so that it invalidates the given (spurious)
/// abstract error trace, following the paper's two-phase algorithm. The
/// abstraction is grown in place.
///
/// Returns the report; `report.added` is empty only when no candidate
/// register could be identified at all (the RFN loop then gives up).
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn refine(
    netlist: &Netlist,
    abstraction: &mut Abstraction,
    property: &Property,
    trace: &Trace,
    options: &RefineOptions,
) -> Result<RefineReport, RfnError> {
    refine_with_roots(netlist, abstraction, &[property.signal], trace, options)
}

/// Like [`refine`], but with explicit view roots instead of a property (the
/// coverage-analysis mode refines against coverage-signal roots).
///
/// # Errors
///
/// Propagates structural netlist errors.
pub fn refine_with_roots(
    netlist: &Netlist,
    abstraction: &mut Abstraction,
    roots: &[SignalId],
    trace: &Trace,
    options: &RefineOptions,
) -> Result<RefineReport, RfnError> {
    let mut report = RefineReport::default();

    // Phase one: 3-valued simulation conflict analysis. The ATPG options'
    // trace context is the refinement round's context, so the `sim.conflicts`
    // point event lands inside the caller's `refine` span.
    let conflicts = simulate_trace_conflicts_traced(netlist, trace, &options.atpg.trace)
        .map_err(|e| RfnError::at(Phase::Refine, e))?;
    report.conflicts_found = conflicts.conflicts.len();
    let mut candidates: Vec<SignalId> = conflicts
        .conflicting_registers()
        .into_iter()
        .filter(|r| !abstraction.contains(*r))
        .collect();
    if candidates.is_empty() {
        // Rare case per the paper: rank by appearance frequency instead.
        report.used_frequency_fallback = true;
        candidates = conflicts
            .most_frequent_registers()
            .into_iter()
            .filter(|r| !abstraction.contains(*r))
            .collect();
    }
    candidates.truncate(options.max_candidates);
    report.candidates = candidates.len();
    if candidates.is_empty() {
        return Ok(report);
    }

    if options.skip_minimization {
        for &c in &candidates {
            abstraction.insert(c);
        }
        report.added = candidates;
        return Ok(report);
    }

    // Phase two, part one: add candidates until the trace is invalidated.
    let mut added: Vec<SignalId> = Vec::new();
    let mut invalidated = false;
    for &cand in &candidates {
        added.push(cand);
        report.minimization_checks += 1;
        match trace_satisfiable(netlist, abstraction, &added, roots, trace, options)? {
            Some(false) => {
                invalidated = true;
                break;
            }
            Some(true) => {}
            None => {
                // ATPG aborted: include every candidate (paper's fallback).
                added = candidates.clone();
                break;
            }
        }
    }

    // Phase two, part two: try removing earlier additions (not the last).
    if invalidated && added.len() > 1 {
        let mut keep: Vec<SignalId> = added.clone();
        for i in (0..added.len() - 1).rev() {
            let reg = added[i];
            let trial: Vec<SignalId> = keep.iter().copied().filter(|&r| r != reg).collect();
            report.minimization_checks += 1;
            if let Some(false) =
                trace_satisfiable(netlist, abstraction, &trial, roots, trace, options)?
            {
                // Still invalidated without it: drop the register.
                keep = trial;
            }
        }
        added = keep;
    }

    for &r in &added {
        abstraction.insert(r);
    }
    report.added = added;
    Ok(report)
}

/// Checks whether the trace is satisfiable on `abstraction ∪ extra`.
/// `Some(true)` = satisfiable, `Some(false)` = definitely not, `None` =
/// resource limit hit.
fn trace_satisfiable(
    netlist: &Netlist,
    abstraction: &Abstraction,
    extra: &[SignalId],
    roots: &[SignalId],
    trace: &Trace,
    options: &RefineOptions,
) -> Result<Option<bool>, RfnError> {
    let mut trial = abstraction.clone();
    trial.extend(extra.iter().copied());
    let view = trial
        .view(netlist, roots.iter().copied())
        .map_err(|e| RfnError::at(Phase::Refine, e))?;
    let atpg = SequentialAtpg::over_view(netlist, &view, options.atpg.clone())
        .map_err(|e| RfnError::at(Phase::Refine, e))?;
    let constraints: Vec<Cube> = trace
        .steps()
        .iter()
        .map(|step| {
            let mut cube = step.state.filter(|s| view.contains(s));
            for (s, v) in step.inputs.iter() {
                if view.contains(s) {
                    // State and input cubes of one step never overlap.
                    let _ = cube.insert(s, v);
                }
            }
            cube
        })
        .collect();
    let (outcome, _) = atpg.justify(&constraints);
    Ok(match outcome {
        rfn_atpg::AtpgOutcome::Satisfiable(_) => Some(true),
        rfn_atpg::AtpgOutcome::Unsatisfiable => Some(false),
        rfn_atpg::AtpgOutcome::Aborted => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::{GateOp, TraceStep};

    /// w' = w ∨ (a ∧ b); a' = a (sticks at reset 0); b' = i.
    /// An abstract trace over {w} claiming a=1, b=1 is spurious because `a`
    /// can never be 1. Refinement must add `a` (and ideally not `b`).
    fn design() -> (Netlist, Property, [SignalId; 4]) {
        let mut n = Netlist::new("d");
        let i = n.add_input("i");
        let a = n.add_register("a", Some(false));
        let b = n.add_register("b", Some(false));
        n.set_register_next(a, a).unwrap();
        n.set_register_next(b, i).unwrap();
        let fire = n.add_gate("fire", GateOp::And, &[a, b]);
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, fire]);
        n.set_register_next(w, wor).unwrap();
        n.validate().unwrap();
        let p = Property::never(&n, "p", w);
        (n, p, [i, a, b, w])
    }

    fn spurious_trace(a: SignalId, b: SignalId, w: SignalId) -> Trace {
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: [(a, true), (b, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        t
    }

    #[test]
    fn refinement_adds_the_crucial_register() {
        let (n, p, [_, a, b, w]) = design();
        let mut abs = Abstraction::from_registers([w]);
        let trace = spurious_trace(a, b, w);
        let report = refine(&n, &mut abs, &p, &trace, &RefineOptions::default()).unwrap();
        assert!(abs.contains(a), "the stuck register a must be added");
        assert!(!report.added.is_empty());
        // The trace must now be invalidated on the refined abstraction.
        let sat = trace_satisfiable(
            &n,
            &abs,
            &[],
            &[p.signal],
            &trace,
            &RefineOptions::default(),
        )
        .unwrap();
        assert_eq!(sat, Some(false));
    }

    #[test]
    fn minimization_keeps_the_abstraction_small() {
        let (n, p, [_, a, b, w]) = design();
        let mut abs = Abstraction::from_registers([w]);
        let trace = spurious_trace(a, b, w);
        let report = refine(&n, &mut abs, &p, &trace, &RefineOptions::default()).unwrap();
        // `a` alone invalidates the trace; `b` must have been minimized away
        // unless it conflicted first (conflict order is deterministic: `a`
        // conflicts at cycle 0).
        assert_eq!(report.added, vec![a]);
        assert!(!abs.contains(b));
    }

    #[test]
    fn skip_minimization_adds_all_candidates() {
        let (n, p, [_, a, b, w]) = design();
        let mut abs = Abstraction::from_registers([w]);
        // Make both a and b conflict: claim b=1 while the input forces b=0.
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false), (b, false)].into_iter().collect(),
            inputs: [(a, true), (b, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let opts = RefineOptions {
            skip_minimization: true,
            ..RefineOptions::default()
        };
        let report = refine(&n, &mut abs, &p, &t, &opts).unwrap();
        // `b` is constrained to 0 by the state cube and to 1 by the input
        // cube: it conflicts. `a` starts at X, which never conflicts.
        assert!(report.added.contains(&b));
        assert!(!report.added.contains(&a));
        assert_eq!(report.candidates, report.added.len());
    }

    #[test]
    fn frequency_fallback_when_no_conflicts() {
        let (n, p, [_, a, b, w]) = design();
        let mut abs = Abstraction::from_registers([w]);
        // A trace whose pseudo-input values are consistent with simulation
        // from an all-X start: no conflicts arise (a starts X).
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, false)].into_iter().collect(),
            inputs: [(a, true), (b, true)].into_iter().collect(),
        });
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        // This is the same trace as the spurious one: simulation starts a at
        // X, so forcing a=1 does not conflict at cycle 0... but the paper's
        // protocol compares *before* forcing, so no conflict on a. Whether a
        // conflict arises depends on the state cubes; here there are none on
        // a, so the fallback path triggers.
        let report = refine(&n, &mut abs, &p, &t, &RefineOptions::default()).unwrap();
        if report.used_frequency_fallback {
            assert!(!report.added.is_empty(), "fallback still adds registers");
        }
        assert!(abs.len() > 1);
    }

    #[test]
    fn no_candidates_leaves_abstraction_unchanged() {
        let (n, p, [_, _, _, w]) = design();
        // Trace mentioning no registers outside the abstraction.
        let mut t = Trace::new();
        t.push(TraceStep {
            state: [(w, true)].into_iter().collect(),
            inputs: Cube::new(),
        });
        let mut abs = Abstraction::from_registers([w]);
        let report = refine(&n, &mut abs, &p, &t, &RefineOptions::default()).unwrap();
        assert!(report.added.is_empty());
        assert_eq!(abs.len(), 1);
    }
}
