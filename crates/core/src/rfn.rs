//! The RFN abstraction-refinement loop.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rfn_atpg::AtpgOptions;
use rfn_govern::{Budget, GovPhase};
use rfn_mc::{
    forward_reach, CommonOptions, ModelSpec, ReachOptions, ReachVerdict, SymbolicModel, VarKind,
};
use rfn_netlist::{Abstraction, Coi, Netlist, Property, SignalId, Trace};
use rfn_trace::{Span, StderrSink, TraceCtx};

use rfn_sim::RandomSimOptions;

use crate::{
    concretize_with_stats, hybrid_traces, refine, ConcretizeOptions, ConcretizeOutcome,
    ConcretizeStats, HybridStats, LoopCheckpoint, Phase, RefineOptions, RfnError,
};

/// Configuration of the RFN loop.
#[derive(Clone, Debug)]
pub struct RfnOptions {
    /// Maximum refinement iterations.
    pub max_iterations: usize,
    /// The budget and trace context shared with every other engine (see
    /// [`CommonOptions`]). The budget governs the whole run — wall clock,
    /// per-phase quotas, node/memory ceilings, backtrack allowance and the
    /// cooperative cancellation token; every engine the loop drives polls
    /// this same budget at its natural checkpoints. The trace context
    /// carries the span hierarchy
    /// `rfn` → `iteration` → `reach`/`hybrid`/`concretize`/`refine`.
    pub common: CommonOptions,
    /// BDD node limit per iteration's symbolic model.
    pub mc_node_limit: usize,
    /// Reachability options (reordering, step limits).
    pub reach: ReachOptions,
    /// ATPG limits for Step 3 (guided search on the original design).
    pub concretize_atpg: AtpgOptions,
    /// Random-simulation engine for Step 3 — the cheap stage tried before
    /// the ATPG. `concretize_sim.batches = 0` disables it.
    pub concretize_sim: RandomSimOptions,
    /// ATPG limits for the hybrid engine's cube lifting.
    pub hybrid_atpg: AtpgOptions,
    /// Refinement (Step 4) configuration.
    pub refine: RefineOptions,
    /// How many distinct abstract error traces the hybrid engine produces
    /// per iteration; each guides its own Step 3 search before refinement
    /// falls back. 1 reproduces the paper's algorithm; larger values
    /// implement its first future-work extension (Section 5).
    pub max_abstract_traces: usize,
    /// 0 = silent; 1 = progress on stderr. When the shared trace context is
    /// disabled, a nonzero verbosity routes the run's event stream through a
    /// [`StderrSink`] — the human log and the structured events are the same
    /// stream, so they can never disagree. When the trace context is enabled
    /// it wins; compose a [`rfn_trace::FanoutSink`] to get both.
    pub verbosity: u8,
    /// Directory for refinement-loop checkpoints. When set, the loop writes
    /// a versioned snapshot (`<dir>/<property>.ckpt.json`) after every
    /// completed refinement iteration.
    pub checkpoint_dir: Option<PathBuf>,
    /// When `true` and a snapshot for this property exists in
    /// [`RfnOptions::checkpoint_dir`], the loop restores it — abstract
    /// register set, saved variable order, iteration counter, simulation
    /// seed — and continues from the last completed iteration.
    pub resume: bool,
    /// Directory for the persistent order cache. When set, the loop seeds
    /// its first iteration from a previously saved converged variable order
    /// for this `(design, property)` pair (keyed by
    /// [`Netlist::structural_hash`]) and writes the final order back on
    /// every conclusive verdict. A missing cache entry is a normal cold
    /// start; a corrupt or mismatched one is a hard error, never a silent
    /// cold start.
    pub order_cache_dir: Option<PathBuf>,
    /// Canonical design identity hash overriding
    /// [`Netlist::structural_hash`] as the key for order-cache stores and
    /// checkpoint validation. Set by [`crate::VerifySession`] from a
    /// [`crate::DesignIdentity`] (the content hash for file-loaded
    /// designs), so the same file keeps its warm starts regardless of how
    /// its netlist was named or renumbered in memory. `None` falls back to
    /// the structural hash.
    pub design_hash: Option<u64>,
}

impl Default for RfnOptions {
    fn default() -> Self {
        RfnOptions {
            max_iterations: 64,
            common: CommonOptions::default(),
            mc_node_limit: 4_000_000,
            reach: ReachOptions::default(),
            concretize_atpg: AtpgOptions::default(),
            concretize_sim: RandomSimOptions::default(),
            hybrid_atpg: AtpgOptions {
                max_backtracks: 10_000,
                ..AtpgOptions::default()
            },
            refine: RefineOptions::default(),
            max_abstract_traces: 1,
            verbosity: 0,
            checkpoint_dir: None,
            resume: false,
            order_cache_dir: None,
            design_hash: None,
        }
    }
}

impl RfnOptions {
    /// Sets the wall-clock budget for the whole run. The clock starts now:
    /// this is shorthand for re-anchoring the shared budget with a
    /// wall-clock limit.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.common = self.common.with_time_limit(limit);
        self
    }

    /// Replaces the run's shared resource budget wholesale.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.common = self.common.with_budget(budget);
        self
    }

    /// Sets the checkpoint directory (see [`RfnOptions::checkpoint_dir`]).
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Enables or disables resuming from an existing snapshot (see
    /// [`RfnOptions::resume`]).
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Sets the persistent order-cache directory (see
    /// [`RfnOptions::order_cache_dir`]).
    #[must_use]
    pub fn with_order_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.order_cache_dir = Some(dir.into());
        self
    }

    /// Sets the canonical design identity hash (see
    /// [`RfnOptions::design_hash`]).
    #[must_use]
    pub fn with_design_hash(mut self, hash: u64) -> Self {
        self.design_hash = Some(hash);
        self
    }

    /// Selects the initial variable-order strategy for every iteration's
    /// symbolic model (see [`rfn_mc::StaticOrder`]). A saved order — from a
    /// checkpoint, the order cache, or the previous iteration — still wins
    /// over the static arrangement.
    #[must_use]
    pub fn with_static_order(mut self, order: rfn_mc::StaticOrder) -> Self {
        self.reach.static_order = order;
        self
    }

    /// Selects the dynamic-reordering schedule used by every forward
    /// fixpoint (see [`rfn_mc::DvoPolicy`]).
    #[must_use]
    pub fn with_dvo(mut self, dvo: rfn_mc::DvoPolicy) -> Self {
        self.reach.dvo = dvo;
        self
    }

    /// The wall-clock limit of the run's budget, if bounded.
    pub fn time_limit(&self) -> Option<Duration> {
        self.common.time_limit()
    }

    /// Sets the maximum number of refinement iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Sets the BDD node limit per iteration's symbolic model.
    #[must_use]
    pub fn with_mc_node_limit(mut self, nodes: usize) -> Self {
        self.mc_node_limit = nodes;
        self
    }

    /// Sets the transition-cluster node threshold for image computation
    /// (`0` keeps one partition per register).
    #[must_use]
    pub fn with_cluster_limit(mut self, limit: usize) -> Self {
        self.reach.cluster_limit = limit;
        self
    }

    /// Enables or disables don't-care frontier minimization in the forward
    /// fixpoint.
    #[must_use]
    pub fn with_frontier_simplify(mut self, simplify: bool) -> Self {
        self.reach.frontier_simplify = simplify;
        self
    }

    /// Sets the number of image-computation worker threads in every forward
    /// fixpoint (`1` = the serial engine; results are identical for any
    /// thread count).
    #[must_use]
    pub fn with_bdd_threads(mut self, threads: usize) -> Self {
        self.reach.bdd_threads = threads.max(1);
        self
    }

    /// Sets how many abstract error traces the hybrid engine produces per
    /// iteration (1 = the paper's algorithm).
    #[must_use]
    pub fn with_max_abstract_traces(mut self, traces: usize) -> Self {
        self.max_abstract_traces = traces.max(1);
        self
    }

    /// Sets how many 64-pattern batches the random-simulation concretization
    /// engine tries per abstract trace (0 disables the engine).
    #[must_use]
    pub fn with_sim_batches(mut self, batches: usize) -> Self {
        self.concretize_sim.batches = batches;
        self
    }

    /// Seeds the random-simulation concretization engine. Runs are
    /// deterministic for a fixed seed regardless of thread count.
    #[must_use]
    pub fn with_sim_seed(mut self, seed: u64) -> Self {
        self.concretize_sim.seed = seed;
        self
    }

    /// Sets the stderr verbosity (see the field docs for how this interacts
    /// with the shared trace context).
    #[must_use]
    pub fn with_verbosity(mut self, verbosity: u8) -> Self {
        self.verbosity = verbosity;
        self
    }

    /// Attaches a structured-event context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.common = self.common.with_trace(trace);
        self
    }
}

/// Statistics of one RFN run (the data behind a Table 1 row).
#[derive(Clone, Debug, Default)]
pub struct RfnStats {
    /// Refinement iterations executed.
    pub iterations: usize,
    /// Registers in the final abstract model (Table 1, last column).
    pub abstract_registers: usize,
    /// Registers in the property's cone of influence (Table 1, column 2).
    pub coi_registers: usize,
    /// Gates in the property's cone of influence (Table 1, column 3).
    pub coi_gates: usize,
    /// Total wall-clock time (Table 1, column 4).
    pub elapsed: Duration,
    /// Length of the reported error trace, if falsified.
    pub trace_length: Option<usize>,
    /// Registers added per refinement round.
    pub refinement_sizes: Vec<usize>,
    /// Hybrid-engine statistics accumulated over all iterations.
    pub hybrid: HybridStats,
    /// Step-3 engine effort (random simulation and sequential ATPG)
    /// accumulated over all concretization attempts.
    pub concretize: ConcretizeStats,
    /// BDD kernel counters merged over every iteration's manager.
    pub bdd: rfn_bdd::BddStats,
}

/// How an RFN run ended.
#[derive(Clone, Debug)]
pub enum RfnOutcome {
    /// The property is true: a forward fixpoint on an over-approximating
    /// abstract model avoided every target state.
    Proved {
        /// Run statistics.
        stats: RfnStats,
    },
    /// The property is false; the trace is a validated counterexample on the
    /// original design.
    Falsified {
        /// The error trace (cube-level; unassigned inputs are don't-cares).
        trace: Trace,
        /// Run statistics.
        stats: RfnStats,
    },
    /// Limits were exhausted without a verdict.
    Inconclusive {
        /// Human-readable reason.
        reason: String,
        /// Run statistics.
        stats: RfnStats,
    },
}

impl RfnOutcome {
    /// The run statistics regardless of verdict.
    pub fn stats(&self) -> &RfnStats {
        match self {
            RfnOutcome::Proved { stats }
            | RfnOutcome::Falsified { stats, .. }
            | RfnOutcome::Inconclusive { stats, .. } => stats,
        }
    }

    /// Whether the property was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, RfnOutcome::Proved { .. })
    }

    /// Whether the property was falsified.
    pub fn is_falsified(&self) -> bool {
        matches!(self, RfnOutcome::Falsified { .. })
    }
}

/// The RFN verification tool: ties the four steps of the paper's loop
/// together. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Rfn<'n> {
    netlist: &'n Netlist,
    property: Property,
    options: RfnOptions,
}

impl<'n> Rfn<'n> {
    /// Creates a verifier for one property.
    ///
    /// # Errors
    ///
    /// Fails if the netlist does not validate or the property signal is out
    /// of range.
    pub fn new(
        netlist: &'n Netlist,
        property: &Property,
        options: RfnOptions,
    ) -> Result<Self, RfnError> {
        netlist.validate()?;
        if property.signal.index() >= netlist.num_signals() {
            return Err(RfnError::BadProperty(format!(
                "target signal {} out of range",
                property.signal
            )));
        }
        Ok(Rfn {
            netlist,
            property: property.clone(),
            options,
        })
    }

    /// Runs the abstraction-refinement loop to a verdict or resource
    /// exhaustion.
    ///
    /// # Errors
    ///
    /// Returns structural errors only; running out of capacity yields
    /// [`RfnOutcome::Inconclusive`].
    pub fn run(&self) -> Result<RfnOutcome, RfnError> {
        let ctx = self.effective_ctx();
        let mut root = ctx.span_with(
            "rfn",
            vec![("property".to_owned(), self.property.name.as_str().into())],
        );
        let result = self.run_inner(&ctx);
        if let Ok(outcome) = &result {
            record_outcome(&mut root, outcome);
        }
        result
    }

    /// The run's event context: an explicitly attached trace context wins;
    /// otherwise a nonzero verbosity gets a stderr-rendering context, and a
    /// silent run gets the free disabled context.
    fn effective_ctx(&self) -> TraceCtx {
        if self.options.common.trace.is_enabled() {
            self.options.common.trace.clone()
        } else if self.options.verbosity > 0 {
            TraceCtx::new(Arc::new(StderrSink::new()))
        } else {
            TraceCtx::disabled()
        }
    }

    fn run_inner(&self, ctx: &TraceCtx) -> Result<RfnOutcome, RfnError> {
        let start = Instant::now();
        let budget = &self.options.common.budget;
        let mut stats = RfnStats::default();
        let coi = Coi::of(self.netlist, [self.property.signal]);
        stats.coi_registers = coi.num_registers();
        stats.coi_gates = coi.num_gates();

        // Initial abstraction: the registers mentioned by the property (the
        // watchdog register); its transitive fanin comes in through the view.
        let mut abstraction = Abstraction::new();
        if self.netlist.is_register(self.property.signal) {
            abstraction.insert(self.property.signal);
        }
        // Saved BDD variable order across iterations (paper, end of §2.2).
        let mut saved_order: Vec<(SignalId, VarKind)> = Vec::new();
        let mut sim_seed = self.options.concretize_sim.seed;
        let mut start_iteration = 0;

        let ckpt_path = self
            .options
            .checkpoint_dir
            .as_ref()
            .map(|dir| LoopCheckpoint::path_for(dir, &self.property.name));
        if self.options.resume {
            if let Some(path) = ckpt_path.as_ref().filter(|p| p.exists()) {
                let ckpt = LoopCheckpoint::load(path).map_err(RfnError::Checkpoint)?;
                self.apply_checkpoint(&ckpt, &mut abstraction, &mut saved_order)?;
                start_iteration = ckpt.next_iteration;
                sim_seed = ckpt.sim_seed;
                stats.refinement_sizes = ckpt.refinement_sizes.clone();
                ctx.point(
                    "checkpoint.load",
                    vec![
                        ("property".to_owned(), self.property.name.as_str().into()),
                        ("next_iteration".to_owned(), ckpt.next_iteration.into()),
                        ("registers".to_owned(), abstraction.len().into()),
                    ],
                );
                self.log(
                    ctx,
                    &format!(
                        "resumed from checkpoint: iteration {}, {} registers",
                        ckpt.next_iteration,
                        abstraction.len()
                    ),
                );
            }
        }

        // Warm-start: seed the first iteration's variable order from the
        // persistent order cache. A checkpoint's saved order wins — it is
        // newer than anything the cache holds.
        if saved_order.is_empty() {
            if let Some(dir) = &self.options.order_cache_dir {
                let hash = self.design_key();
                if let Some(store) = rfn_mc::store::load_store(dir, hash, &self.property.name)
                    .map_err(|e| RfnError::at(Phase::Setup, e))?
                {
                    store
                        .validate(hash, &self.property.name)
                        .map_err(|e| RfnError::at(Phase::Setup, rfn_mc::McError::Store(e)))?;
                    let mut order = Vec::with_capacity(store.order.len());
                    for label in &store.order {
                        match rfn_mc::store::label_signal(self.netlist, label) {
                            Some(pair) => order.push(pair),
                            None => {
                                return Err(RfnError::Checkpoint(format!(
                                    "order cache names unknown label `{label}`"
                                )))
                            }
                        }
                    }
                    ctx.point(
                        "order_cache.load",
                        vec![
                            ("property".to_owned(), self.property.name.as_str().into()),
                            ("vars".to_owned(), order.len().into()),
                        ],
                    );
                    self.log(
                        ctx,
                        &format!(
                            "warm-started variable order from cache ({} vars)",
                            order.len()
                        ),
                    );
                    saved_order = order;
                }
            }
        }

        for iteration in start_iteration..self.options.max_iterations {
            stats.iterations = iteration + 1;
            stats.abstract_registers = abstraction.len();
            let _it_span = ctx.span_with(
                "iteration",
                vec![
                    ("n".to_owned(), iteration.into()),
                    ("abstract_registers".to_owned(), abstraction.len().into()),
                ],
            );
            if let Err(e) = budget.check() {
                return Ok(self.inconclusive(ctx, e.as_str(), stats, start));
            }
            let view = abstraction.view(self.netlist, [self.property.signal])?;
            let exact = view.pseudo_inputs().is_empty();

            // Step 2: prove or find an abstract error trace. The shared
            // budget governs the manager from model construction on.
            let mut mgr = rfn_bdd::BddManager::new();
            mgr.set_node_limit(self.options.mc_node_limit);
            mgr.set_budget(budget.clone());
            let model_opts = rfn_mc::ModelOptions {
                cluster_limit: self.options.reach.cluster_limit,
                static_order: self.options.reach.static_order,
            };
            let mut model = match SymbolicModel::with_options(
                self.netlist,
                ModelSpec::from_view(&view),
                mgr,
                model_opts,
            ) {
                Ok(m) => m,
                Err(rfn_mc::McError::Bdd(_)) => {
                    return Ok(self.inconclusive(
                        ctx,
                        "BDD node limit while building the abstract model",
                        stats,
                        start,
                    ))
                }
                Err(e) => return Err(e.into()),
            };
            self.restore_order(&mut model, &saved_order);
            let targets = {
                let sig = model.signal_bdd(self.property.signal)?;
                if self.property.value {
                    sig
                } else {
                    match model.manager().not(sig) {
                        Ok(b) => b,
                        Err(_) => {
                            return Ok(self.inconclusive(
                                ctx,
                                "BDD node limit on target construction",
                                stats,
                                start,
                            ))
                        }
                    }
                }
            };
            let mut reach_opts = self.options.reach.clone();
            reach_opts.common.trace = ctx.clone();
            reach_opts.common.budget = budget.clone();
            let reach = forward_reach(&mut model, targets, &reach_opts)
                .map_err(|e| RfnError::at(Phase::Reach, e))?;
            stats.bdd.merge(&reach.stats);
            let hit_step = match reach.verdict {
                ReachVerdict::FixpointProved => {
                    self.log(
                        ctx,
                        &format!(
                            "proved with {} registers in the abstract model",
                            abstraction.len()
                        ),
                    );
                    self.save_order_cache(ctx, &self.save_order(&model));
                    stats.elapsed = start.elapsed();
                    return Ok(RfnOutcome::Proved { stats });
                }
                ReachVerdict::Aborted => {
                    let reason = reach
                        .abort
                        .map_or_else(|| "unknown".to_string(), |r| r.to_string());
                    return Ok(self.inconclusive(
                        ctx,
                        &format!("symbolic reachability out of capacity on the abstract model ({reason})"),
                        stats,
                        start,
                    ));
                }
                ReachVerdict::TargetHit { step } => step,
            };

            // Hybrid engine: reconstruct one or more abstract error traces.
            let mut hybrid_atpg = self.options.hybrid_atpg.clone();
            hybrid_atpg.trace = ctx.clone();
            hybrid_atpg.budget = budget.clone();
            hybrid_atpg.phase = GovPhase::Hybrid;
            let traces: Vec<rfn_netlist::Trace> = {
                let mut hspan = ctx.span("hybrid");
                let reconstructed = hybrid_traces(
                    self.netlist,
                    &view,
                    &mut model,
                    &reach,
                    targets,
                    &hybrid_atpg,
                    self.options.max_abstract_traces.max(1),
                )?;
                if reconstructed.is_empty() {
                    return Ok(self.inconclusive(
                        ctx,
                        "hybrid engine failed to reconstruct an abstract error trace",
                        stats,
                        start,
                    ));
                }
                let mut round = HybridStats::default();
                for (_, h) in &reconstructed {
                    round.no_cut_steps += h.no_cut_steps;
                    round.min_cut_steps += h.min_cut_steps;
                    round.fallback_steps += h.fallback_steps;
                    round.abstract_inputs = h.abstract_inputs;
                    round.min_cut_inputs = h.min_cut_inputs;
                }
                stats.hybrid.no_cut_steps += round.no_cut_steps;
                stats.hybrid.min_cut_steps += round.min_cut_steps;
                stats.hybrid.fallback_steps += round.fallback_steps;
                stats.hybrid.abstract_inputs = round.abstract_inputs;
                stats.hybrid.min_cut_inputs = round.min_cut_inputs;
                hspan.record("traces", reconstructed.len());
                hspan.record("cycles", reconstructed[0].0.num_cycles());
                hspan.record("hit_step", hit_step);
                hspan.record("no_cut_steps", round.no_cut_steps);
                hspan.record("min_cut_steps", round.min_cut_steps);
                hspan.record("fallback_steps", round.fallback_steps);
                hspan.record("abstract_inputs", round.abstract_inputs);
                hspan.record("min_cut_inputs", round.min_cut_inputs);
                reconstructed.into_iter().map(|(t, _)| t).collect()
            };
            self.log(
                ctx,
                &format!(
                    "{} abstract error trace(s) of {} cycles (hit at step {}) on {} registers",
                    traces.len(),
                    traces[0].num_cycles(),
                    hit_step,
                    abstraction.len()
                ),
            );
            // Save the variable order for the next iteration.
            saved_order = self.save_order(&model);
            drop(model);

            // Exact abstraction: the abstract traces are real (their inputs
            // are real primary inputs of the design).
            if exact {
                let trace = traces.into_iter().next().expect("non-empty");
                if crate::validate_trace(self.netlist, &self.property, &trace)? {
                    self.save_order_cache(ctx, &saved_order);
                    stats.trace_length = Some(trace.num_cycles());
                    stats.elapsed = start.elapsed();
                    return Ok(RfnOutcome::Falsified { trace, stats });
                }
                return Ok(self.inconclusive(
                    ctx,
                    "exact abstraction produced a non-replayable trace (internal inconsistency)",
                    stats,
                    start,
                ));
            }

            // Step 3: guided search on the original design, one corridor per
            // abstract trace (the future-work multi-trace extension when
            // `max_abstract_traces > 1`).
            let mut conc_opts = ConcretizeOptions {
                atpg: self.options.concretize_atpg.clone(),
                sim: self.options.concretize_sim.clone(),
                ..ConcretizeOptions::default()
            };
            conc_opts.atpg.trace = ctx.clone();
            conc_opts.sim.trace = ctx.clone();
            conc_opts.atpg.budget = budget.clone();
            conc_opts.sim.budget = budget.clone();
            conc_opts.sim.seed = sim_seed;
            for abstract_trace in &traces {
                let found = {
                    let mut cspan = ctx.span_with(
                        "concretize",
                        vec![("depth".to_owned(), abstract_trace.num_cycles().into())],
                    );
                    let (outcome, cstats) = concretize_with_stats(
                        self.netlist,
                        &self.property,
                        abstract_trace,
                        &conc_opts,
                    )?;
                    stats.concretize.merge(&cstats);
                    cspan.record(
                        "outcome",
                        match &outcome {
                            ConcretizeOutcome::Falsified(_) => "falsified",
                            ConcretizeOutcome::Spurious => "spurious",
                            ConcretizeOutcome::Unknown => "unknown",
                        },
                    );
                    if matches!(outcome, ConcretizeOutcome::Falsified(_)) {
                        cspan.record(
                            "engine",
                            if cstats.random_falsified {
                                "random"
                            } else {
                                "atpg"
                            },
                        );
                    }
                    cspan.record("random_patterns", cstats.random_patterns);
                    cspan.record("random_hits", cstats.random_hits);
                    cspan.record("atpg_backtracks", cstats.atpg_backtracks);
                    cspan.record("atpg_decisions", cstats.atpg_decisions);
                    // Budget telemetry only when the dimension is bounded,
                    // so unbudgeted runs keep a deterministic event stream.
                    if let Some(remaining) = budget.remaining() {
                        cspan.record("budget.remaining_ms", remaining.as_millis() as u64);
                    }
                    if let Some(backtracks) = budget.backtracks_remaining() {
                        cspan.record("budget.backtracks_remaining", backtracks);
                    }
                    match outcome {
                        ConcretizeOutcome::Falsified(t) => Some(t),
                        ConcretizeOutcome::Spurious | ConcretizeOutcome::Unknown => None,
                    }
                };
                if let Some(trace) = found {
                    self.log(
                        ctx,
                        &format!(
                            "falsified: {}-cycle error trace on the original design",
                            trace.num_cycles()
                        ),
                    );
                    self.save_order_cache(ctx, &saved_order);
                    stats.trace_length = Some(trace.num_cycles());
                    stats.elapsed = start.elapsed();
                    return Ok(RfnOutcome::Falsified { trace, stats });
                }
            }

            // Step 4: refine against the first (fattest-seed) trace.
            let mut refine_opts = self.options.refine.clone();
            refine_opts.atpg.trace = ctx.clone();
            refine_opts.atpg.budget = budget.clone();
            refine_opts.atpg.phase = GovPhase::Refine;
            let report = {
                let mut rspan = ctx.span("refine");
                let report = refine(
                    self.netlist,
                    &mut abstraction,
                    &self.property,
                    &traces[0],
                    &refine_opts,
                )?;
                rspan.record("added", report.added.len());
                rspan.record("candidates", report.candidates);
                rspan.record("conflicts", report.conflicts_found);
                rspan.record("checks", report.minimization_checks);
                rspan.record("frequency_fallback", report.used_frequency_fallback);
                report
            };
            self.log(
                ctx,
                &format!(
                    "refined: +{} registers ({} candidates, {} conflicts)",
                    report.added.len(),
                    report.candidates,
                    report.conflicts_found
                ),
            );
            if report.added.is_empty() {
                return Ok(self.inconclusive(
                    ctx,
                    "refinement found no crucial registers to add",
                    stats,
                    start,
                ));
            }
            stats.refinement_sizes.push(report.added.len());

            // Snapshot the loop state so a killed or exhausted run can
            // continue from here with `resume`.
            if let Some(path) = &ckpt_path {
                let ckpt = LoopCheckpoint {
                    schema: crate::CHECKPOINT_SCHEMA,
                    design: self.netlist.name().to_owned(),
                    design_hash: self.design_key(),
                    property_name: self.property.name.clone(),
                    property_signal: self.netlist.signal_name(self.property.signal).to_owned(),
                    property_value: self.property.value,
                    next_iteration: iteration + 1,
                    registers: abstraction.iter().map(|r| self.signal_ref(r)).collect(),
                    saved_order: saved_order
                        .iter()
                        .map(|&(s, kind)| (self.signal_ref(s), kind_name(kind).to_owned()))
                        .collect(),
                    refinement_sizes: stats.refinement_sizes.clone(),
                    elapsed_ms: start.elapsed().as_millis() as u64,
                    budget_remaining_ms: budget.remaining().map(|d| d.as_millis() as u64),
                    sim_seed,
                };
                ckpt.write_atomic(path).map_err(|e| {
                    RfnError::Checkpoint(format!("writing {}: {e}", path.display()))
                })?;
                ctx.point(
                    "checkpoint.write",
                    vec![
                        ("property".to_owned(), self.property.name.as_str().into()),
                        ("next_iteration".to_owned(), (iteration + 1).into()),
                        ("registers".to_owned(), abstraction.len().into()),
                    ],
                );
            }
        }
        Ok(self.inconclusive(ctx, "iteration limit exceeded", stats, start))
    }

    /// Restores abstraction and variable order from a snapshot, after
    /// validating that it belongs to this design and property.
    fn apply_checkpoint(
        &self,
        ckpt: &LoopCheckpoint,
        abstraction: &mut Abstraction,
        saved_order: &mut Vec<(SignalId, VarKind)>,
    ) -> Result<(), RfnError> {
        // Design identity is validated by canonical hash, not by name: the
        // hash is the content hash for file-loaded designs and the
        // structural hash otherwise, so a renamed file still resumes and a
        // changed one never does.
        if ckpt.design_hash != self.design_key() {
            return Err(RfnError::Checkpoint(format!(
                "snapshot was taken on design `{}` (identity {:016x}), \
                 not `{}` (identity {:016x})",
                ckpt.design,
                ckpt.design_hash,
                self.netlist.name(),
                self.design_key(),
            )));
        }
        let signal_name = self.netlist.signal_name(self.property.signal);
        if ckpt.property_name != self.property.name
            || ckpt.property_signal != signal_name
            || ckpt.property_value != self.property.value
        {
            return Err(RfnError::Checkpoint(format!(
                "snapshot is for property `{}` on `{}`={}, not `{}` on `{}`={}",
                ckpt.property_name,
                ckpt.property_signal,
                u8::from(ckpt.property_value),
                self.property.name,
                signal_name,
                u8::from(self.property.value),
            )));
        }
        let find = |name: &str| self.resolve_signal(name);
        for name in &ckpt.registers {
            abstraction.insert(find(name)?);
        }
        saved_order.clear();
        for (name, kind) in &ckpt.saved_order {
            let kind = match kind.as_str() {
                "current" => VarKind::Current,
                "next" => VarKind::Next,
                "input" => VarKind::Input,
                other => {
                    return Err(RfnError::Checkpoint(format!(
                        "snapshot has unknown variable kind `{other}`"
                    )))
                }
            };
            saved_order.push((find(name)?, kind));
        }
        Ok(())
    }

    /// The design identity hash keying order caches and checkpoints: the
    /// session-provided canonical identity when set, else the structural
    /// netlist hash.
    fn design_key(&self) -> u64 {
        self.options
            .design_hash
            .unwrap_or_else(|| self.netlist.structural_hash())
    }

    /// A stable textual reference for a signal: its name, or `#<index>` for
    /// anonymous nets (positions are deterministic for a given design
    /// generator, and snapshots are already design-checked before use).
    fn signal_ref(&self, s: SignalId) -> String {
        let name = self.netlist.signal_name(s);
        if name.is_empty() {
            format!("#{}", s.index())
        } else {
            name.to_owned()
        }
    }

    /// Resolves a [`Self::signal_ref`] back to a signal id.
    fn resolve_signal(&self, name: &str) -> Result<SignalId, RfnError> {
        if let Some(idx) = name.strip_prefix('#') {
            return idx
                .parse::<usize>()
                .ok()
                .and_then(|i| self.netlist.signals().nth(i))
                .ok_or_else(|| {
                    RfnError::Checkpoint(format!("snapshot names unknown signal `{name}`"))
                });
        }
        self.netlist
            .find(name)
            .ok_or_else(|| RfnError::Checkpoint(format!("snapshot names unknown signal `{name}`")))
    }

    fn inconclusive(
        &self,
        ctx: &TraceCtx,
        reason: &str,
        mut stats: RfnStats,
        start: Instant,
    ) -> RfnOutcome {
        stats.elapsed = start.elapsed();
        self.log(ctx, &format!("inconclusive: {reason}"));
        RfnOutcome::Inconclusive {
            reason: reason.to_owned(),
            stats,
        }
    }

    /// Emits a human-readable progress message as a `log` point event. With
    /// `verbosity > 0` and no explicit trace context, these render on stderr
    /// through the [`StderrSink`]; in a JSONL trace they appear as `log`
    /// points inside the current span.
    fn log(&self, ctx: &TraceCtx, message: &str) {
        if ctx.is_enabled() {
            ctx.point(
                "log",
                vec![
                    ("property".to_owned(), self.property.name.as_str().into()),
                    ("msg".to_owned(), message.into()),
                ],
            );
        }
    }

    fn save_order(&self, model: &SymbolicModel<'_>) -> Vec<(SignalId, VarKind)> {
        model
            .manager_ref()
            .current_order()
            .into_iter()
            .map(|v| model.var_signal(v))
            .collect()
    }

    /// Writes a converged variable order to the persistent cache as an
    /// order-only store keyed by the design's structural hash and the
    /// property name. A cache write failure downgrades to a trace point —
    /// it must not destroy a conclusive verdict.
    fn save_order_cache(&self, ctx: &TraceCtx, order: &[(SignalId, VarKind)]) {
        let Some(dir) = &self.options.order_cache_dir else {
            return;
        };
        if order.is_empty() {
            return;
        }
        let labels = order
            .iter()
            .map(|&(s, kind)| rfn_mc::store::signal_label(self.netlist, s, kind))
            .collect();
        let store =
            rfn_bdd::BddStore::order_only(self.design_key(), self.property.name.clone(), labels);
        match rfn_mc::store::save_store(dir, &store) {
            Ok(_) => ctx.point(
                "order_cache.save",
                vec![
                    ("property".to_owned(), self.property.name.as_str().into()),
                    ("vars".to_owned(), store.order.len().into()),
                ],
            ),
            Err(e) => ctx.point(
                "order_cache.save_error",
                vec![
                    ("property".to_owned(), self.property.name.as_str().into()),
                    ("error".to_owned(), e.to_string().into()),
                ],
            ),
        }
    }

    /// Applies a variable order saved from the previous iteration: signals
    /// present in the new model keep their relative order, with each
    /// register's `(current, next)` pair kept together. New signals stay at
    /// the bottom.
    fn restore_order(&self, model: &mut SymbolicModel<'_>, saved: &[(SignalId, VarKind)]) {
        if saved.is_empty() {
            return;
        }
        let mut order = Vec::with_capacity(saved.len());
        for &(s, kind) in saved {
            let var = match kind {
                VarKind::Current => model.current_var(s),
                VarKind::Next => model.next_var(s),
                VarKind::Input => model.try_input_var(s),
            };
            if let Some(v) = var {
                order.push(v);
            }
        }
        model.manager().set_order(&order);
    }
}

fn kind_name(kind: VarKind) -> &'static str {
    match kind {
        VarKind::Current => "current",
        VarKind::Next => "next",
        VarKind::Input => "input",
    }
}

/// Records the verdict and the full [`RfnStats`] on the `rfn` root span's
/// exit event, so a JSONL event file alone reconstructs the stats exactly
/// (`elapsed` is the span's own `elapsed_us`; `refinement_sizes` is the
/// sequence of `added` fields on the per-iteration `refine` spans).
fn record_outcome(span: &mut Span, outcome: &RfnOutcome) {
    let (verdict, stats) = match outcome {
        RfnOutcome::Proved { stats } => ("proved", stats),
        RfnOutcome::Falsified { stats, .. } => ("falsified", stats),
        RfnOutcome::Inconclusive { stats, .. } => ("inconclusive", stats),
    };
    span.record("verdict", verdict);
    if let RfnOutcome::Inconclusive { reason, .. } = outcome {
        span.record("reason", reason.as_str());
    }
    span.record("iterations", stats.iterations);
    span.record("abstract_registers", stats.abstract_registers);
    span.record("coi_registers", stats.coi_registers);
    span.record("coi_gates", stats.coi_gates);
    if let Some(len) = stats.trace_length {
        span.record("trace_length", len);
    }
    span.record("hybrid.no_cut_steps", stats.hybrid.no_cut_steps);
    span.record("hybrid.min_cut_steps", stats.hybrid.min_cut_steps);
    span.record("hybrid.fallback_steps", stats.hybrid.fallback_steps);
    span.record("hybrid.abstract_inputs", stats.hybrid.abstract_inputs);
    span.record("hybrid.min_cut_inputs", stats.hybrid.min_cut_inputs);
    span.record("concretize.random_batches", stats.concretize.random_batches);
    span.record(
        "concretize.random_patterns",
        stats.concretize.random_patterns,
    );
    span.record("concretize.random_hits", stats.concretize.random_hits);
    span.record(
        "concretize.random_gate_evals",
        stats.concretize.random_gate_evals,
    );
    span.record(
        "concretize.random_falsified",
        stats.concretize.random_falsified,
    );
    span.record(
        "concretize.atpg_backtracks",
        stats.concretize.atpg_backtracks,
    );
    span.record("concretize.atpg_decisions", stats.concretize.atpg_decisions);
    span.record("bdd.unique_probes", stats.bdd.unique_probes);
    span.record("bdd.unique_collisions", stats.bdd.unique_collisions);
    span.record("bdd.ite_hits", stats.bdd.ite_hits);
    span.record("bdd.ite_misses", stats.bdd.ite_misses);
    span.record("bdd.exists_hits", stats.bdd.exists_hits);
    span.record("bdd.exists_misses", stats.bdd.exists_misses);
    span.record("bdd.and_exists_hits", stats.bdd.and_exists_hits);
    span.record("bdd.and_exists_misses", stats.bdd.and_exists_misses);
    span.record("bdd.constrain_hits", stats.bdd.constrain_hits);
    span.record("bdd.constrain_misses", stats.bdd.constrain_misses);
    span.record("bdd.restrict_hits", stats.bdd.restrict_hits);
    span.record("bdd.restrict_misses", stats.bdd.restrict_misses);
    span.record("bdd.gc_runs", stats.bdd.gc_runs);
    span.record("bdd.gc_nodes_freed", stats.bdd.gc_nodes_freed);
    span.record("bdd.auto_gc_runs", stats.bdd.auto_gc_runs);
    span.record("bdd.peak_nodes", stats.bdd.peak_nodes);
    span.record("bdd.sift_runs", stats.bdd.sift_runs);
    span.record("bdd.unprofitable_sifts", stats.bdd.unprofitable_sifts);
    span.record("bdd.sift_nodes_shrunk", stats.bdd.sift_nodes_shrunk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfn_netlist::GateOp;

    /// Big irrelevant periphery + small relevant core. The property needs
    /// only `gate`, `mode` and the watchdog; dozens of junk registers inflate
    /// the COI.
    fn layered_design(junk: usize) -> (Netlist, Property) {
        let mut n = Netlist::new("layered");
        let i = n.add_input("i");
        // Relevant core: mode sticks at 0; gate = mode & i; watchdog latches.
        let mode = n.add_register("mode", Some(false));
        n.set_register_next(mode, mode).unwrap();
        let gate = n.add_gate("gate", GateOp::And, &[mode, i]);
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, gate]);
        n.set_register_next(w, wor).unwrap();
        // Junk: a shift chain also feeding the watchdog's COI via an AND with
        // constant 0 (inflates the COI without affecting behavior).
        let zero = n.add_const("zero", false);
        let mut prev = i;
        let mut last_junk = None;
        for k in 0..junk {
            let r = n.add_register(&format!("junk{k}"), Some(false));
            n.set_register_next(r, prev).unwrap();
            prev = r;
            last_junk = Some(r);
        }
        if let Some(lj) = last_junk {
            let masked = n.add_gate("masked", GateOp::And, &[lj, zero]);
            let wor2 = n.add_gate("wor2", GateOp::Or, &[wor, masked]);
            // Rewire: watchdog takes wor2 instead. (Build order trick: create
            // a second watchdog that is the actual property target.)
            let w2 = n.add_register("w2", Some(false));
            n.set_register_next(w2, wor2).unwrap();
            n.validate().unwrap();
            let p = Property::never(&n, "w2_low", w2);
            return (n, p);
        }
        n.validate().unwrap();
        let p = Property::never(&n, "w_low", w);
        (n, p)
    }

    #[test]
    fn proves_with_small_abstraction() {
        let (n, p) = layered_design(30);
        let outcome = Rfn::new(&n, &p, RfnOptions::default())
            .unwrap()
            .run()
            .unwrap();
        let RfnOutcome::Proved { stats } = outcome else {
            panic!("expected proof, got {outcome:?}");
        };
        // COI includes the junk chain, but the abstraction must stay small.
        assert!(stats.coi_registers > 30);
        assert!(
            stats.abstract_registers <= 4,
            "abstraction too big: {}",
            stats.abstract_registers
        );
    }

    /// Same design but the mode register can be armed by an input: the
    /// property is falsifiable.
    fn falsifiable_design() -> (Netlist, Property) {
        let mut n = Netlist::new("fd");
        let i = n.add_input("i");
        let arm = n.add_input("arm");
        let mode = n.add_register("mode", Some(false));
        let marm = n.add_gate("marm", GateOp::Or, &[mode, arm]);
        n.set_register_next(mode, marm).unwrap();
        let gate = n.add_gate("gate", GateOp::And, &[mode, i]);
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, gate]);
        n.set_register_next(w, wor).unwrap();
        // Junk chain in the COI.
        let mut prev = i;
        for k in 0..20 {
            let r = n.add_register(&format!("junk{k}"), Some(false));
            n.set_register_next(r, prev).unwrap();
            prev = r;
        }
        n.validate().unwrap();
        let p = Property::never(&n, "w_low", w);
        (n, p)
    }

    #[test]
    fn falsifies_with_validated_trace() {
        let (n, p) = falsifiable_design();
        let outcome = Rfn::new(&n, &p, RfnOptions::default())
            .unwrap()
            .run()
            .unwrap();
        let RfnOutcome::Falsified { trace, stats } = outcome else {
            panic!("expected falsification, got {outcome:?}");
        };
        assert!(crate::validate_trace(&n, &p, &trace).unwrap());
        assert!(stats.trace_length.unwrap() >= 2);
    }

    /// A design whose first-iteration abstract trace has a *feasible*
    /// corridor: the pseudo-input register `d0` has an unknown reset, so the
    /// corridor's demand `d0 = 1` at cycle 0 is realizable and the random
    /// engine falsifies before the sequential ATPG ever runs — zero ATPG
    /// backtracks on the winning attempt.
    #[test]
    fn random_engine_concretizes_without_atpg_backtracks() {
        let mut n = Netlist::new("rnd");
        let i = n.add_input("i");
        let d0 = n.add_register("d0", None);
        n.set_register_next(d0, d0).unwrap();
        let gate = n.add_gate("gate", GateOp::And, &[d0, i]);
        let w = n.add_register("w", Some(false));
        let wor = n.add_gate("wor", GateOp::Or, &[w, gate]);
        n.set_register_next(w, wor).unwrap();
        // Junk chain to keep the COI big enough that the loop abstracts.
        let mut prev = i;
        for k in 0..20 {
            let r = n.add_register(&format!("junk{k}"), Some(false));
            n.set_register_next(r, prev).unwrap();
            prev = r;
        }
        n.validate().unwrap();
        let p = Property::never(&n, "w_low", w);
        let outcome = Rfn::new(&n, &p, RfnOptions::default())
            .unwrap()
            .run()
            .unwrap();
        let RfnOutcome::Falsified { trace, stats } = outcome else {
            panic!("expected falsification, got {outcome:?}");
        };
        assert!(crate::validate_trace(&n, &p, &trace).unwrap());
        assert!(stats.concretize.random_falsified);
        assert!(stats.concretize.random_hits > 0);
        assert_eq!(stats.concretize.atpg_backtracks, 0);
    }

    /// Disabling the random engine must not change the verdict — the ATPG
    /// stage picks up the slack.
    #[test]
    fn falsifies_with_random_engine_disabled() {
        let (n, p) = falsifiable_design();
        let opts = RfnOptions::default().with_sim_batches(0);
        let outcome = Rfn::new(&n, &p, opts).unwrap().run().unwrap();
        let RfnOutcome::Falsified { stats, .. } = outcome else {
            panic!("expected falsification, got {outcome:?}");
        };
        assert!(!stats.concretize.random_falsified);
        assert_eq!(stats.concretize.random_patterns, 0);
    }

    #[test]
    fn iteration_limit_reports_inconclusive() {
        let (n, p) = falsifiable_design();
        let opts = RfnOptions {
            max_iterations: 0,
            ..RfnOptions::default()
        };
        let outcome = Rfn::new(&n, &p, opts).unwrap().run().unwrap();
        assert!(matches!(outcome, RfnOutcome::Inconclusive { .. }));
    }

    #[test]
    fn bad_property_is_rejected() {
        let (n, _) = falsifiable_design();
        let bad = Property::never_value("bad", SignalId::from_index(10_000), true);
        assert!(matches!(
            Rfn::new(&n, &bad, RfnOptions::default()),
            Err(RfnError::BadProperty(_))
        ));
    }

    #[test]
    fn property_on_gate_signal_works() {
        // Target a combinational signal directly.
        let mut n = Netlist::new("g");
        let mode = n.add_register("mode", Some(false));
        n.set_register_next(mode, mode).unwrap();
        let i = n.add_input("i");
        let gate = n.add_gate("gate", GateOp::And, &[mode, i]);
        n.validate().unwrap();
        let p = Property::never(&n, "gate_low", gate);
        let outcome = Rfn::new(&n, &p, RfnOptions::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(outcome.is_proved(), "got {outcome:?}");
    }
}
